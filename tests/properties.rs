//! Property-based tests (proptest) of the workspace invariants listed in
//! DESIGN.md §6.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::transform::{
    assemble_output, assemble_output_inverse, prepare_input, prepare_input_inverse, TransformMap,
};
use tie::core::{counts, CompactEngine, InferencePlan};
use tie::prelude::*;
use tie::tensor::{init, linalg, parallel};
use tie::tt::decompose::tt_svd;

/// Strategy: a valid random TT-matrix layout with d in 2..=4, modes in
/// 2..=5, interior ranks in 1..=4.
fn tt_shape_strategy() -> impl Strategy<Value = TtShape> {
    (2usize..=4)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(2usize..=5, d),
                proptest::collection::vec(2usize..=5, d),
                proptest::collection::vec(1usize..=4, d - 1),
            )
        })
        .prop_map(|(m, n, interior)| {
            let mut ranks = vec![1usize];
            ranks.extend(interior);
            ranks.push(1);
            TtShape::new(m, n, ranks).expect("generated shape is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// DESIGN invariant 2: compact scheme == dense matvec for random
    /// layouts and weights.
    #[test]
    fn compact_scheme_equals_dense(shape in tt_shape_strategy(), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let dense = ttm.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let engine = CompactEngine::new(ttm).unwrap();
        let (y, ops) = engine.matvec(&x).unwrap();
        let want = linalg::matvec(&dense, &x).unwrap();
        prop_assert!(y.approx_eq(&want, 1e-8));
        // Invariant 4: measured multiplies == closed-form count.
        prop_assert_eq!(ops.mults, counts::mul_compact(&shape));
    }

    /// DESIGN invariant 3: every inter-stage transform is a bijection and
    /// map_inverse inverts map.
    #[test]
    fn transforms_are_bijections(shape in tt_shape_strategy()) {
        for h in 2..=shape.ndim() {
            let t = TransformMap::new(&shape, h).unwrap();
            let mut seen = vec![false; t.rows_out * t.cols_out];
            for p in 0..t.rows_in {
                for q in 0..t.cols_in {
                    let (po, qo) = t.map(p, q);
                    prop_assert_eq!(t.map_inverse(po, qo), (p, q));
                    let off = po * t.cols_out + qo;
                    prop_assert!(!seen[off]);
                    seen[off] = true;
                }
            }
            prop_assert!(seen.iter().all(|&b| b));
        }
    }

    /// The paper's literal 4-step Transform (Algorithm 1 pseudocode)
    /// equals the closed-form Eqn. (10) index map on random layouts.
    #[test]
    fn four_step_transform_equals_map(shape in tt_shape_strategy(), seed in 0u64..1000) {
        use tie::core::transform::four_step_transform;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for h in 2..=shape.ndim() {
            let t = TransformMap::new(&shape, h).unwrap();
            let v: Tensor<f64> = init::uniform(&mut rng, vec![t.rows_in, t.cols_in], 1.0);
            prop_assert_eq!(four_step_transform(&v, &shape, h).unwrap(), t.apply(&v).unwrap());
        }
    }

    /// The compact engine is generic over the scalar type: f32 execution
    /// tracks the f64 reference within single precision.
    #[test]
    fn compact_engine_works_in_f32(shape in tt_shape_strategy(), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm64 = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let x64: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let (y64, _) = CompactEngine::new(ttm64.clone()).unwrap().matvec(&x64).unwrap();
        let ttm32: TtMatrix<f32> = ttm64.cast();
        let x32: Tensor<f32> = x64.cast();
        let (y32, _) = CompactEngine::new(ttm32).unwrap().matvec(&x32).unwrap();
        prop_assert!(y32.cast::<f64>().relative_error(&y64).unwrap() < 1e-4);
    }

    /// Input preparation and output assembly invert exactly.
    #[test]
    fn io_permutations_invert(shape in tt_shape_strategy(), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let xp = prepare_input(&x, &shape).unwrap();
        prop_assert_eq!(prepare_input_inverse(&xp, &shape).unwrap(), x);
        let y: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_rows()], 1.0);
        let v1 = assemble_output_inverse(&y, &shape).unwrap();
        prop_assert_eq!(assemble_output(&v1, &shape).unwrap(), y);
    }

    /// DESIGN invariant 1: TT-SVD without truncation reconstructs.
    #[test]
    fn tt_svd_roundtrip(dims in proptest::collection::vec(2usize..=5, 2..=4), seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Tensor<f64> = init::uniform(&mut rng, dims, 1.0);
        let tt = tt_svd(&a, Truncation::none()).unwrap();
        let back = tt.to_dense().unwrap();
        prop_assert!(back.approx_eq(&a, 1e-8), "rel err {}", back.relative_error(&a).unwrap());
    }

    /// DESIGN invariant 6: quantization round-trip error is at most half
    /// a step, and saturation is detected rather than silent.
    #[test]
    fn quantization_roundtrip_bound(vals in proptest::collection::vec(-7.9f64..7.9, 1..64), frac in 4u32..13) {
        let fmt = QFormat::new(frac).unwrap();
        let t = Tensor::from_vec(vec![vals.len()], vals).unwrap();
        if t.max_abs() < fmt.max_value() {
            let q = QTensor::quantize(&t, fmt);
            let back = q.dequantize();
            prop_assert!(back.approx_eq(&t, fmt.step() / 2.0 + 1e-12));
        }
    }

    /// DESIGN invariant 7: SVD factorizes with orthonormal factors and
    /// sorted singular values.
    #[test]
    fn svd_properties(m in 2usize..7, n in 2usize..7, seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![m, n], 1.0);
        let f = linalg::svd(&a).unwrap();
        prop_assert!(f.reconstruct().unwrap().approx_eq(&a, 1e-8));
        for w in f.s.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        let gram = linalg::matmul_tn(&f.u, &f.u).unwrap();
        prop_assert!(gram.approx_eq(&Tensor::eye(f.s.len()), 1e-8));
    }

    /// DESIGN invariant 8: FFT-based circulant multiply equals the dense
    /// multiply.
    #[test]
    fn circulant_multiply_matches_dense(seed in 0u64..1000, log_b in 1u32..4) {
        use tie::baselines::circnn::BlockCirculantMatrix;
        let b = 1usize << log_b;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = BlockCirculantMatrix::random(&mut rng, 2 * b, 3 * b, b).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![3 * b], 1.0);
        let (y, _) = w.matvec(&x).unwrap();
        let want = linalg::matvec(&w.to_dense(), &x).unwrap();
        prop_assert!(y.approx_eq(&want, 1e-8));
    }

    /// DESIGN invariant 9: the EIE functional model computes exactly the
    /// mat-vec of its own decoded matrix.
    #[test]
    fn eie_functional_correctness(seed in 0u64..1000) {
        use tie::baselines::eie::{CscMatrix, EieModel};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let dense: Tensor<f64> = init::uniform(&mut rng, vec![16, 12], 1.0);
        let csc = CscMatrix::from_dense(&dense, 0.4, 32).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![12], 1.0);
        let (y, stats) = EieModel { n_pe: 4 }.run(&csc, &x).unwrap();
        let want = linalg::matvec(&csc.to_dense(), &x).unwrap();
        prop_assert!(y.approx_eq(&want, 1e-9));
        prop_assert!(stats.imbalance() >= 1.0);
    }

    /// TT arithmetic (extension module): add / Hadamard / dot / matvec all
    /// agree with their dense counterparts on random shapes.
    #[test]
    fn tt_arithmetic_matches_dense(
        modes in proptest::collection::vec(2usize..=4, 2..=4),
        seed in 0u64..1000,
    ) {
        use tie::tt::arithmetic::{tt_add, tt_dot, tt_hadamard, tt_scale};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = modes.len();
        let mut ranks_a = vec![1usize];
        let mut ranks_b = vec![1usize];
        for _ in 1..d {
            ranks_a.push(2);
            ranks_b.push(3);
        }
        ranks_a.push(1);
        ranks_b.push(1);
        let a = TtTensor::<f64>::random(&mut rng, &modes, &ranks_a, 1.0).unwrap();
        let b = TtTensor::<f64>::random(&mut rng, &modes, &ranks_b, 1.0).unwrap();
        let da = a.to_dense().unwrap();
        let db = b.to_dense().unwrap();
        prop_assert!(tt_add(&a, &b).unwrap().to_dense().unwrap()
            .approx_eq(&da.add(&db).unwrap(), 1e-9));
        prop_assert!(tt_hadamard(&a, &b).unwrap().to_dense().unwrap()
            .approx_eq(&da.hadamard(&db).unwrap(), 1e-9));
        prop_assert!(tt_scale(&a, 2.5).to_dense().unwrap()
            .approx_eq(&da.scaled(2.5), 1e-9));
        let want: f64 = da.data().iter().zip(db.data()).map(|(&x, &y)| x * y).sum();
        prop_assert!((tt_dot(&a, &b).unwrap() - want).abs() < 1e-8 * (1.0 + want.abs()));
    }

    /// TT matrix-times-TT-vector equals the dense product, and rounding
    /// the (rank-multiplied) result recovers accuracy at reduced rank.
    #[test]
    fn tt_matvec_matches_dense(shape in tt_shape_strategy(), seed in 0u64..1000) {
        use tie::tt::arithmetic::tt_matvec;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let w = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let mut xranks = vec![1usize; shape.ndim() + 1];
        for r in xranks.iter_mut().take(shape.ndim()).skip(1) {
            *r = 2;
        }
        let x = TtTensor::<f64>::random(&mut rng, &shape.col_modes, &xranks, 1.0).unwrap();
        let y = tt_matvec(&w, &x).unwrap();
        let dense_w = w.to_dense().unwrap();
        let dense_x = x.to_dense().unwrap().reshaped(vec![shape.num_cols()]).unwrap();
        let want = linalg::matvec(&dense_w, &dense_x).unwrap();
        let got = y.to_dense().unwrap().reshaped(vec![shape.num_rows()]).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-8));
        // Rounding keeps the value while (possibly) shrinking ranks.
        let rounded = y.rounded(Truncation::tolerance(1e-10)).unwrap();
        let back = rounded.to_dense().unwrap().reshaped(vec![shape.num_rows()]).unwrap();
        prop_assert!(back.approx_eq(&want, 1e-7));
    }

    /// The plan's buffer chain is internally consistent for any layout:
    /// stage outputs equal next-stage inputs, and the working-set bound
    /// covers every intermediate.
    #[test]
    fn plan_chain_consistency(shape in tt_shape_strategy()) {
        let plan = InferencePlan::new(&shape).unwrap();
        for w in plan.stages().windows(2) {
            prop_assert_eq!(w[0].output_elems(), w[1].input_elems());
        }
        for s in plan.stages() {
            prop_assert!(s.input_elems() <= plan.max_intermediate_elems());
            prop_assert!(s.output_elems() <= plan.max_intermediate_elems());
        }
        prop_assert!(counts::mul_compact(&shape) <= counts::mul_naive(&shape));
    }
}

// ---------------------------------------------------------------------------
// Performance-layer equivalence suite: the blocked / threaded kernels and the
// batched compact engine must be *bit-identical* to their reference forms on
// finite inputs — blocking and batching only reorder independent outputs,
// never the per-output accumulation (DESIGN §7).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The blocked matmul is bitwise equal to the naive i-k-j reference at
    /// any configured thread count, including degenerate 1×N / N×1 / 1×1
    /// shapes (dims start at 1).
    #[test]
    fn blocked_matmul_bitwise_equals_naive(
        m in 1usize..24,
        k in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![k, n], 1.0);
        let want = linalg::matmul_naive(&a, &b).unwrap();
        for threads in [1usize, 4] {
            let prev = parallel::set_num_threads(threads);
            let got = linalg::matmul(&a, &b).unwrap();
            parallel::set_num_threads(prev);
            for (x, y) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Same bit-equivalence for the Aᵀ·B kernel used by QR / backprop.
    #[test]
    fn blocked_matmul_tn_bitwise_equals_naive(
        m in 1usize..20,
        k in 1usize..20,
        n in 1usize..20,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![k, m], 1.0);
        let b: Tensor<f64> = init::uniform(&mut rng, vec![k, n], 1.0);
        let want = linalg::matmul_tn_naive(&a, &b).unwrap();
        for threads in [1usize, 3] {
            let prev = parallel::set_num_threads(threads);
            let got = linalg::matmul_tn(&a, &b).unwrap();
            parallel::set_num_threads(prev);
            for (x, y) in got.data().iter().zip(want.data()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// matvec is the n = 1 column of the reference matmul, bit for bit.
    #[test]
    fn matvec_bitwise_equals_naive_matmul_column(
        m in 1usize..32,
        k in 1usize..32,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![k], 1.0);
        let y = linalg::matvec(&a, &x).unwrap();
        let want = linalg::matmul_naive(&a, &x.reshaped(vec![k, 1]).unwrap()).unwrap();
        for (got, yref) in y.data().iter().zip(want.data()) {
            prop_assert_eq!(got.to_bits(), yref.to_bits());
        }
    }

    /// The batch-wide compact pass is bitwise equal to running each column
    /// alone, arithmetic scales by B, and weights still stream once per
    /// stage (`core_reads == num_params` for every B).
    #[test]
    fn batched_engine_bitwise_equals_per_column(
        shape in tt_shape_strategy(),
        b in 1usize..5,
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let engine = CompactEngine::new(ttm).unwrap();
        let n = shape.num_cols();
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, b], 1.0);
        let (ys, batch_count) = engine.matvec_batch(&xs).unwrap();
        prop_assert_eq!(batch_count.core_reads as usize, shape.num_params());
        for c in 0..b {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![n]).unwrap();
            let (y, single) = engine.matvec(&x).unwrap();
            prop_assert_eq!(batch_count.mults, single.mults * b as u64);
            for r in 0..y.num_elements() {
                prop_assert_eq!(ys.data()[r * b + c].to_bits(), y.data()[r].to_bits());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// I/O-permutation suite over degenerate-inclusive layouts: the serving layer
// accepts any valid TtShape, so the precomputed scatter/gather index vectors
// must round-trip even for rank-1, single-mode (d = 1) and unit-mode layouts
// the main strategy never generates.
// ---------------------------------------------------------------------------

/// Strategy: a valid TT-matrix layout **including degenerate cases** —
/// d from 1 (single mode: a plain dense matrix in TT form), modes from 1
/// (unit modes), interior ranks from 1.
fn tt_shape_strategy_degenerate() -> impl Strategy<Value = TtShape> {
    (1usize..=4)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=5, d),
                proptest::collection::vec(1usize..=5, d),
                proptest::collection::vec(1usize..=4, d - 1),
            )
        })
        .prop_map(|(m, n, interior)| {
            let mut ranks = vec![1usize];
            ranks.extend(interior);
            ranks.push(1);
            TtShape::new(m, n, ranks).expect("generated shape is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The precomputed input-scatter is a bijection onto the prepared
    /// layout, and `prepare_input → prepare_input_inverse` is the exact
    /// identity, for degenerate layouts included.
    #[test]
    fn input_scatter_roundtrips_on_degenerate_shapes(
        shape in tt_shape_strategy_degenerate(),
        seed in 0u64..1000,
    ) {
        use tie::core::transform::prepare_input_scatter;
        let n = shape.num_cols();
        let scatter = prepare_input_scatter(&shape);
        prop_assert_eq!(scatter.len(), n);
        let mut seen = vec![false; n];
        for &dst in &scatter {
            prop_assert!(dst < n);
            prop_assert!(!seen[dst], "scatter must be a bijection");
            seen[dst] = true;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![n], 1.0);
        let xp = prepare_input(&x, &shape).unwrap();
        // The scatter vector and the definitional layout agree element-wise.
        for (j, &dst) in scatter.iter().enumerate() {
            prop_assert_eq!(xp.data()[dst].to_bits(), x.data()[j].to_bits());
        }
        let back = prepare_input_inverse(&xp, &shape).unwrap();
        prop_assert_eq!(back, x);
    }

    /// The precomputed output-gather is a bijection, and
    /// `assemble_output_inverse → assemble_output` is the exact identity.
    #[test]
    fn output_gather_roundtrips_on_degenerate_shapes(
        shape in tt_shape_strategy_degenerate(),
        seed in 0u64..1000,
    ) {
        use tie::core::transform::assemble_output_gather;
        let m = shape.num_rows();
        let gather = assemble_output_gather(&shape);
        prop_assert_eq!(gather.len(), m);
        let mut seen = vec![false; m];
        for &src in &gather {
            prop_assert!(src < m);
            prop_assert!(!seen[src], "gather must be a bijection");
            seen[src] = true;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let y: Tensor<f64> = init::uniform(&mut rng, vec![m], 1.0);
        let v1 = assemble_output_inverse(&y, &shape).unwrap();
        for (i, &src) in gather.iter().enumerate() {
            prop_assert_eq!(v1.data()[src].to_bits(), y.data()[i].to_bits());
        }
        let back = assemble_output(&v1, &shape).unwrap();
        prop_assert_eq!(back, y);
    }

    /// Each inter-stage TransformMap's precomputed gather vector agrees
    /// with the closed-form `map`/`map_inverse` pair, and applying the
    /// transform then its inverse is the exact identity — including unit
    /// modes and rank-1 interiors.
    #[test]
    fn transform_gather_agrees_with_map_on_degenerate_shapes(
        shape in tt_shape_strategy_degenerate(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for h in 2..=shape.ndim() {
            let t = TransformMap::new(&shape, h).unwrap();
            let gather = t.gather();
            prop_assert_eq!(gather.len(), t.rows_out * t.cols_out);
            for po in 0..t.rows_out {
                for qo in 0..t.cols_out {
                    let (p, q) = t.map_inverse(po, qo);
                    prop_assert_eq!(t.map(p, q), (po, qo));
                    prop_assert_eq!(gather[po * t.cols_out + qo], p * t.cols_in + q);
                }
            }
            let v: Tensor<f64> = init::uniform(&mut rng, vec![t.rows_in, t.cols_in], 1.0);
            let back = t.apply_inverse(&t.apply(&v).unwrap()).unwrap();
            prop_assert_eq!(back, v);
        }
    }

    /// The compact engine itself handles every degenerate layout: d = 1
    /// reduces to one dense GEMM, unit modes collapse stages — all must
    /// still equal the dense matvec.
    #[test]
    fn compact_engine_handles_degenerate_shapes(
        shape in tt_shape_strategy_degenerate(),
        seed in 0u64..1000,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let dense = ttm.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let engine = CompactEngine::new(ttm).unwrap();
        let (y, _) = engine.matvec(&x).unwrap();
        let want = linalg::matvec(&dense, &x).unwrap();
        prop_assert!(y.approx_eq(&want, 1e-8));
    }
}

// ---------------------------------------------------------------------------
// Model-compilation suite: the randomized truncated SVD and the
// SvdMethod-parameterized TT-SVD pipeline behind `TtMatrix::from_dense` /
// the workloads compiler. Error bounds are checked against the optimal
// dropped-tail mass; determinism is checked bit-for-bit across thread
// counts.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The sketch-path randomized SVD lands within the optimal
    /// dropped-singular-mass bound (with 15% slack) of the exact Jacobi
    /// truncation on low-rank-plus-noise matrices, both orientations.
    #[test]
    fn randomized_svd_within_dropped_mass_bound(
        m in 24usize..56,
        n in 24usize..56,
        rank in 3usize..6,
        seed in 0u64..1000,
    ) {
        use tie::tensor::linalg::{randomized_svd, RsvdParams};
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let u: Tensor<f64> = init::uniform(&mut rng, vec![m, rank], 1.0);
        let v: Tensor<f64> = init::uniform(&mut rng, vec![rank, n], 1.0);
        let e: Tensor<f64> = init::uniform(&mut rng, vec![m, n], 1e-3);
        let a = linalg::matmul(&u, &v).unwrap().add(&e).unwrap();
        let exact = linalg::svd(&a).unwrap();
        let f = randomized_svd(&a, Truncation::rank(rank), RsvdParams::seeded(seed)).unwrap();
        prop_assert_eq!(f.s.len(), rank);
        let err = f.reconstruct().unwrap().sub(&a).unwrap().frobenius_norm();
        let bound: f64 = exact.s[rank..].iter().map(|s| s * s).sum::<f64>().sqrt();
        prop_assert!(
            err <= bound * 1.15 + 1e-12,
            "rSVD error {} vs optimal dropped mass {}", err, bound
        );
    }

    /// Rank-capped relative-tolerance TT-SVD honours the Oseledets error
    /// budget under every `SvdMethod` when the cap matches the planted
    /// structure, and the cap itself is always respected.
    #[test]
    fn tt_svd_error_budget_holds_under_every_method(
        seed in 0u64..500,
    ) {
        use tie::tensor::linalg::{RsvdParams, SvdMethod};
        use tie::tt::decompose::tt_svd_relative_with;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base = TtTensor::<f64>::random(&mut rng, &[4, 5, 3, 4], &[1, 2, 2, 2, 1], 1.0)
            .unwrap()
            .to_dense()
            .unwrap();
        let noise: Tensor<f64> = init::uniform(&mut rng, vec![4, 5, 3, 4], 1e-5);
        let a = base.add(&noise).unwrap();
        for method in [
            SvdMethod::Jacobi,
            SvdMethod::auto_seeded(seed),
            SvdMethod::Randomized(RsvdParams::seeded(seed)),
        ] {
            let tt = tt_svd_relative_with(&a, 1e-2, Some(2), method).unwrap();
            prop_assert!(tt.ranks().iter().all(|&r| r <= 2), "{:?}", method);
            let err = tt.to_dense().unwrap().relative_error(&a).unwrap();
            prop_assert!(err <= 1e-2, "method {:?}: rel error {}", method, err);
        }
    }
}

/// Compilation determinism (deterministic test, sized to cross the thread
/// spawn threshold): with a pinned randomized method, TT-SVD cores are
/// bit-identical at any `TIE_THREADS` setting, and the seed is load-
/// bearing — a different seed produces different cores.
#[test]
fn tt_svd_randomized_bit_identical_across_thread_counts() {
    use tie::tensor::linalg::{RsvdParams, SvdMethod};
    use tie::tt::decompose::tt_svd_with;
    let mut rng = ChaCha8Rng::seed_from_u64(9300);
    // 32×32×32: the first unfolding is 32×1024, whose ℓ = 12 sketch GEMM
    // (32·1024·12 ≈ 393k multiply-adds) exceeds PARALLEL_MIN_WORK, so
    // thread counts > 1 genuinely partition the kernels here.
    let a: Tensor<f64> = init::uniform(&mut rng, vec![32, 32, 32], 1.0);
    const { assert!(32 * 1024 * 12 >= parallel::PARALLEL_MIN_WORK) };
    let method = SvdMethod::Randomized(RsvdParams::seeded(7));
    let reference = tt_svd_with(&a, Truncation::rank(4), method).unwrap();
    for threads in [1usize, 2, 4] {
        let prev = parallel::set_num_threads(threads);
        let got = tt_svd_with(&a, Truncation::rank(4), method).unwrap();
        parallel::set_num_threads(prev);
        for (c_got, c_ref) in got.cores().iter().zip(reference.cores()) {
            assert!(
                c_got
                    .data()
                    .iter()
                    .zip(c_ref.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits()),
                "cores differ at threads={threads}"
            );
        }
    }
    let other = tt_svd_with(
        &a,
        Truncation::rank(4),
        SvdMethod::Randomized(RsvdParams::seeded(8)),
    )
    .unwrap();
    assert!(
        other
            .cores()
            .iter()
            .zip(reference.cores())
            .any(|(co, cr)| co.data() != cr.data()),
        "different sketch seeds must produce different factors"
    );
}

/// Deterministic, big enough to actually cross the spawn threshold
/// (proptest shapes stay below it): 80·64·48 = 245 760 multiply-adds ≥
/// `PARALLEL_MIN_WORK`, so thread counts > 1 genuinely split rows here —
/// and must still match the naive kernel bit for bit.
#[test]
fn threaded_matmul_bitwise_stable_above_spawn_threshold() {
    let mut rng = ChaCha8Rng::seed_from_u64(9200);
    let a: Tensor<f64> = init::uniform(&mut rng, vec![80, 64], 1.0);
    let b: Tensor<f64> = init::uniform(&mut rng, vec![64, 48], 1.0);
    const { assert!(80 * 64 * 48 >= parallel::PARALLEL_MIN_WORK) };
    let want = linalg::matmul_naive(&a, &b).unwrap();
    for threads in [1usize, 2, 5] {
        let prev = parallel::set_num_threads(threads);
        let got = linalg::matmul(&a, &b).unwrap();
        parallel::set_num_threads(prev);
        assert!(
            got.data()
                .iter()
                .zip(want.data())
                .all(|(x, y)| x.to_bits() == y.to_bits()),
            "threads={threads}"
        );
    }
}

/// DESIGN invariant 5 (deterministic, heavier than a proptest case): the
/// simulator's read stream reproduces the compact scheme's stage inputs —
/// functional equality at every stage via the traced reference.
#[test]
fn simulator_stage_trace_matches_reference() {
    let mut rng = ChaCha8Rng::seed_from_u64(9100);
    let shape = TtShape::new(vec![3, 2, 4], vec![2, 4, 3], vec![1, 3, 2, 1]).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.7).unwrap();
    let engine = CompactEngine::new(ttm.clone()).unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![24], 1.0);
    let (y_ref, trace) = engine.matvec_traced(&x).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let (y_hw, _) = tie.run(&layer, &x, false).unwrap();
    assert!(y_hw.relative_error(&y_ref).unwrap() < 1e-2);
    assert_eq!(trace.stage_outputs.len(), shape.ndim());
}

// ---------------------------------------------------------------------------
// Consistent-hash ring (tie-serve sharding layer)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Keys spread across shards within tolerance of the ideal share.
    /// With 128 vnodes per shard the arc lengths concentrate well enough
    /// that generous bounds (max ≤ 2.5× ideal, min ≥ ideal / 4) hold for
    /// any shard count and key family.
    #[test]
    fn hash_ring_distribution_within_tolerance(
        shards in 2usize..=8,
        salt in 0u64..1_000_000_000,
    ) {
        let ring = HashRing::new(shards, 128).unwrap();
        const KEYS: usize = 4096;
        let mut counts = vec![0usize; shards];
        for i in 0..KEYS {
            counts[ring.shard_for(&format!("key-{salt:x}-{i}"))] += 1;
        }
        let ideal = KEYS as f64 / shards as f64;
        for (shard, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) <= 2.5 * ideal,
                "shard {shard} owns {c} of {KEYS} keys (ideal {ideal:.0})"
            );
            prop_assert!(
                (c as f64) >= ideal / 4.0,
                "shard {shard} owns only {c} of {KEYS} keys (ideal {ideal:.0})"
            );
        }
    }

    /// Adding a shard only moves keys *onto* the new shard; every key that
    /// stays off it keeps its exact assignment. The moved fraction is near
    /// 1/(n+1), bounded loosely here.
    #[test]
    fn hash_ring_add_shard_remaps_minimally(
        shards in 2usize..=8,
        salt in 0u64..1_000_000_000,
    ) {
        let before = HashRing::new(shards, 128).unwrap();
        let mut after = HashRing::new(shards, 128).unwrap();
        after.add_shard(shards).unwrap();
        const KEYS: usize = 2048;
        let mut moved = 0usize;
        for i in 0..KEYS {
            let key = format!("key-{salt:x}-{i}");
            let (b, a) = (before.shard_for(&key), after.shard_for(&key));
            if a != b {
                prop_assert_eq!(a, shards);
                moved += 1;
            }
        }
        let expected = KEYS as f64 / (shards + 1) as f64;
        prop_assert!(
            (moved as f64) <= 2.5 * expected,
            "add moved {moved} keys; consistent hashing expects ≈{expected:.0}"
        );
        prop_assert!(moved > 0, "the new shard must receive some keys");
    }

    /// Removing a shard only moves the keys it owned; all other keys keep
    /// their exact assignment (the mirror property of the add case).
    #[test]
    fn hash_ring_remove_shard_remaps_minimally(
        shards in 3usize..=8,
        victim_ix in 0usize..8,
        salt in 0u64..1_000_000_000,
    ) {
        let victim = victim_ix % shards;
        let before = HashRing::new(shards, 128).unwrap();
        let mut after = HashRing::new(shards, 128).unwrap();
        after.remove_shard(victim).unwrap();
        const KEYS: usize = 2048;
        for i in 0..KEYS {
            let key = format!("key-{salt:x}-{i}");
            let b = before.shard_for(&key);
            let a = after.shard_for(&key);
            if b == victim {
                prop_assert_ne!(a, victim);
            } else {
                prop_assert_eq!(a, b);
            }
        }
    }

    /// The ring is a pure function of (shard set, vnodes): independently
    /// constructed rings agree on every key, so distributed routers need
    /// no coordination to agree on placement.
    #[test]
    fn hash_ring_deterministic_across_constructions(
        shards in 1usize..=8,
        vnodes in 1usize..=128,
        keys in proptest::collection::vec(0u64..1_000_000_000, 1..32),
    ) {
        let a = HashRing::new(shards, vnodes).unwrap();
        let b = HashRing::new(shards, vnodes).unwrap();
        prop_assert_eq!(a.shards(), b.shards());
        for &k in &keys {
            let key = format!("layer-{k}");
            prop_assert_eq!(a.shard_for(&key), b.shard_for(&key));
        }
    }
}
