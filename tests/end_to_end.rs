//! Cross-crate integration tests: the full pipeline from dense weights
//! through TT decomposition, the compact scheme, training, and the
//! cycle-accurate accelerator.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::nn::{Layer, Trainable, TtDense};
use tie::prelude::*;
use tie::tensor::{init, linalg};
use tie::tt::inference::naive_matvec;

/// dense W → TT-SVD → compact scheme → bit-accurate simulator: every
/// representation agrees.
#[test]
fn full_stack_agreement_chain() {
    let mut rng = ChaCha8Rng::seed_from_u64(9001);
    let w: Tensor<f64> = init::uniform(&mut rng, vec![24, 36], 1.0);
    let x: Tensor<f64> = init::uniform(&mut rng, vec![36], 1.0);
    let y_dense = linalg::matvec(&w, &x).unwrap();

    let ttm = TtMatrix::from_dense(&w, &[2, 3, 4], &[3, 3, 4], Truncation::none()).unwrap();
    // (1) reconstruction
    assert!(ttm.to_dense().unwrap().approx_eq(&w, 1e-9));
    // (2) naive scheme
    let (y_naive, _) = naive_matvec(&ttm, &x).unwrap();
    assert!(y_naive.approx_eq(&y_dense, 1e-9));
    // (3) compact scheme
    let engine = CompactEngine::new(ttm.clone()).unwrap();
    let (y_compact, ops) = engine.matvec(&x).unwrap();
    assert!(y_compact.approx_eq(&y_dense, 1e-9));
    assert_eq!(ops.mults, engine.plan().total_muls());
    // (4) the hardware simulator (16-bit datapath)
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let (y_hw, stats) = tie.run(&layer, &x, false).unwrap();
    let err = y_hw.relative_error(&y_dense).unwrap();
    assert!(err < 1e-2, "hardware output off by {err}");
    assert_eq!(
        stats.macs(),
        ops.mults,
        "simulator MACs == compact multiplies"
    );
    assert_eq!(stats.saturations(), 0);
}

/// Train a TT layer with the nn stack, export it, and run the trained
/// weights on the accelerator — the deployment path a user would take.
#[test]
fn train_then_deploy_on_accelerator() {
    let mut rng = ChaCha8Rng::seed_from_u64(9002);
    let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 3).unwrap();
    let mut layer = TtDense::new(&mut rng, &shape);
    // Fit y = x W₀ᵀ for a *TT-representable* target (rank 3): a random
    // dense target's best rank-3 approximation error is ~0.9, so only a
    // realizable target makes convergence measurable.
    let target: Tensor<f32> = TtMatrix::<f64>::random(&mut rng, &shape, 0.6)
        .unwrap()
        .to_dense()
        .unwrap()
        .cast();
    let xs: Tensor<f32> = init::uniform(&mut rng, vec![48, 16], 1.0);
    let ys = linalg::matmul_nt(&xs, &target).unwrap();
    for _ in 0..500 {
        let out = layer.forward(&xs).unwrap();
        let diff = out.sub(&ys).unwrap();
        layer.zero_grads();
        layer.backward(&diff).unwrap();
        layer.visit_params(&mut |p, g| p.axpy(-0.01, g).unwrap());
    }
    // Training must have made real progress toward the target map.
    let trained: TtMatrix<f64> = layer.to_tt_matrix().unwrap().cast();
    let learned = trained.to_dense().unwrap();
    let target64: Tensor<f64> = target.cast();
    let fit_err = learned.relative_error(&target64).unwrap();
    assert!(
        fit_err < 0.35,
        "training did not converge: rel err {fit_err}"
    );
    // Deploy: the accelerator must reproduce the *trained* layer's own
    // linear map (bias lives outside the TT matrix) to 16-bit accuracy.
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let loaded = tie.load_layer(trained).unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![16], 1.0);
    let (y_hw, _) = tie.run(&loaded, &x, false).unwrap();
    let want = linalg::matvec(&learned, &x).unwrap();
    let err = y_hw.relative_error(&want).unwrap();
    assert!(err < 1e-2, "deployed output err {err}");
}

/// The accelerator's ReLU path composes with the compact scheme exactly
/// like the float reference does.
#[test]
fn accelerator_relu_matches_float_relu() {
    let mut rng = ChaCha8Rng::seed_from_u64(9003);
    let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 4).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.6).unwrap();
    let engine = CompactEngine::new(ttm.clone()).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![16], 1.0);
    let (y_lin, _) = engine.matvec(&x).unwrap();
    let y_relu_ref = y_lin.map(|v| v.max(0.0));
    let (y_hw, _) = tie.run(&layer, &x, true).unwrap();
    assert!(
        y_hw.approx_eq(&y_relu_ref, 0.05),
        "max diff {}",
        y_hw.sub(&y_relu_ref).unwrap().max_abs()
    );
}

/// Batched compact inference equals per-sample inference equals dense —
/// the path TT CONV layers use.
#[test]
fn batched_compact_inference_consistency() {
    let mut rng = ChaCha8Rng::seed_from_u64(9004);
    let shape = TtShape::uniform_rank(vec![3, 3], vec![4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.7).unwrap();
    let dense = ttm.to_dense().unwrap();
    let engine = CompactEngine::new(ttm).unwrap();
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![16, 5], 1.0);
    let (ys, _) = engine.matvec_batch(&xs).unwrap();
    let want = linalg::matmul(&dense, &xs).unwrap();
    assert!(ys.approx_eq(&want, 1e-9));
}

/// Quantized matmul in tie-quant and the PE-array datapath in tie-sim
/// implement the same arithmetic.
#[test]
fn quant_and_sim_datapaths_agree() {
    use tie::quant::qmatmul;
    let mut rng = ChaCha8Rng::seed_from_u64(9005);
    let a64: Tensor<f64> = init::uniform(&mut rng, vec![8, 6], 1.0);
    let b64: Tensor<f64> = init::uniform(&mut rng, vec![6, 10], 1.0);
    let fmt = QFormat::new(12).unwrap();
    let qa = QTensor::quantize(&a64, fmt);
    let qb = QTensor::quantize(&b64, fmt);
    let out_fmt = QFormat::new(10).unwrap();
    let (qc, report) = qmatmul(&qa, &qb, out_fmt).unwrap();
    assert!(report.is_clean());
    let want = linalg::matmul(&a64, &b64).unwrap();
    let got = qc.dequantize();
    assert!(got.approx_eq(&want, 0.02));
}

/// Tensor-ring generalization: a TT tensor converted to TR evaluates
/// identically, and genuine ring ranks still reconstruct consistently.
#[test]
fn tensor_ring_extension_round_trip() {
    use tie::tt::ring::TrTensor;
    let mut rng = ChaCha8Rng::seed_from_u64(9006);
    let tt = TtTensor::<f64>::random(&mut rng, &[3, 4, 2], &[1, 3, 2, 1], 1.0).unwrap();
    let dense = tt.to_dense().unwrap();
    let tr: TrTensor<f64> = tt.into();
    assert!(tr.to_dense().unwrap().approx_eq(&dense, 1e-12));
}
