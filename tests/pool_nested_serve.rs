//! Nested-parallelism smoke test: the serving layer's worker threads all
//! dispatch pooled kernels concurrently, under sustained load.
//!
//! `tie-serve` workers are plain threads that each call
//! `matvec_batch_into`, whose stage GEMMs and transforms dispatch onto the
//! persistent pool — so under load the pool sees many concurrent
//! dispatchers while its own workers churn through their slabs. The
//! promises under test (DESIGN.md §11):
//!
//! * no deadlock (the run completes; enforced by the harness timeout),
//! * every response stays bit-identical to a direct engine call,
//! * `ServiceStats` still balances exactly.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;
use tie::core::CompactEngine;
use tie::serve::{EngineRegistry, InferenceService, ServeConfig};
use tie::tensor::{parallel, pool};
use tie::tt::{TtMatrix, TtShape};

const CLIENTS: usize = 6;
const REQUESTS_PER_CLIENT: usize = 48;

#[test]
fn serve_under_load_with_pooled_kernels_stays_deadlock_free_and_exact() {
    // Pin the kernel width and pre-spawn so every serve worker's GEMMs
    // really fan out onto pool workers (the layer is sized above the spawn
    // threshold: stage GEMMs ≈ 24×24×(16·b) madds).
    let prev = parallel::set_num_threads(4);
    pool::prewarm(4);

    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 6).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x0DD_BA11);
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    let engine = Arc::new(CompactEngine::new(ttm).unwrap());
    let n = engine.matrix().shape().num_cols();

    let mut registry = EngineRegistry::new();
    registry.insert_shared("fc", Arc::clone(&engine));
    let service = InferenceService::start(
        registry,
        ServeConfig {
            max_batch: 8,
            max_wait: Duration::from_micros(200),
            queue_capacity: 128,
            workers: 4,
        },
    )
    .unwrap();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = service.client();
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let nonce = (t * REQUESTS_PER_CLIENT + i) as u64;
                    let mut rng = ChaCha8Rng::seed_from_u64(nonce.wrapping_mul(0x9E37));
                    let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let resp = client
                        .submit("fc", x.clone())
                        .unwrap()
                        .wait()
                        .unwrap_or_else(|e| panic!("nonce {nonce}: lost to {e}"));
                    // Direct evaluation from this (non-pool) thread also
                    // dispatches pooled kernels — another concurrent
                    // dispatcher by design.
                    let mut want = vec![0.0; engine.matrix().shape().num_rows()];
                    engine.matvec_into(&x, &mut want).unwrap();
                    assert_eq!(resp.output.len(), want.len(), "nonce {nonce}: length");
                    for (r, (&got, &exp)) in resp.output.iter().zip(&want).enumerate() {
                        assert!(
                            got.to_bits() == exp.to_bits(),
                            "nonce {nonce} row {r}: {got:e} != direct {exp:e}"
                        );
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let stats = service.shutdown();
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "ServiceStats must balance under pooled nesting"
    );
    assert_eq!(stats.failed, 0, "clean run: no failures");
    assert_eq!(stats.submitted, (CLIENTS * REQUESTS_PER_CLIENT) as u64);

    parallel::set_num_threads(prev);
}
