//! Bit-determinism of the pooled kernels across pool sizes and dispatches.
//!
//! The persistent pool (`tie_tensor::pool`, DESIGN.md §11) promises that
//! work-stealing only rebalances *who* computes a statically-assigned slab,
//! never how any output element is accumulated. This suite holds the two
//! top-of-stack consumers to that promise: the compact engine's batched
//! inference (`matvec_batch_into`) and TT-SVD compilation
//! (`TtMatrix::from_dense`) must produce **bit-identical** results at pool
//! sizes {1, 2, 8} and across repeated dispatches on a warm pool.
//!
//! Problem sizes are chosen to sit *above* the re-tuned spawn threshold
//! (`PARALLEL_MIN_WORK`), so the comparisons exercise real multi-slab
//! dispatches rather than the inline path.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::tensor::{parallel, pool, Tensor};

const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// A layer big enough that its stage GEMMs (and, at this batch width, its
/// stage gathers) cross the spawn thresholds: 256×256, d = 4, rank 8.
fn engine() -> CompactEngine<f64> {
    let shape = TtShape::uniform_rank(vec![4, 4, 4, 4], vec![4, 4, 4, 4], 8).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED_F00D);
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    CompactEngine::new(ttm).unwrap()
}

fn batch_input(n: usize, b: usize) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB_A7C4);
    (0..n * b).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn run_batch(engine: &CompactEngine<f64>, xs: &[f64], b: usize) -> Vec<f64> {
    let m = engine.matrix().shape().num_rows();
    let mut ys = vec![0.0; m * b];
    engine.matvec_batch_into(xs, b, &mut ys).unwrap();
    ys
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{what}: element {i} differs ({g:e} vs {w:e})"
        );
    }
}

#[test]
fn matvec_batch_is_bit_identical_across_pool_sizes() {
    let engine = engine();
    let n = engine.matrix().shape().num_cols();
    let b = 16;
    let xs = batch_input(n, b);

    let prev = parallel::set_num_threads(1);
    let reference = run_batch(&engine, &xs, b);
    for threads in POOL_SIZES {
        parallel::set_num_threads(threads);
        let got = run_batch(&engine, &xs, b);
        assert_bits_eq(&got, &reference, &format!("pool size {threads}"));
    }
    parallel::set_num_threads(prev);
}

#[test]
fn warm_pool_repeated_dispatches_are_bit_stable() {
    // Same engine, same input, many dispatches on an already-warm pool:
    // stealing may assign slabs differently every time, results may not.
    let engine = engine();
    let n = engine.matrix().shape().num_cols();
    let b = 16;
    let xs = batch_input(n, b);

    let prev = parallel::set_num_threads(8);
    pool::prewarm(8);
    let first = run_batch(&engine, &xs, b);
    for rep in 0..16 {
        let got = run_batch(&engine, &xs, b);
        assert_bits_eq(&got, &first, &format!("warm repeat {rep}"));
    }
    parallel::set_num_threads(prev);
}

#[test]
fn tt_svd_cores_are_bit_identical_across_pool_sizes() {
    // TT-SVD compilation rides the pooled GEMM / QR / Gram kernels; the
    // factor cores must come out bit-identical at any pool size.
    let dense = Tensor::<f64>::from_fn(vec![256, 256], |idx| {
        let i = idx[0] as f64;
        let j = idx[1] as f64;
        ((i * 37.0 + j * 113.0) * 0.001).sin() + (i - j) * 1e-4
    })
    .unwrap();
    let row_modes = [4usize, 4, 4, 4];
    let col_modes = [4usize, 4, 4, 4];
    let trunc = Truncation::rank(8);

    let prev = parallel::set_num_threads(1);
    let reference = TtMatrix::from_dense(&dense, &row_modes, &col_modes, trunc).unwrap();
    for threads in POOL_SIZES {
        parallel::set_num_threads(threads);
        let got = TtMatrix::from_dense(&dense, &row_modes, &col_modes, trunc).unwrap();
        assert_eq!(got.cores().len(), reference.cores().len());
        for (k, (gc, rc)) in got.cores().iter().zip(reference.cores()).enumerate() {
            assert_eq!(gc.dims(), rc.dims(), "core {k} dims at {threads} threads");
            let gbits: Vec<u64> = gc.data().iter().map(|v| v.to_bits()).collect();
            let rbits: Vec<u64> = rc.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(gbits, rbits, "core {k} bits at {threads} threads");
        }
    }
    parallel::set_num_threads(prev);
}
