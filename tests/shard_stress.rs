//! Stress suite for the sharded serving layer: thousands of concurrent
//! nonce-keyed requests across ≥ 4 shards × 2 replicas.
//!
//! Correctness bar (ISSUE 7 acceptance):
//!
//! * ≥ 1000 requests concurrently in flight (every client thread submits
//!   its whole budget — fan-out through a `Barrier` — before any thread
//!   starts waiting on tickets);
//! * every response **bit-identical** to a direct
//!   `CompactEngine::matvec_batch_into` call on that request's input —
//!   inputs are derived from a per-request nonce, so a lost, duplicated
//!   or cross-wired response cannot pass the comparison;
//! * the per-shard counters sum exactly to the global totals, with the
//!   airtight invariant `routed == submitted == completed + failed` per
//!   shard and globally;
//! * all of it at kernel-pool sizes {1, 8} (the sharded layer fans out
//!   into the nesting-safe `tie_tensor::pool`).
//!
//! The run is reproducible: set `TIE_STRESS_SEED` to replay a failure
//! (the seed in use is printed on stderr).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Barrier};
use std::time::Duration;
use tie::core::CompactEngine;
use tie::serve::{
    EngineRegistry, HashRing, ServeConfig, ServeError, ShardConfig, ShardedService, Ticket,
};
use tie::tensor::parallel;
use tie::tt::{TtMatrix, TtShape};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 160; // 8 × 160 = 1280 ≥ 1000 in flight
const POOL_SIZES: [usize; 2] = [1, 8];

fn suite_seed() -> u64 {
    let seed = std::env::var("TIE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00_5EED);
    eprintln!("shard_stress: TIE_STRESS_SEED={seed}");
    seed
}

/// Builds layers until every shard of the ring owns at least one, so the
/// load genuinely spreads across all `shards` shards. Shapes cycle
/// through three distinct dimensions, so a cross-layer mix-up would also
/// show up as a wrong-length output.
fn layers_covering_all_shards(
    seed: u64,
    ring: &HashRing,
) -> Vec<(String, Arc<CompactEngine<f64>>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shapes = [
        TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap(),
        TtShape::uniform_rank(vec![2, 2, 2], vec![2, 3, 2], 2).unwrap(),
        TtShape::uniform_rank(vec![4], vec![9], 1).unwrap(),
    ];
    let mut owned = vec![0usize; ring.shards().len()];
    let mut layers = Vec::new();
    for i in 0..256 {
        let name = format!("layer{i}");
        let shard = ring.shard_for(&name);
        let pos = ring.shards().iter().position(|&s| s == shard).unwrap();
        // Keep adding until full coverage, then stop at a modest count.
        if owned.iter().all(|&c| c > 0) && layers.len() >= 2 * ring.shards().len() {
            break;
        }
        owned[pos] += 1;
        let shape = &shapes[i % shapes.len()];
        let ttm = TtMatrix::<f64>::random(&mut rng, shape, 0.6).unwrap();
        layers.push((name, Arc::new(CompactEngine::new(ttm).unwrap())));
    }
    assert!(
        owned.iter().all(|&c| c > 0),
        "256 candidate names must cover every shard (vnodes too low?)"
    );
    layers
}

/// The per-request input: derived from the nonce alone, so every request
/// carries a unique, reproducible payload.
fn input_for(nonce: u64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Direct single-sample reference through the exact engine entry point
/// the service workers use (`matvec_batch_into`, b = 1).
fn direct_eval(engine: &CompactEngine<f64>, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; engine.matrix().shape().num_rows()];
    engine.matvec_batch_into(x, 1, &mut y).unwrap();
    y
}

/// One full stress round at the given randomized config.
fn run_round(seed: u64, round: u64, config: ShardConfig) {
    let ring = HashRing::new(config.shards, config.vnodes).unwrap();
    let layers = layers_covering_all_shards(seed.wrapping_add(round), &ring);
    eprintln!(
        "shard_stress round {round}: shards={} replicas={} max_batch={} max_wait={:?} \
         queue={} workers={} layers={}",
        config.shards,
        config.replicas,
        config.replica.max_batch,
        config.replica.max_wait,
        config.replica.queue_capacity,
        config.replica.workers,
        layers.len()
    );

    let mut registry = EngineRegistry::new();
    for (name, engine) in &layers {
        registry.insert_shared(name.clone(), Arc::clone(engine));
    }
    let service = ShardedService::start(registry, config.clone()).unwrap();
    let layers = Arc::new(layers);
    // All clients finish submitting before any client starts waiting:
    // the whole load (≥ 1000 tickets) is concurrently in flight.
    let submitted_barrier = Arc::new(Barrier::new(CLIENTS));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = service.client();
            let layers = Arc::clone(&layers);
            let barrier = Arc::clone(&submitted_barrier);
            std::thread::spawn(move || {
                let mut tickets: Vec<(u64, usize, Ticket)> =
                    Vec::with_capacity(REQUESTS_PER_CLIENT);
                for i in 0..REQUESTS_PER_CLIENT {
                    let nonce = (t * REQUESTS_PER_CLIENT + i) as u64;
                    let li = nonce as usize % layers.len();
                    let (name, engine) = &layers[li];
                    let n = engine.matrix().shape().num_cols();
                    let x = input_for(nonce, n, seed);
                    // The router's bounded backoff may still give up under
                    // a tiny queue; the client keeps offering (real load
                    // does not evaporate on backpressure).
                    let ticket = loop {
                        match client.submit(name, x.clone()) {
                            Ok(ticket) => break ticket,
                            Err(ServeError::QueueFull) => {
                                std::thread::sleep(Duration::from_micros(100));
                            }
                            Err(e) => panic!("nonce {nonce}: unexpected submit error {e}"),
                        }
                    };
                    tickets.push((nonce, li, ticket));
                }
                barrier.wait();
                let in_flight = tickets.len();
                for (nonce, li, ticket) in tickets {
                    let (_, engine) = &layers[li];
                    let x = input_for(nonce, engine.matrix().shape().num_cols(), seed);
                    let resp = ticket
                        .wait()
                        .unwrap_or_else(|e| panic!("nonce {nonce}: response lost to {e}"));
                    let want = direct_eval(engine, &x);
                    assert_eq!(
                        resp.output.len(),
                        want.len(),
                        "nonce {nonce}: output length (cross-layer wiring?)"
                    );
                    for (r, (&got, &exp)) in resp.output.iter().zip(&want).enumerate() {
                        assert!(
                            got.to_bits() == exp.to_bits(),
                            "nonce {nonce} row {r}: {got:e} != direct {exp:e} \
                             (lost/cross-wired response)"
                        );
                    }
                }
                in_flight as u64
            })
        })
        .collect();

    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, (CLIENTS * REQUESTS_PER_CLIENT) as u64);
    assert!(
        total >= 1000,
        "the load must be ≥ 1000 concurrently in-flight requests"
    );

    let stats = service.shutdown();
    let global = stats.global();

    // Global balance.
    assert_eq!(
        global.submitted,
        global.completed + global.failed,
        "counter balance"
    );
    assert_eq!(global.failed, 0, "no request may fail in a clean run");
    assert_eq!(
        global.completed, total,
        "every checked response is accounted exactly once"
    );
    assert_eq!(
        global.batched_requests, global.submitted,
        "each request rode one batch"
    );

    // Router ↔ replica reconciliation, per shard and in aggregate.
    assert_eq!(
        stats.routed(),
        global.submitted,
        "router routed == replicas accepted"
    );
    assert_eq!(stats.drained(), 0, "no shard ever drained in a clean run");
    let mut shards_with_traffic = 0usize;
    let mut summed = tie::serve::ServiceStats::default();
    for shard in &stats.shards {
        let service_view = shard.service();
        assert_eq!(
            shard.routed, service_view.submitted,
            "shard {}: routed vs replica-accepted",
            shard.shard
        );
        assert_eq!(
            service_view.submitted,
            service_view.completed + service_view.failed,
            "shard {} balance",
            shard.shard
        );
        if shard.routed > 0 {
            shards_with_traffic += 1;
        }
        summed.absorb(&service_view);
    }
    assert!(
        shards_with_traffic >= 4.min(config.shards),
        "load must spread across ≥ 4 shards (got {shards_with_traffic})"
    );
    // The per-shard views sum exactly to the global totals.
    assert_eq!(summed.submitted, global.submitted);
    assert_eq!(summed.completed, global.completed);
    assert_eq!(summed.failed, global.failed);
    assert_eq!(summed.batches, global.batches);
    assert_eq!(summed.batched_requests, global.batched_requests);
    assert_eq!(summed.latency_ns_sum, global.latency_ns_sum);
}

/// Randomized configs per pool size; max_batch 1 and 8 are both always
/// exercised (the pool-size acceptance matrix), the remaining knobs come
/// from the seeded RNG.
#[test]
fn stress_sharded_thousands_in_flight_bit_identical() {
    let seed = suite_seed();
    let mut cfg_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));
    let prev = parallel::set_num_threads(0);

    for &pool in &POOL_SIZES {
        parallel::set_num_threads(pool);
        eprintln!("shard_stress: kernel pool size {pool}");
        for (round, &max_batch) in [1usize, 8].iter().enumerate() {
            let config = ShardConfig {
                shards: 4 + cfg_rng.gen_range(0..2usize), // 4 or 5
                replicas: 2,
                vnodes: 64,
                replica: ServeConfig {
                    max_batch,
                    max_wait: Duration::from_micros(cfg_rng.gen_range(0..2000u64)),
                    queue_capacity: cfg_rng.gen_range(128..512usize),
                    workers: cfg_rng.gen_range(1..4usize),
                },
                submit_retries: cfg_rng.gen_range(4..12usize),
                retry_backoff: Duration::from_micros(cfg_rng.gen_range(10..200u64)),
            };
            run_round(seed, (pool * 10 + round) as u64, config);
        }
    }

    parallel::set_num_threads(prev);
}
