//! Degenerate and boundary configurations: `d = 1`, unit modes, unit
//! ranks, extreme aspect ratios — the places index algebra usually breaks.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::tensor::{init, linalg};
use tie::tt::inference::naive_matvec;

fn check_compact_equals_dense(shape: &TtShape, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ttm = TtMatrix::<f64>::random(&mut rng, shape, 0.8).unwrap();
    let dense = ttm.to_dense().unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
    let engine = CompactEngine::new(ttm.clone()).unwrap();
    let (y, _) = engine.matvec(&x).unwrap();
    let want = linalg::matvec(&dense, &x).unwrap();
    assert!(
        y.approx_eq(&want, 1e-9),
        "compact != dense for {shape}: max diff {}",
        y.sub(&want).unwrap().max_abs()
    );
    let (y_naive, _) = naive_matvec(&ttm, &x).unwrap();
    assert!(y_naive.approx_eq(&want, 1e-9), "naive != dense for {shape}");
}

#[test]
fn d1_layer_degenerates_to_plain_matvec() {
    check_compact_equals_dense(&TtShape::new(vec![7], vec![5], vec![1, 1]).unwrap(), 1);
}

#[test]
fn unit_row_modes() {
    // M = 1: a dot-product layer.
    check_compact_equals_dense(
        &TtShape::new(vec![1, 1, 1], vec![3, 4, 5], vec![1, 2, 2, 1]).unwrap(),
        2,
    );
}

#[test]
fn unit_col_modes() {
    // N = 1: an outer-product / broadcast layer.
    check_compact_equals_dense(
        &TtShape::new(vec![3, 4, 5], vec![1, 1, 1], vec![1, 2, 2, 1]).unwrap(),
        3,
    );
}

#[test]
fn mixed_unit_modes_inside_the_chain() {
    check_compact_equals_dense(
        &TtShape::new(vec![2, 1, 3], vec![1, 4, 1], vec![1, 3, 2, 1]).unwrap(),
        4,
    );
}

#[test]
fn all_unit_ranks() {
    // Rank-1 TT: the matrix is a Kronecker product of d tiny blocks.
    check_compact_equals_dense(
        &TtShape::new(vec![2, 3, 2], vec![3, 2, 2], vec![1, 1, 1, 1]).unwrap(),
        5,
    );
}

#[test]
fn wildly_unbalanced_ranks() {
    check_compact_equals_dense(
        &TtShape::new(vec![2, 2, 2], vec![2, 2, 2], vec![1, 4, 1, 1]).unwrap(),
        6,
    );
    check_compact_equals_dense(
        &TtShape::new(vec![2, 2, 2], vec![2, 2, 2], vec![1, 1, 4, 1]).unwrap(),
        7,
    );
}

#[test]
fn extreme_aspect_ratio_layers() {
    // 2 -> 512 and 512 -> 2.
    check_compact_equals_dense(
        &TtShape::new(vec![8, 8, 8], vec![2, 1, 1], vec![1, 2, 2, 1]).unwrap(),
        8,
    );
    check_compact_equals_dense(
        &TtShape::new(vec![2, 1, 1], vec![8, 8, 8], vec![1, 2, 2, 1]).unwrap(),
        9,
    );
}

#[test]
fn simulator_handles_degenerate_layers() {
    for (shape, seed) in [
        (TtShape::new(vec![7], vec![5], vec![1, 1]).unwrap(), 20u64),
        (
            TtShape::new(vec![1, 4], vec![3, 1], vec![1, 2, 1]).unwrap(),
            21,
        ),
        (
            TtShape::new(vec![2, 2], vec![2, 2], vec![1, 1, 1]).unwrap(),
            22,
        ),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let engine = CompactEngine::new(ttm.clone()).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        let (want, ops) = engine.matvec(&x).unwrap();
        let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
        let layer = tie.load_layer(ttm).unwrap();
        let (got, stats) = tie.run(&layer, &x, false).unwrap();
        assert!(
            got.relative_error(&want).unwrap() < 2e-2,
            "sim diverges on degenerate {shape}"
        );
        assert_eq!(stats.macs(), ops.mults, "MAC count on {shape}");
    }
}

#[test]
fn zero_input_produces_zero_output_everywhere() {
    let shape = TtShape::uniform_rank(vec![3, 3], vec![3, 3], 2).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(30);
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let x = Tensor::<f64>::zeros(vec![9]);
    let engine = CompactEngine::new(ttm.clone()).unwrap();
    let (y, _) = engine.matvec(&x).unwrap();
    assert!(y.max_abs() == 0.0);
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    // All-zero input exercises the calibration fallback path too.
    let (y_hw, _) = tie.run(&layer, &x, false).unwrap();
    assert!(y_hw.max_abs() == 0.0);
}

#[test]
fn zero_weight_layer_is_handled() {
    // All-zero cores exercise the weight-calibration fallback.
    let cores = vec![
        Tensor::<f64>::zeros(vec![1, 2, 3, 2]),
        Tensor::<f64>::zeros(vec![2, 2, 3, 1]),
    ];
    let ttm = TtMatrix::new(cores).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let x = Tensor::<f64>::filled(vec![9], 1.0).unwrap();
    let (y, _) = tie.run(&layer, &x, false).unwrap();
    assert_eq!(y.max_abs(), 0.0);
}

#[test]
fn linalg_degenerate_matrices() {
    // Zero matrix SVD/QR must not blow up.
    let z = Tensor::<f64>::zeros(vec![4, 3]);
    let f = linalg::svd(&z).unwrap();
    assert!(f.s.iter().all(|&s| s == 0.0));
    assert!(f.reconstruct().unwrap().approx_eq(&z, 1e-12));
    let q = linalg::qr(&z).unwrap();
    assert!(linalg::matmul(&q.q, &q.r).unwrap().approx_eq(&z, 1e-12));
    // 1x1 matrices.
    let one = Tensor::<f64>::from_vec(vec![1, 1], vec![-3.0]).unwrap();
    let f1 = linalg::svd(&one).unwrap();
    assert!((f1.s[0] - 3.0).abs() < 1e-12);
    assert!(f1.reconstruct().unwrap().approx_eq(&one, 1e-12));
}

#[test]
fn tt_arithmetic_on_degenerate_shapes() {
    use tie::tt::arithmetic::{tt_add, tt_dot, tt_hadamard};
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    // d = 1 tensors.
    let a = TtTensor::<f64>::random(&mut rng, &[5], &[1, 1], 1.0).unwrap();
    let b = TtTensor::<f64>::random(&mut rng, &[5], &[1, 1], 1.0).unwrap();
    let sum = tt_add(&a, &b).unwrap();
    let want = a.to_dense().unwrap().add(&b.to_dense().unwrap()).unwrap();
    assert!(sum.to_dense().unwrap().approx_eq(&want, 1e-12));
    let had = tt_hadamard(&a, &b).unwrap();
    let wanth = a
        .to_dense()
        .unwrap()
        .hadamard(&b.to_dense().unwrap())
        .unwrap();
    assert!(had.to_dense().unwrap().approx_eq(&wanth, 1e-12));
    let dot = tt_dot(&a, &b).unwrap();
    let wantd: f64 = a
        .to_dense()
        .unwrap()
        .data()
        .iter()
        .zip(b.to_dense().unwrap().data())
        .map(|(&x, &y)| x * y)
        .sum();
    assert!((dot - wantd).abs() < 1e-12);
}
