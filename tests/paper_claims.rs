//! Assertions of the paper's headline numbers — the reproduction's
//! acceptance tests. Each test names the table/figure it pins down.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::baselines::{eyeriss, specs};
use tie::core::{counts, InferencePlan};
use tie::energy::{project, TechNode, TieAreaPowerModel};
use tie::prelude::*;
use tie::tensor::init;
use tie::workloads::table4_benchmarks;

fn run_workload(shape: &TtShape, seed: u64) -> (f64 /* TOPS */, f64 /* util */) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ttm = TtMatrix::<f64>::random(&mut rng, shape, 0.5).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
    let (_, stats) = tie.run(&layer, &x, false).unwrap();
    (
        stats.equivalent_ops_per_sec(layer.plan().dense_equivalent_ops(), 1000.0) / 1e12,
        stats.utilization(16, 16),
    )
}

/// Table 4: all four compression ratios within 2%.
#[test]
fn table4_compression_ratios() {
    for b in table4_benchmarks() {
        let cr = b.shape.compression_ratio();
        assert!(
            (cr - b.paper_cr).abs() / b.paper_cr < 0.02,
            "{}: {cr:.0} vs {}",
            b.name,
            b.paper_cr
        );
    }
}

/// Table 6: the area/power model reproduces the printed breakdown.
#[test]
fn table6_calibration() {
    let m = TieAreaPowerModel::paper_prototype();
    assert!((m.power_at_utilization(1.0).total() - 154.8).abs() < 0.01);
    assert!((m.area().total() - 1.744).abs() < 0.001);
}

/// Table 7: the projection rule lands EIE at the printed 28 nm numbers.
#[test]
fn table7_eie_projection() {
    let p = project(&specs::eie(), TechNode::NM28);
    assert!((p.freq_mhz - 1285.0).abs() < 2.0);
    assert!((p.area_mm2.unwrap() - 15.7).abs() < 0.15);
    assert_eq!(p.power_mw, 590.0);
}

/// Table 8: TIE's measured mean equivalent throughput across the Table 4
/// workloads lands in the paper's regime (7.64 TOPS quoted; the
/// reproduction accepts 4–15 TOPS) and beats projected CirCNN by ≥ 3×.
#[test]
fn table8_throughput_and_advantage() {
    let mut tops_sum = 0.0;
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let (tops, util) = run_workload(&b.shape, 7000 + i as u64);
        assert!(util > 0.5, "{}: utilization {util}", b.name);
        tops_sum += tops;
    }
    let mean_tops = tops_sum / 4.0;
    assert!(
        (4.0..15.0).contains(&mean_tops),
        "mean equivalent TOPS {mean_tops:.2} outside the paper regime"
    );
    let circnn_tops = specs::CIRCNN_TOPS_NATIVE / 1e12 * (45.0 / 28.0);
    assert!(
        mean_tops / circnn_tops > 3.0,
        "TIE advantage over CirCNN only {:.2}x",
        mean_tops / circnn_tops
    );
}

/// Table 9 direction: TIE's TT CONV stack beats projected Eyeriss on
/// frames/s, frames/s/W and frames/s/mm².
#[test]
fn table9_eyeriss_direction() {
    // Eyeriss projected.
    let model = eyeriss::EyerissModel::default();
    let stack = eyeriss::vgg16_conv_stack();
    let fps_native = model.frames_per_sec(&stack).unwrap();
    let ey28 = project(&specs::eyeriss(), TechNode::NM28);
    let fps_proj = fps_native * ey28.freq_mhz / 200.0;
    // TIE analytic conv model (rank 8).
    let cfg = TieConfig::default();
    let mut cycles = 0u64;
    for w in tie::workloads::vgg_conv::vgg16_conv_workloads(8) {
        let plan = InferencePlan::new(&w.shape).unwrap();
        for s in plan.stages() {
            cycles += (s.gtilde_rows.div_ceil(cfg.n_mac)
                * (s.v_cols * w.pixels).div_ceil(cfg.n_pe)
                * s.gtilde_cols) as u64;
        }
    }
    let tie_fps = 1.0 / (cycles as f64 / 1e9);
    assert!(
        tie_fps > fps_proj,
        "TIE {tie_fps:.2} fps must beat projected Eyeriss {fps_proj:.2}"
    );
    let tie_model = TieAreaPowerModel::paper_prototype();
    let tie_fps_w = tie_fps / (tie_model.power_at_utilization(0.8).total() / 1e3);
    let ey_fps_w = fps_proj / (ey28.power_mw / 1e3);
    assert!(tie_fps_w > ey_fps_w, "fps/W direction");
}

/// §3.1: the redundancy of naive TT inference on FC6 is three orders of
/// magnitude (paper quotes 1073×; printed-formula arithmetic gives ~2×
/// that — see DESIGN.md).
#[test]
fn section31_redundancy_magnitude() {
    let fc6 = &table4_benchmarks()[0].shape;
    let ratio = counts::redundancy_ratio(fc6);
    assert!((1000.0..4000.0).contains(&ratio), "ratio {ratio:.0}");
    // And the relationship between the three counts holds everywhere.
    for b in table4_benchmarks() {
        assert!(counts::mul_theoretical_eqn7(&b.shape) <= counts::mul_compact(&b.shape));
        assert!(counts::mul_compact(&b.shape) < counts::mul_naive(&b.shape));
    }
}

/// §3.2 / Table 5: every benchmark fits the prototype SRAM budget, and
/// the budget is tight (FC6 needs more than half of the working SRAM).
#[test]
fn section32_sram_sizing() {
    let cfg = TieConfig::default();
    let mut peak_max = 0usize;
    for b in table4_benchmarks() {
        let plan = InferencePlan::new(&b.shape).unwrap();
        assert!(plan.max_intermediate_elems() <= cfg.working_capacity_elems());
        peak_max = peak_max.max(plan.max_intermediate_elems());
    }
    assert!(
        peak_max > cfg.working_capacity_elems() / 2,
        "the 384 KB budget should be tight: peak {peak_max}"
    );
}

/// Fig. 12 direction: TIE's area efficiency beats projected EIE by a
/// large factor on FC7 (paper: 7.22–10.66×; reproduction accepts ≥ 4×).
#[test]
fn fig12_area_efficiency_direction() {
    let (tie_tops, _) = run_workload(&table4_benchmarks()[1].shape, 7100);
    let tie_area_eff = tie_tops * 1e3 / 1.744; // GOPS/mm²
                                               // EIE upper bound: even at TIE-equal throughput, its 15.7 mm² caps
                                               // area efficiency.
    let eie_area_eff_ub = tie_tops * 1e3 / 15.7;
    assert!(tie_area_eff / eie_area_eff_ub >= 4.0);
}

/// Table 9's analytic batched-cycle model equals the cycle-accurate
/// simulator on a real (rank-reduced) VGG CONV layer shape, run as a
/// pixel batch — validating the model the Table 9 numbers come from.
#[test]
fn table9_batched_model_validated_by_simulator() {
    let cfg = TieConfig::default();
    // conv5-family factorization at rank 4, a 12-pixel chunk.
    let shape = TtShape::uniform_rank(vec![8, 4, 4, 4], vec![8, 8, 8, 9], 4).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(7300);
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.4).unwrap();
    let mut tie = TieAccelerator::new(cfg).unwrap();
    let layer = tie.load_layer(ttm).unwrap();
    let batch = 12usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![4608, batch], 0.5);
    let (ys, stats) = tie.run_batch(&layer, &xs, false).unwrap();
    // Cycle model.
    let predicted: u64 = layer
        .plan()
        .stages()
        .iter()
        .map(|s| {
            (s.gtilde_rows.div_ceil(cfg.n_mac)
                * (s.v_cols * batch).div_ceil(cfg.n_pe)
                * s.gtilde_cols) as u64
        })
        .sum();
    let conflicts: u64 = stats.stages.iter().map(|s| s.conflict_cycles).sum();
    assert_eq!(stats.cycles(), predicted + conflicts);
    // Functional spot-check of one pixel column.
    let x0 = xs.cols(0, 1).unwrap().reshaped(vec![4608]).unwrap();
    let (want, _) = layer.reference().matvec(&x0).unwrap();
    let got = ys.cols(0, 1).unwrap().reshaped(vec![512]).unwrap();
    assert!(got.relative_error(&want).unwrap() < 2e-2);
}

/// Fig. 13 shape: throughput decreases monotonically with rank on FC7
/// (more rank = more real work per dense-equivalent op).
#[test]
fn fig13_rank_monotonicity() {
    let base = &table4_benchmarks()[1].shape;
    let mut last = f64::INFINITY;
    for r in [2usize, 4, 6, 8] {
        let (tops, _) = run_workload(&base.with_uniform_rank(r).unwrap(), 7200 + r as u64);
        assert!(
            tops < last,
            "TOPS should fall with rank: r={r} gives {tops:.2} after {last:.2}"
        );
        last = tops;
    }
}
