//! Integration suite for the fused-Transform indexing-map compiler
//! (DESIGN.md §13).
//!
//! Three promises are held here, end to end:
//!
//! 1. The composed affine maps (`stage_transform_map`, `prepare_map`,
//!    `assemble_map`) agree **index-for-index** with the legacy
//!    precomputed gather tables on random layouts (property test, shapes
//!    including rank-1, singleton modes, and single-stage `d = 1`) and on
//!    every Table 4 stage plan.
//! 2. The fused engines (float `CompactEngine`, fixed-point
//!    `QuantizedEngine`) are **bitwise equal** to the gather-table oracle
//!    on all Table 4 layers at pool sizes {1, 2, 8}, saturation reports
//!    included.
//! 3. (`--ignored`, release CI) fused FC7 batch-16 stays under the
//!    `TIE_TRANSFORM_BUDGET_S` wall-clock budget.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tie::core::indexmap::{assemble_map, prepare_map, stage_transform_map};
use tie::core::transform::{assemble_output_gather, prepare_input_scatter, TransformMap};
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::sim::{QuantConfig, QuantizedEngine};
use tie::tensor::parallel;
use tie::workloads::table4_benchmarks;

const POOL_SIZES: [usize; 3] = [1, 2, 8];

/// Asserts every composed map against its legacy table on one layout.
///
/// Conventions (each verified against the executable legacy code, not just
/// documentation):
/// - stage `h ≥ 2`: `TransformMap::gather` is dest-indexed
///   (`out[o] = in[g[o]]`), so the source→dest affine map must invert it.
/// - prepare: `prepare_input_scatter` is source-indexed
///   (`out[s[j]] = x[j]`), matching the map directly.
/// - assemble: `assemble_output_gather` is dest-indexed like the stages.
fn assert_maps_match_legacy(shape: &TtShape) {
    for h in 2..=shape.ndim() {
        let t = TransformMap::new(shape, h).unwrap();
        let map = stage_transform_map(shape, h).unwrap();
        let g = t.gather();
        assert_eq!(map.source_len(), g.len(), "stage {h}: element count");
        for (o, &src) in g.iter().enumerate() {
            assert_eq!(map.apply(src), o, "stage {h}: source {src}");
        }
    }
    let s = prepare_input_scatter(shape);
    let pmap = prepare_map(shape);
    assert_eq!(pmap.source_len(), s.len(), "prepare: element count");
    for (j, &dest) in s.iter().enumerate() {
        assert_eq!(pmap.apply(j), dest, "prepare: source {j}");
    }
    let g = assemble_output_gather(shape);
    let amap = assemble_map(shape);
    assert_eq!(amap.source_len(), g.len(), "assemble: element count");
    for (o, &src) in g.iter().enumerate() {
        assert_eq!(amap.apply(src), o, "assemble: source {src}");
    }
}

/// Strategy: valid layouts including every degenerate family the compiler
/// must survive — `d = 1` (no inter-stage transform at all), singleton
/// modes (extent-1 digits), and rank-1 (trivial `r` axes).
fn tt_shape_strategy() -> impl Strategy<Value = TtShape> {
    (1usize..=4)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(1usize..=5, d),
                proptest::collection::vec(1usize..=5, d),
                proptest::collection::vec(1usize..=4, d.saturating_sub(1)),
            )
        })
        .prop_map(|(m, n, interior)| {
            let mut ranks = vec![1usize];
            ranks.extend(interior);
            ranks.push(1);
            TtShape::new(m, n, ranks).expect("generated shape is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Promise 1, random layouts: composed maps == legacy gather tables,
    /// index for index.
    #[test]
    fn composed_maps_equal_legacy_tables(shape in tt_shape_strategy()) {
        assert_maps_match_legacy(&shape);
    }
}

/// Promise 1, the paper's workloads: every Table 4 stage plan.
#[test]
fn table4_stage_maps_equal_legacy_tables() {
    for bench in table4_benchmarks() {
        assert_maps_match_legacy(&bench.shape);
    }
}

fn batch_input(rng: &mut ChaCha8Rng, n: usize, b: usize) -> Vec<f64> {
    (0..n * b).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

/// Promise 2, float: on every Table 4 layer, the fused write-epilogue
/// pipeline and the gather-table oracle produce bit-identical outputs and
/// identical operation counts at every pool size.
#[test]
fn fused_float_matches_gather_oracle_on_table4_at_all_pool_sizes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x713E_0006);
    for bench in table4_benchmarks() {
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = CompactEngine::new(ttm).unwrap();
        let (n, m) = (bench.shape.num_cols(), bench.shape.num_rows());
        for b in [1usize, 3] {
            let xs = batch_input(&mut rng, n, b);
            let mut fused = vec![0.0f64; m * b];
            let mut oracle = vec![0.0f64; m * b];
            let prev = parallel::set_num_threads(1);
            for threads in POOL_SIZES {
                parallel::set_num_threads(threads);
                let cf = engine.matvec_batch_into(&xs, b, &mut fused).unwrap();
                let co = engine
                    .matvec_batch_into_gather(&xs, b, &mut oracle)
                    .unwrap();
                assert_eq!(cf, co, "{}: op counts (b={b}, pool={threads})", bench.name);
                for (i, (f, o)) in fused.iter().zip(&oracle).enumerate() {
                    assert!(
                        f.to_bits() == o.to_bits(),
                        "{}: element {i} differs (b={b}, pool={threads})",
                        bench.name
                    );
                }
            }
            parallel::set_num_threads(prev);
        }
    }
}

/// Promise 2, fixed-point: on every Table 4 layer the fused quantized
/// engine is bit-stable across pool sizes — outputs *and* the
/// `QMatmulReport` saturation counters — and the batched pass equals `b`
/// independent single-sample passes bitwise.
#[test]
fn fused_quantized_is_bit_stable_on_table4_at_all_pool_sizes() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x713E_0007);
    for bench in table4_benchmarks() {
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
        let (n, m) = (bench.shape.num_cols(), bench.shape.num_rows());
        let b = 2usize;
        let xs = batch_input(&mut rng, n, b);

        let prev = parallel::set_num_threads(1);
        let mut reference = vec![0.0f64; m * b];
        let ref_report = engine.matvec_batch_into(&xs, b, &mut reference).unwrap();
        for threads in POOL_SIZES {
            parallel::set_num_threads(threads);
            let mut ys = vec![0.0f64; m * b];
            let report = engine.matvec_batch_into(&xs, b, &mut ys).unwrap();
            assert_eq!(
                report, ref_report,
                "{}: report (pool={threads})",
                bench.name
            );
            for (i, (g, w)) in ys.iter().zip(&reference).enumerate() {
                assert!(
                    g.to_bits() == w.to_bits(),
                    "{}: element {i} differs (pool={threads})",
                    bench.name
                );
            }
        }
        parallel::set_num_threads(1);
        // Batched == b single-sample passes, bitwise.
        let mut single = vec![0.0f64; m];
        let mut x1 = vec![0.0f64; n];
        for c in 0..b {
            for j in 0..n {
                x1[j] = xs[j * b + c];
            }
            engine.matvec_batch_into(&x1, 1, &mut single).unwrap();
            for r in 0..m {
                assert!(
                    single[r].to_bits() == reference[r * b + c].to_bits(),
                    "{}: sample {c} row {r} differs from batched",
                    bench.name
                );
            }
        }
        parallel::set_num_threads(prev);
    }
}

/// Promise 3 (release CI, `--ignored`): fused FC7 batch-16 under the
/// `TIE_TRANSFORM_BUDGET_S` wall-clock budget (seconds, default 2.0).
/// Best-of-3 so a cold pool or scheduler hiccup cannot fail the gate.
#[test]
#[ignore = "wall-clock budget gate; run in release via scripts/ci.sh"]
fn fused_fc7_batch16_meets_wall_clock_budget() {
    let budget_s: f64 = std::env::var("TIE_TRANSFORM_BUDGET_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0x713E_0008);
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    let engine = CompactEngine::new(ttm).unwrap();
    let (n, m) = (shape.num_cols(), shape.num_rows());
    let b = 16usize;
    let xs = batch_input(&mut rng, n, b);
    let mut ys = vec![0.0f64; m * b];

    engine.matvec_batch_into(&xs, b, &mut ys).unwrap(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = std::time::Instant::now();
        engine.matvec_batch_into(&xs, b, &mut ys).unwrap();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    assert!(
        best < budget_s,
        "fused FC7 batch-16 took {best:.4}s, budget {budget_s}s"
    );
}
