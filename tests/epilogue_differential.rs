//! Epilogue-fusion differential suite.
//!
//! The Tile/Stage/Global GEMM hierarchy promises that every fused kernel —
//! any (tile kernel × epilogue × destination map) instantiation, at any
//! pool size — is **bit-identical** to the naive reference GEMM followed
//! by a separate scatter pass and a separate epilogue pass. This suite
//! sweeps the full combination lattice on both datapaths:
//!
//! * float: {dispatched `FloatAuto`, forced-portable} × {Identity, Relu,
//!   Bias, BiasRelu} × {RowMajor, identity `DestMap`, permuted `DestMap`}
//!   × pool {1, 8};
//! * quantized: {dispatched `IntAuto`, forced-portable} × {Requant,
//!   RequantRelu} × {row-major, permuted `DestMap`} × pool {1, 8}, with
//!   saturation reports compared exactly.
//!
//! Shapes include the degenerate corners (`m = 1`, `k = 1`, single
//! element) and tile-remainder edges straddling the 8/16/32 SIMD lane
//! widths, where ragged-tail handling historically hides bugs.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::quant::{
    alignment, qmatmul_naive, qmatmul_raw, qmatmul_raw_mapped, qmatmul_raw_mapped_relu,
    qmatmul_raw_relu, qmatmul_raw_relu_portable, QFormat, QTensor,
};
use tie::tensor::linalg::{gemm_into_fused, gemm_into_mapped_fused, DestMap};
use tie::tensor::tile::{
    stream_gemm, Activation, Bias, BiasRelu, FloatPath, Identity, Mapped, PortableTile, Relu,
    RowMajor,
};
use tie::tensor::{init, parallel, Tensor};

/// Shapes covering the degenerate corners and the SIMD-lane remainder
/// edges (lane widths are 32/16/8 for f64 AVX-512/AVX2/portable tiles).
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),  // single element
    (1, 7, 5),  // m = 1
    (3, 1, 4),  // k = 1
    (5, 9, 31), // one short of a full 32-lane tile
    (4, 6, 33), // one past a full 32-lane tile
    (7, 11, 17),
];

/// A deterministic permuted `DestMap`: rows reversed, columns rotated.
/// Separable, bijective, and different from identity whenever the output
/// has more than one element.
fn permuted_map(rows: usize, cols: usize) -> DestMap {
    let row: Vec<usize> = (0..rows).map(|i| (rows - 1 - i) * cols).collect();
    let col: Vec<usize> = (0..cols).map(|q| (q + 1) % cols).collect();
    DestMap::new(row, col).unwrap()
}

/// Naive oracle: plain triple-loop GEMM (ascending `k`, no blocking —
/// the same accumulation order the streaming kernels promise), then a
/// separate scatter pass through `map`, then a separate epilogue pass
/// over the scattered output.
#[allow(clippy::too_many_arguments)]
fn oracle_f64(
    a: &[f64],
    b: &[f64],
    m: usize,
    k: usize,
    n_mat: usize,
    bsz: usize,
    map: &DestMap,
    bias: Option<&[f64]>,
    act: Activation,
) -> Vec<f64> {
    let n = n_mat * bsz;
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    // Separate scatter pass.
    let mut scattered = vec![0.0f64; m * n];
    for i in 0..m {
        for q in 0..n_mat {
            for cb in 0..bsz {
                scattered[map.offset(i, q) * bsz + cb] = c[i * n + q * bsz + cb];
            }
        }
    }
    // Separate epilogue pass, indexed by the logical destination element.
    for e in 0..m * n_mat {
        for cb in 0..bsz {
            let mut v = scattered[e * bsz + cb];
            if let Some(bias) = bias {
                v += bias[e];
            }
            if act == Activation::Relu {
                v = if v > 0.0 { v } else { 0.0 };
            }
            scattered[e * bsz + cb] = v;
        }
    }
    scattered
}

/// Runs the float lattice for one shape at one pool size: both kernels
/// (dispatched via the public fused entry points, forced-portable via
/// `stream_gemm`) × all four epilogues × all three destinations.
fn float_lattice(m: usize, k: usize, n_mat: usize, bsz: usize, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
    let b: Tensor<f64> = init::uniform(&mut rng, vec![k, n_mat * bsz], 1.0);
    let bias: Vec<f64> = (0..m * n_mat).map(|e| (e as f64 - 3.0) * 0.25).collect();
    let identity = DestMap::identity(m, n_mat);
    let permuted = permuted_map(m, n_mat);

    for act in [Activation::Identity, Activation::Relu] {
        for with_bias in [false, true] {
            let bias_opt = with_bias.then_some(&bias[..]);
            for (map, mapped) in [(&identity, false), (&identity, true), (&permuted, true)] {
                let want = oracle_f64(a.data(), b.data(), m, k, n_mat, bsz, map, bias_opt, act);

                // Dispatched kernel through the public fused entry points.
                let mut got = vec![0.0f64; m * n_mat * bsz];
                if mapped {
                    gemm_into_mapped_fused(
                        a.data(),
                        b.data(),
                        &mut got,
                        m,
                        k,
                        n_mat,
                        bsz,
                        map,
                        bias_opt,
                        act,
                    )
                    .unwrap();
                } else {
                    gemm_into_fused(
                        a.data(),
                        b.data(),
                        &mut got,
                        m,
                        k,
                        n_mat,
                        bsz,
                        bias_opt,
                        act,
                    )
                    .unwrap();
                }
                assert_bits_eq(&got, &want, "dispatched", act, with_bias, mapped);

                // Forced-portable kernel straight through the streaming
                // stage, exercising every epilogue type explicitly.
                let mut port = vec![0.0f64; m * n_mat * bsz];
                let path = FloatPath::<f64>::new();
                let kern = PortableTile::<8, 1>;
                macro_rules! run_portable {
                    ($epi:expr) => {
                        if mapped {
                            stream_gemm(
                                path,
                                kern,
                                a.data(),
                                b.data(),
                                &mut port,
                                m,
                                k,
                                n_mat,
                                bsz,
                                &Mapped::new(map),
                                $epi,
                            )
                        } else {
                            stream_gemm(
                                path,
                                kern,
                                a.data(),
                                b.data(),
                                &mut port,
                                m,
                                k,
                                n_mat,
                                bsz,
                                &RowMajor::new(m, n_mat),
                                $epi,
                            )
                        }
                    };
                }
                match (with_bias, act) {
                    (false, Activation::Identity) => run_portable!(&Identity),
                    (false, Activation::Relu) => run_portable!(&Relu),
                    (true, Activation::Identity) => run_portable!(&Bias::new(&bias)),
                    (true, Activation::Relu) => run_portable!(&BiasRelu::new(&bias)),
                }
                assert_bits_eq(&port, &want, "portable", act, with_bias, mapped);
            }
        }
    }
}

fn assert_bits_eq(
    got: &[f64],
    want: &[f64],
    kernel: &str,
    act: Activation,
    with_bias: bool,
    mapped: bool,
) {
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{kernel} kernel, act {act:?}, bias {with_bias}, mapped {mapped}, element {i}: {g} != {w}"
        );
    }
}

#[test]
fn float_kernel_epilogue_dest_lattice_matches_oracle_at_pool_1_and_8() {
    for (threads, seed) in [(1usize, 0x51u64), (8, 0x52)] {
        let prev = parallel::set_num_threads(threads);
        for (si, &(m, k, n_mat)) in SHAPES.iter().enumerate() {
            for bsz in [1usize, 3] {
                float_lattice(m, k, n_mat, bsz, seed + si as u64 * 31);
            }
        }
        parallel::set_num_threads(prev);
    }
}

/// Heavy-tailed random codes: ~1/4 pinned at ±`i16::MAX` so both
/// saturation paths fire regularly (same generator family as
/// `tests/quant_kernels.rs`).
fn heavy_codes(len: usize, seed: u64) -> Vec<i16> {
    let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..len)
        .map(|_| {
            let r = next();
            match r % 4 {
                0 => {
                    if r & 8 == 0 {
                        i16::MAX
                    } else {
                        i16::MIN
                    }
                }
                _ => (r >> 16) as i16,
            }
        })
        .collect()
}

/// Quantized lattice for one shape at the current pool size: the raw
/// kernels (dispatched and forced-portable; plain and relu; row-major and
/// mapped) against naive-then-scatter-then-relu, codes and reports exact.
fn quant_lattice(m: usize, k: usize, n_mat: usize, seed: u64) {
    let a = QTensor::from_codes(
        vec![m, k],
        heavy_codes(m * k, seed),
        QFormat::new(12).unwrap(),
    )
    .unwrap();
    let b = QTensor::from_codes(
        vec![k, n_mat],
        heavy_codes(k * n_mat, seed ^ 0xabcd),
        QFormat::new(8).unwrap(),
    )
    .unwrap();
    let out = QFormat::new(14).unwrap();
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out);

    // Oracle: the retained naive kernel, then separate scatter and relu
    // passes on its codes. Its report must carry over unchanged — the
    // fused relu counts saturation on the pre-epilogue code.
    let (c_naive, r_naive) = qmatmul_naive(&a, &b, out).unwrap();
    let map = permuted_map(m, n_mat);
    let scatter = |codes: &[i16]| -> Vec<i16> {
        let mut s = vec![0i16; m * n_mat];
        for i in 0..m {
            for q in 0..n_mat {
                s[map.offset(i, q)] = codes[i * n_mat + q];
            }
        }
        s
    };
    let relu = |codes: &[i16]| -> Vec<i16> { codes.iter().map(|&v| v.max(0)).collect() };

    // Row-major, plain and fused-relu, dispatched and portable.
    let mut got = vec![0i16; m * n_mat];
    let r = qmatmul_raw(
        a.codes(),
        b.codes(),
        m,
        k,
        n_mat,
        prod_shift,
        out_shift,
        &mut got,
    );
    assert_eq!(
        &got[..],
        c_naive.codes(),
        "raw vs naive codes ({m}x{k}x{n_mat})"
    );
    assert_eq!(r, r_naive, "raw vs naive report");

    let r = qmatmul_raw_relu(
        a.codes(),
        b.codes(),
        m,
        k,
        n_mat,
        prod_shift,
        out_shift,
        &mut got,
    );
    assert_eq!(
        got,
        relu(c_naive.codes()),
        "fused relu vs naive-then-relu codes"
    );
    assert_eq!(r, r_naive, "fused relu must not perturb the report");

    let r = qmatmul_raw_relu_portable(
        a.codes(),
        b.codes(),
        m,
        k,
        n_mat,
        prod_shift,
        out_shift,
        &mut got,
    );
    assert_eq!(got, relu(c_naive.codes()), "portable fused relu codes");
    assert_eq!(r, r_naive, "portable fused relu report");

    // Mapped (permuted), plain and fused-relu.
    let r = qmatmul_raw_mapped(
        a.codes(),
        b.codes(),
        m,
        k,
        n_mat,
        1,
        prod_shift,
        out_shift,
        &mut got,
        &map,
    );
    assert_eq!(
        got,
        scatter(c_naive.codes()),
        "mapped vs naive-then-scatter codes"
    );
    assert_eq!(r, r_naive, "mapped report");

    let r = qmatmul_raw_mapped_relu(
        a.codes(),
        b.codes(),
        m,
        k,
        n_mat,
        1,
        prod_shift,
        out_shift,
        &mut got,
        &map,
    );
    assert_eq!(
        got,
        relu(&scatter(c_naive.codes())),
        "mapped fused relu vs naive-then-scatter-then-relu codes"
    );
    assert_eq!(r, r_naive, "mapped fused relu report");
}

#[test]
fn quant_kernel_epilogue_dest_lattice_matches_oracle_at_pool_1_and_8() {
    for (threads, seed) in [(1usize, 0x61u64), (8, 0x62)] {
        let prev = parallel::set_num_threads(threads);
        for (si, &(m, k, n_mat)) in SHAPES.iter().enumerate() {
            quant_lattice(m, k, n_mat, seed + si as u64 * 37);
        }
        parallel::set_num_threads(prev);
    }
    // Sanity: the heavy-tailed generator really exercises saturation on
    // the larger shapes (otherwise the report comparison proves little).
    let a = QTensor::from_codes(
        vec![6, 64],
        heavy_codes(6 * 64, 9),
        QFormat::new(12).unwrap(),
    )
    .unwrap();
    let b = QTensor::from_codes(
        vec![64, 9],
        heavy_codes(64 * 9, 10),
        QFormat::new(8).unwrap(),
    )
    .unwrap();
    let (_, report) = qmatmul_naive(&a, &b, QFormat::new(14).unwrap()).unwrap();
    assert!(
        report.acc_saturations > 0 && report.out_saturations > 0,
        "generator must saturate both paths: {report:?}"
    );
}
