//! Differential suite: the quantized accelerator simulator against the
//! float compact engine, and the batched engine against independent
//! single-input calls, on every Table 4 layer shape.
//!
//! The simulator runs a 16-bit calibrated datapath, so it is compared in
//! the calibrated-format tolerance regime the sim crate establishes
//! (SQNR > 40 dB, relative error < 2e-2). The batched-vs-unbatched
//! comparison is exact: batching must never change numerics.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::quant::error_stats;
use tie::tensor::init;
use tie::workloads::table4_benchmarks;

/// Fixed suite seed; layer index is mixed in per benchmark.
const SEED: u64 = 0x7a11_e4_d1ff;

/// Table 4, quantized vs float: for each benchmark layer, the simulator's
/// dequantized output must track the float compact engine on the same
/// random input within the calibrated 16-bit tolerance.
#[test]
fn table4_sim_tracks_float_engine() {
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &b.shape, 0.5).unwrap();
        let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
        let layer = tie.load_layer(ttm).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![b.shape.num_cols()], 1.0);

        let (y_float, _) = layer.reference().matvec(&x).unwrap();
        let (y_sim, stats) = tie.run(&layer, &x, false).unwrap();

        let s = error_stats(&y_sim, &y_float).unwrap();
        assert!(
            s.sqnr_db > 40.0,
            "{}: SQNR {:.1} dB below the calibrated-format floor",
            b.name,
            s.sqnr_db
        );
        assert!(
            y_sim.relative_error(&y_float).unwrap() < 2e-2,
            "{}: relative error too large",
            b.name
        );
        assert_eq!(stats.saturations(), 0, "{}: calibrated run saturated", b.name);
    }
}

/// Table 4, batched vs unbatched: the batched compact engine must be
/// **bit-identical** to `B` independent single-input evaluations — the
/// guarantee the serving layer's dynamic batching rests on.
#[test]
fn table4_batched_engine_is_bit_identical_to_unbatched() {
    const B: usize = 4;
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 100 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = CompactEngine::new(ttm).unwrap();
        let n = bench.shape.num_cols();
        let m = bench.shape.num_rows();

        let inputs: Vec<Tensor<f64>> =
            (0..B).map(|_| init::uniform(&mut rng, vec![n], 1.0)).collect();

        // Batch-inner-most layout: element j of sample c at xs[j*B + c].
        let mut xs = vec![0.0f64; n * B];
        for (c, x) in inputs.iter().enumerate() {
            for (j, &v) in x.data().iter().enumerate() {
                xs[j * B + c] = v;
            }
        }
        let mut ys = vec![0.0f64; m * B];
        engine.matvec_batch_into(&xs, B, &mut ys).unwrap();

        for (c, x) in inputs.iter().enumerate() {
            let mut y_single = vec![0.0f64; m];
            engine.matvec_into(x.data(), &mut y_single).unwrap();
            for (r, &want) in y_single.iter().enumerate() {
                let got = ys[r * B + c];
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{}: sample {c} row {r}: batched {got:e} != single {want:e}",
                    bench.name
                );
            }
        }
    }
}

/// The simulator's batched path agrees with its own single-input path for
/// a Table 4 layer. Unlike the float engine, the quantized paths are not
/// bit-identical — activation formats are calibrated per run, and a batch
/// calibrates on the whole-batch dynamic range — so the comparison is in
/// the quantization tolerance regime.
#[test]
fn sim_batch_columns_match_single_runs() {
    let bench = &table4_benchmarks()[2]; // LSTM-UCF11: smallest rows
    let mut rng = ChaCha8Rng::seed_from_u64(SEED + 200);
    let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();

    let n = bench.shape.num_cols();
    let m = bench.shape.num_rows();
    const B: usize = 3;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, B], 1.0);
    let (ys, _) = tie.run_batch(&layer, &xs, false).unwrap();
    assert_eq!(ys.dims(), &[m, B]);

    for c in 0..B {
        let x = Tensor::from_fn(vec![n], |idx| xs.get(&[idx[0], c]).unwrap()).unwrap();
        let (y_single, _) = tie.run(&layer, &x, false).unwrap();
        let y_batch = Tensor::from_fn(vec![m], |idx| ys.get(&[idx[0], c]).unwrap()).unwrap();
        let err = y_batch.relative_error(&y_single).unwrap();
        assert!(
            err < 2e-2,
            "column {c}: batch vs single relative error {err:.2e} too large"
        );
    }
}
