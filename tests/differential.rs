//! Differential suite: the quantized accelerator simulator against the
//! float compact engine, and the batched engine against independent
//! single-input calls, on every Table 4 layer shape.
//!
//! The simulator runs a 16-bit calibrated datapath, so it is compared in
//! the calibrated-format tolerance regime the sim crate establishes
//! (SQNR > 40 dB, relative error < 2e-2). The batched-vs-unbatched
//! comparison is exact: batching must never change numerics.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::quant::error_stats;
use tie::tensor::init;
use tie::workloads::table4_benchmarks;

/// Fixed suite seed; layer index is mixed in per benchmark.
const SEED: u64 = 0x7a_11e4_d1ff;

/// Table 4, quantized vs float: for each benchmark layer, the simulator's
/// dequantized output must track the float compact engine on the same
/// random input within the calibrated 16-bit tolerance.
#[test]
fn table4_sim_tracks_float_engine() {
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &b.shape, 0.5).unwrap();
        let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
        let layer = tie.load_layer(ttm).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![b.shape.num_cols()], 1.0);

        let (y_float, _) = layer.reference().matvec(&x).unwrap();
        let (y_sim, stats) = tie.run(&layer, &x, false).unwrap();

        let s = error_stats(&y_sim, &y_float).unwrap();
        assert!(
            s.sqnr_db > 40.0,
            "{}: SQNR {:.1} dB below the calibrated-format floor",
            b.name,
            s.sqnr_db
        );
        assert!(
            y_sim.relative_error(&y_float).unwrap() < 2e-2,
            "{}: relative error too large",
            b.name
        );
        assert_eq!(
            stats.saturations(),
            0,
            "{}: calibrated run saturated",
            b.name
        );
    }
}

/// Table 4, batched vs unbatched: the batched compact engine must be
/// **bit-identical** to `B` independent single-input evaluations — the
/// guarantee the serving layer's dynamic batching rests on.
#[test]
fn table4_batched_engine_is_bit_identical_to_unbatched() {
    const B: usize = 4;
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 100 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = CompactEngine::new(ttm).unwrap();
        let n = bench.shape.num_cols();
        let m = bench.shape.num_rows();

        let inputs: Vec<Tensor<f64>> = (0..B)
            .map(|_| init::uniform(&mut rng, vec![n], 1.0))
            .collect();

        // Batch-inner-most layout: element j of sample c at xs[j*B + c].
        let mut xs = vec![0.0f64; n * B];
        for (c, x) in inputs.iter().enumerate() {
            for (j, &v) in x.data().iter().enumerate() {
                xs[j * B + c] = v;
            }
        }
        let mut ys = vec![0.0f64; m * B];
        engine.matvec_batch_into(&xs, B, &mut ys).unwrap();

        for (c, x) in inputs.iter().enumerate() {
            let mut y_single = vec![0.0f64; m];
            engine.matvec_into(x.data(), &mut y_single).unwrap();
            for (r, &want) in y_single.iter().enumerate() {
                let got = ys[r * B + c];
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{}: sample {c} row {r}: batched {got:e} != single {want:e}",
                    bench.name
                );
            }
        }
    }
}

/// The simulator's batched path is **bit-identical** to its own
/// single-input path. Under the default one-shot calibration the
/// activation formats are fixed at load time (they no longer depend on
/// the batch contents), so batching changes scheduling, never numerics —
/// the same guarantee the float engine gives, now on the quantized
/// datapath.
#[test]
fn sim_batch_columns_match_single_runs() {
    let bench = &table4_benchmarks()[2]; // LSTM-UCF11: smallest rows
    let mut rng = ChaCha8Rng::seed_from_u64(SEED + 200);
    let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    let layer = tie.load_layer(ttm).unwrap();

    let n = bench.shape.num_cols();
    let m = bench.shape.num_rows();
    const B: usize = 3;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, B], 1.0);
    let (ys, _) = tie.run_batch(&layer, &xs, false).unwrap();
    assert_eq!(ys.dims(), &[m, B]);

    for c in 0..B {
        let x = Tensor::from_fn(vec![n], |idx| xs.get(&[idx[0], c]).unwrap()).unwrap();
        let (y_single, _) = tie.run(&layer, &x, false).unwrap();
        for r in 0..m {
            let got = ys.get(&[r, c]).unwrap();
            let want = y_single.get(&[r]).unwrap();
            assert!(
                got.to_bits() == want.to_bits(),
                "column {c} row {r}: batched {got:e} != single {want:e}"
            );
        }
    }
}

/// Table 4, quantized serving engine: batched execution must be
/// bit-identical to independent single-sample calls on **every** Table 4
/// layer — the contract that lets the serving layer batch quantized
/// requests freely.
#[test]
fn table4_quantized_engine_batched_is_bit_identical() {
    use tie::sim::{QuantConfig, QuantizedEngine};
    const B: usize = 4;
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 300 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
        let n = bench.shape.num_cols();
        let m = bench.shape.num_rows();

        let flat: Tensor<f64> = init::uniform(&mut rng, vec![n * B], 1.0);
        let mut ys = vec![0.0f64; m * B];
        let report = engine.matvec_batch_into(flat.data(), B, &mut ys).unwrap();
        assert!(
            report.is_clean(),
            "{}: calibrated batch saturated",
            bench.name
        );

        for c in 0..B {
            let x: Vec<f64> = (0..n).map(|j| flat.data()[j * B + c]).collect();
            let mut y = vec![0.0f64; m];
            engine.matvec_batch_into(&x, 1, &mut y).unwrap();
            for (r, &want) in y.iter().enumerate() {
                let got = ys[r * B + c];
                assert!(
                    got.to_bits() == want.to_bits(),
                    "{}: sample {c} row {r}: batched {got:e} != single {want:e}",
                    bench.name
                );
            }
        }
    }
}

/// The simulator's fast path (one stage GEMM per batch) against the
/// MAC-by-MAC PE-array walk: outputs bit-identical, and every RunStats
/// activity count — cycles, MACs, SRAM traffic, saturations — exactly
/// equal. This is the oracle that lets the fast path claim
/// cycle-accuracy.
#[test]
fn sim_fast_path_matches_walk_exactly() {
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 400 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        // Batched FC6 intermediates outgrow the Table 5 working SRAM; this
        // is a numerics differential, not a capacity test, so provision
        // generously (identically for both executors).
        let cfg = TieConfig {
            working_sram_bytes: 2 * 1024 * 1024,
            ..TieConfig::default()
        };
        let mut tie = TieAccelerator::new(cfg).unwrap();
        let layer = tie.load_layer(ttm).unwrap();

        let n = bench.shape.num_cols();
        const B: usize = 3;
        for relu in [false, true] {
            let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, B], 1.0);
            let (y_fast, s_fast) = tie.run_batch(&layer, &xs, relu).unwrap();
            let (y_walk, s_walk) = tie.run_batch_walk(&layer, &xs, relu).unwrap();
            for (a, b) in y_fast.data().iter().zip(y_walk.data()) {
                assert!(
                    a.to_bits() == b.to_bits(),
                    "{} relu={relu}: fast {a:e} != walk {b:e}",
                    bench.name
                );
            }
            assert_eq!(
                s_fast, s_walk,
                "{} relu={relu}: RunStats diverge",
                bench.name
            );
        }
    }
}
