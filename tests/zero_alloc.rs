//! Steady-state allocation accounting for the compact-engine pipeline.
//!
//! The fused stage pipeline (Transform evaluated inside the GEMM write
//! epilogue — both the float `CompactEngine` and the fixed-point
//! `QuantizedEngine`) promises that after the first call has grown the
//! engine's ping-pong workspace, `matvec_into` / `matvec_batch_into`
//! perform **no heap allocation**. This binary installs a counting global
//! allocator to hold both engines to that promise.
//!
//! The counter is thread-local so the test-harness coordinator thread (and
//! anything else in the process) cannot pollute the measurement; the dense
//! kernels stay below the spawn threshold at these sizes, so all engine
//! work happens on the measuring thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::tensor::init;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the bookkeeping uses a
// const-initialized thread-local `Cell`, which never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

#[test]
fn steady_state_matvec_performs_no_heap_allocation() {
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let engine = CompactEngine::new(ttm).unwrap();
    let (n, m) = (shape.num_cols(), shape.num_rows());
    let x: Tensor<f64> = init::uniform(&mut rng, vec![n], 1.0);
    let mut y = vec![0.0f64; m];
    let b = 4usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, b], 1.0);
    let mut ys = vec![0.0f64; m * b];

    // Warm-up: the first calls grow the ping-pong workspace (the batched
    // call needs the larger, B-scaled capacity).
    engine.matvec_into(x.data(), &mut y).unwrap();
    engine.matvec_batch_into(xs.data(), b, &mut ys).unwrap();

    let before = allocs_on_this_thread();
    for _ in 0..16 {
        engine.matvec_into(x.data(), &mut y).unwrap();
        engine.matvec_batch_into(xs.data(), b, &mut ys).unwrap();
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state compact passes must not allocate"
    );

    // Sanity: the result is still correct after the counted passes.
    let dense = engine.matrix().to_dense().unwrap();
    let want = tie::tensor::linalg::matvec(&dense, &x).unwrap();
    let y_t = Tensor::from_vec(vec![m], y).unwrap();
    assert!(y_t.approx_eq(&want, 1e-9));
}

/// The quantized kernel's caller-owned-scratch entry point must not
/// allocate either: the accumulators are fixed-size stack tiles inside the
/// kernel frame, and below the pool's spawn threshold the whole product
/// runs inline on the calling thread.
#[test]
fn steady_state_qmatmul_into_performs_no_heap_allocation() {
    use tie::quant::{qmatmul_into, QTensor};
    let mut rng = ChaCha8Rng::seed_from_u64(4243);
    // 16 * 24 * 20 = 7680 < the 1<<14 spawn threshold: runs inline.
    let (m, k, n) = (16usize, 24usize, 20usize);
    let a_f: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 1.0);
    let b_f: Tensor<f64> = init::uniform(&mut rng, vec![k, n], 1.0);
    let a = QTensor::quantize(&a_f, QFormat::new(12).unwrap());
    let b = QTensor::quantize(&b_f, QFormat::new(8).unwrap());
    let out = QFormat::new(8).unwrap();
    let mut codes = vec![0i16; m * n];

    qmatmul_into(&a, &b, out, &mut codes).unwrap(); // warm-up (paranoia; needs none)
    let before = allocs_on_this_thread();
    let mut report = tie::quant::QMatmulReport::default();
    for _ in 0..16 {
        report = qmatmul_into(&a, &b, out, &mut codes).unwrap();
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state qmatmul_into must not allocate"
    );
    assert_eq!(report.outputs, (m * n) as u64);
}

/// The quantized serving engine keeps the same promise as the float one:
/// after the first call grows the i16 ping-pong workspace, batched
/// execution performs no heap allocation.
#[test]
fn steady_state_quantized_engine_performs_no_heap_allocation() {
    use tie::sim::{QuantConfig, QuantizedEngine};
    let mut rng = ChaCha8Rng::seed_from_u64(4244);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
    let (n, m) = (shape.num_cols(), shape.num_rows());
    let b = 4usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
    let mut ys = vec![0.0f64; m * b];

    engine.matvec_batch_into(xs.data(), b, &mut ys).unwrap(); // warm-up
    let before = allocs_on_this_thread();
    for _ in 0..16 {
        engine.matvec_batch_into(xs.data(), b, &mut ys).unwrap();
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state quantized batched passes must not allocate"
    );
}

/// The pipeline-parallel executor preallocates every channel slab,
/// ping-pong scratch, and park buffer at construction (sized by the
/// micro-batch, not the batch), so a warmed `StagePipeline` run is
/// allocation-free on the calling thread — which drives the *final*
/// pipeline segment through the same chunk choreography (channel recv,
/// stage GEMMs, slab recycling, output assembly) every worker segment
/// runs. Cut count > 1 so chunks genuinely stream across threads.
#[test]
fn steady_state_pipelined_engines_perform_no_heap_allocation() {
    use tie::core::pipeline::PipelineConfig;
    use tie::sim::{PipelinedEngine, QuantConfig, QuantizedEngine};
    let mut rng = ChaCha8Rng::seed_from_u64(4246);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let fengine = CompactEngine::new(ttm.clone()).unwrap();
    let qengine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
    let cfg = PipelineConfig {
        depth: 3,
        micro_batch: 2,
    };
    let fpipe = PipelinedEngine::float(&fengine, cfg).unwrap();
    let qpipe = PipelinedEngine::quantized(&qengine, cfg).unwrap();
    assert!(fpipe.depth() > 1 && qpipe.depth() > 1);

    let (n, m) = (shape.num_cols(), shape.num_rows());
    let b = 4usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
    let mut ys = vec![0.0f64; m * b];

    // Warm-up: the first call may touch lazily-initialized thread/channel
    // state; everything after must reuse the preallocated slabs.
    fpipe.matvec_batch_into(xs.data(), b, &mut ys).unwrap();
    qpipe.matvec_batch_into(xs.data(), b, &mut ys).unwrap();

    let before = allocs_on_this_thread();
    let mut chunks = 0u64;
    for _ in 0..16 {
        let fr = fpipe.matvec_batch_into(xs.data(), b, &mut ys).unwrap();
        let qr = qpipe.matvec_batch_into(xs.data(), b, &mut ys).unwrap();
        chunks += fr.run.chunks + qr.run.chunks;
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state pipelined passes must not allocate on the driving thread"
    );
    // Both pipelines really streamed b/micro = 2 chunks per run.
    assert_eq!(chunks, 16 * 2 * 2);
}

/// Batch-size changes must not re-allocate either: the fused ping-pong
/// buffers are sized `max_stage_input · b`, so once a workspace has seen
/// the largest batch, smaller (and repeated largest) batches shrink/grow
/// within retained capacity on both the float and the quantized engine.
#[test]
fn steady_state_fused_paths_hold_across_batch_sizes() {
    use tie::sim::{QuantConfig, QuantizedEngine};
    let mut rng = ChaCha8Rng::seed_from_u64(4245);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let fengine = CompactEngine::new(ttm.clone()).unwrap();
    let qengine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
    let (n, m) = (shape.num_cols(), shape.num_rows());
    // Largest batch that keeps every stage GEMM under the pool's spawn
    // threshold, so all work stays on the measuring thread.
    let bmax = 4usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * bmax], 1.0);
    let mut ys = vec![0.0f64; m * bmax];

    // Warm-up at the largest batch grows both workspaces to capacity.
    fengine.matvec_batch_into(xs.data(), bmax, &mut ys).unwrap();
    qengine.matvec_batch_into(xs.data(), bmax, &mut ys).unwrap();

    let before = allocs_on_this_thread();
    for &b in &[1usize, 2, 4] {
        for _ in 0..4 {
            fengine
                .matvec_batch_into(&xs.data()[..n * b], b, &mut ys[..m * b])
                .unwrap();
            qengine
                .matvec_batch_into(&xs.data()[..n * b], b, &mut ys[..m * b])
                .unwrap();
        }
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "fused engines must not allocate at any batch size once warmed"
    );
}

/// Epilogue fusion must not cost the zero-alloc promise either: a float
/// engine with bias + ReLU fused into the final-stage GEMM store and a
/// quantized engine with ReLU fused into its requantization epilogue stay
/// allocation-free across batch sizes once warmed. The epilogues index
/// pre-built tables (the bias vector lives in the engine), so the hot
/// path gains no per-call buffers.
#[test]
fn steady_state_epilogue_fused_engines_hold_across_batch_sizes() {
    use tie::core::Activation;
    use tie::sim::{QuantConfig, QuantizedEngine};
    let mut rng = ChaCha8Rng::seed_from_u64(4247);
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
    let (n, m) = (shape.num_cols(), shape.num_rows());
    let bias: Vec<f64> = (0..m).map(|o| (o as f64 - 3.0) * 0.1).collect();
    let fengine = CompactEngine::new(ttm.clone())
        .unwrap()
        .with_bias(bias)
        .unwrap()
        .with_activation(Activation::Relu);
    let qengine = QuantizedEngine::new(ttm, QuantConfig::default())
        .unwrap()
        .with_activation(Activation::Relu);
    let bmax = 4usize;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * bmax], 1.0);
    let mut ys = vec![0.0f64; m * bmax];

    fengine.matvec_batch_into(xs.data(), bmax, &mut ys).unwrap();
    qengine.matvec_batch_into(xs.data(), bmax, &mut ys).unwrap();

    let before = allocs_on_this_thread();
    for &b in &[1usize, 2, 4] {
        for _ in 0..4 {
            fengine
                .matvec_batch_into(&xs.data()[..n * b], b, &mut ys[..m * b])
                .unwrap();
            qengine
                .matvec_batch_into(&xs.data()[..n * b], b, &mut ys[..m * b])
                .unwrap();
        }
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "epilogue-fused engines must not allocate at any batch size once warmed"
    );
    // Sanity: the ReLU really fired — every served output is non-negative.
    assert!(ys[..m].iter().all(|&v| v >= 0.0));
}
