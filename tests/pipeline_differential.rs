//! Differential suite: pipeline-parallel execution against the sequential
//! engines, on every Table 4 layer shape.
//!
//! The pipeline's contract is *bit*-identity, not tolerance: splitting a
//! layer's stage chain across worker threads and streaming micro-batched
//! chunks through bounded channels changes scheduling, never numerics.
//! Every comparison here is `to_bits()`-exact — float outputs, quantized
//! outputs, **and** the quantized saturation reports — swept across cut
//! depths {1, 2, 4}, shared-pool sizes {1, 8}, and micro-batch widths.
//! The per-stage occupancy counters must also reconcile exactly:
//! `handoffs == chunks × (depth − 1)` per run, and globally
//! `pipeline_stage_chunks == pipeline_chunks + pipeline_handoffs`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::pipeline::PipelineConfig;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::sim::{PipelinedEngine, QuantConfig, QuantizedEngine};
use tie::tensor::init;
use tie::tensor::parallel::set_num_threads;
use tie::workloads::table4_benchmarks;

/// Fixed suite seed; layer index is mixed in per benchmark.
const SEED: u64 = 0x91e1_11e5;

/// Cut depths the acceptance sweep pins (clamped per layer to its `d`).
const DEPTHS: [usize; 3] = [1, 2, 4];

/// Shared GEMM-pool sizes the sweep runs under.
const POOLS: [usize; 2] = [1, 8];

/// Batch-inner-most random batch: element `j` of sample `c` at `j*b + c`.
fn random_batch(rng: &mut ChaCha8Rng, n: usize, b: usize) -> Vec<f64> {
    let flat: Tensor<f64> = init::uniform(rng, vec![n * b], 1.0);
    flat.data().to_vec()
}

fn assert_bits_equal(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            g.to_bits() == w.to_bits(),
            "{ctx}: element {i}: pipelined {g:e} != sequential {w:e}"
        );
    }
}

/// Table 4, float pipeline: at every cut depth and pool size, the
/// pipelined output is bit-identical to the sequential compact engine,
/// and the handoff books balance (`handoffs == chunks × (depth − 1)`).
#[test]
fn table4_float_pipeline_bit_identical_across_depths_and_pools() {
    const B: usize = 4;
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = CompactEngine::new(ttm).unwrap();
        let (m, n) = (bench.shape.num_rows(), bench.shape.num_cols());
        let xs = random_batch(&mut rng, n, B);

        let mut want = vec![0.0f64; m * B];
        engine.matvec_batch_into(&xs, B, &mut want).unwrap();

        for depth in DEPTHS {
            let pipe = PipelinedEngine::float(
                &engine,
                PipelineConfig {
                    depth,
                    micro_batch: 1,
                },
            )
            .unwrap();
            for pool in POOLS {
                let prev = set_num_threads(pool);
                let mut got = vec![0.0f64; m * B];
                let rep = pipe.matvec_batch_into(&xs, B, &mut got).unwrap();
                set_num_threads(prev);

                let ctx = format!("{} depth={depth} pool={pool}", bench.name);
                assert_bits_equal(&got, &want, &ctx);
                assert_eq!(rep.run.depth as usize, pipe.depth(), "{ctx}: depth");
                assert_eq!(rep.run.chunks, B as u64, "{ctx}: chunks at micro_batch=1");
                assert_eq!(
                    rep.run.handoffs,
                    rep.run.chunks * (rep.run.depth - 1),
                    "{ctx}: handoffs must be chunks x (depth - 1)"
                );
            }
        }
    }
}

/// Table 4, quantized pipeline: outputs **and** the `QMatmulReport`
/// (per-element accumulator/output saturation counts) are bit-identical
/// to the sequential quantized engine at every depth and pool size.
#[test]
fn table4_quant_pipeline_bit_identical_including_reports() {
    const B: usize = 4;
    for (i, bench) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED + 100 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
        let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
        let (m, n) = (bench.shape.num_rows(), bench.shape.num_cols());
        let xs = random_batch(&mut rng, n, B);

        let mut want = vec![0.0f64; m * B];
        let want_report = engine.matvec_batch_into(&xs, B, &mut want).unwrap();

        for depth in DEPTHS {
            let pipe = PipelinedEngine::quantized(
                &engine,
                PipelineConfig {
                    depth,
                    micro_batch: 1,
                },
            )
            .unwrap();
            assert!(pipe.is_quantized());
            for pool in POOLS {
                let prev = set_num_threads(pool);
                let mut got = vec![0.0f64; m * B];
                let rep = pipe.matvec_batch_into(&xs, B, &mut got).unwrap();
                set_num_threads(prev);

                let ctx = format!("{} depth={depth} pool={pool}", bench.name);
                assert_bits_equal(&got, &want, &ctx);
                assert_eq!(rep.quant, want_report, "{ctx}: QMatmulReport diverged");
                assert_eq!(
                    rep.run.handoffs,
                    rep.run.chunks * (rep.run.depth - 1),
                    "{ctx}: handoffs must be chunks x (depth - 1)"
                );
            }
        }
    }
}

/// Micro-batch width is a pure scheduling knob: any chunk width produces
/// the same bits, and the chunk counter is exactly `ceil(b / micro)`.
#[test]
fn micro_batch_width_never_changes_bits() {
    let bench = &table4_benchmarks()[2]; // LSTM-UCF11: smallest layer
    let mut rng = ChaCha8Rng::seed_from_u64(SEED + 200);
    let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
    let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
    let (m, n) = (bench.shape.num_rows(), bench.shape.num_cols());
    const B: usize = 6;
    let xs = random_batch(&mut rng, n, B);

    let mut want = vec![0.0f64; m * B];
    let want_report = engine.matvec_batch_into(&xs, B, &mut want).unwrap();

    for depth in [2, 4] {
        for micro in [1, 2, 4, 16] {
            let pipe = PipelinedEngine::quantized(
                &engine,
                PipelineConfig {
                    depth,
                    micro_batch: micro,
                },
            )
            .unwrap();
            let mut got = vec![0.0f64; m * B];
            let rep = pipe.matvec_batch_into(&xs, B, &mut got).unwrap();
            let ctx = format!("depth={depth} micro={micro}");
            assert_bits_equal(&got, &want, &ctx);
            assert_eq!(rep.quant, want_report, "{ctx}: QMatmulReport diverged");
            assert_eq!(
                rep.run.chunks,
                B.div_ceil(micro) as u64,
                "{ctx}: chunk count"
            );
        }
    }
}

/// Serve-level round trip: a pipelined quantized layer registered in the
/// service returns bit-identical responses, and the `pipeline_*` counters
/// in [`ServiceStats`] reconcile exactly
/// (`pipeline_stage_chunks == pipeline_chunks + pipeline_handoffs`).
#[test]
fn serve_pipelined_layer_matches_sequential_and_reconciles() {
    let bench = &table4_benchmarks()[2]; // LSTM-UCF11: smallest layer
    let mut rng = ChaCha8Rng::seed_from_u64(SEED + 300);
    let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.5).unwrap();
    let engine = QuantizedEngine::new(ttm, QuantConfig::default()).unwrap();
    let (m, n) = (bench.shape.num_rows(), bench.shape.num_cols());

    let pipe = PipelinedEngine::quantized(
        &engine,
        PipelineConfig {
            depth: 3,
            micro_batch: 1,
        },
    )
    .unwrap();
    let mut registry = EngineRegistry::new();
    registry.insert_pipelined("fc", pipe);

    let service = InferenceService::start(registry, ServeConfig::default()).unwrap();
    let client = service.client();

    const REQUESTS: usize = 12;
    let inputs: Vec<Vec<f64>> = (0..REQUESTS)
        .map(|_| {
            let x: Tensor<f64> = init::uniform(&mut rng, vec![n], 1.0);
            x.data().to_vec()
        })
        .collect();
    let tickets: Vec<_> = inputs
        .iter()
        .map(|x| client.submit("fc", x.clone()).unwrap())
        .collect();

    for (x, ticket) in inputs.iter().zip(tickets) {
        let response = ticket.wait().unwrap();
        let mut want = vec![0.0f64; m];
        engine.matvec_batch_into(x, 1, &mut want).unwrap();
        assert_bits_equal(&response.output, &want, "serve response");
    }

    let stats = service.shutdown();
    assert_eq!(stats.submitted, stats.completed + stats.failed);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.pipeline_batches >= 1,
        "pipelined batches must be recorded"
    );
    assert!(
        stats.pipeline_chunks >= REQUESTS as u64,
        "every sample streams as >= 1 chunk"
    );
    assert_eq!(
        stats.pipeline_stage_chunks,
        stats.pipeline_chunks + stats.pipeline_handoffs,
        "stage-chunk books must balance"
    );
    // Depth 3 on every chunk: two handoffs per chunk, stalls bounded by
    // the work actually queued.
    assert_eq!(stats.pipeline_handoffs, 2 * stats.pipeline_chunks);
    assert!(stats.pipeline_send_stalls <= stats.pipeline_handoffs);
    assert!(stats.pipeline_stall_fraction() >= 0.0);
}
