//! Stress suite for the serving layer: many client threads hammering one
//! service with randomized batching knobs.
//!
//! Correctness bar (ISSUE acceptance): no response is lost, duplicated or
//! cross-wired — every response must be **bit-identical** to a direct
//! single-call `CompactEngine` evaluation of that request's input. Inputs
//! are derived from a per-request nonce, so two requests never share an
//! input vector and a cross-wired response cannot pass the comparison.
//!
//! The run is reproducible: set `TIE_STRESS_SEED` to replay a failure
//! (the seed in use is printed on stderr).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Duration;
use tie::core::CompactEngine;
use tie::serve::{EngineRegistry, InferenceService, ServeConfig, ServeError};
use tie::tt::{TtMatrix, TtShape};

const CLIENTS: usize = 8;
const REQUESTS_PER_CLIENT: usize = 64;

fn suite_seed() -> u64 {
    let seed = std::env::var("TIE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00_5EED);
    eprintln!("serve_stress: TIE_STRESS_SEED={seed}");
    seed
}

/// Three layers with distinct dimensions, so a cross-layer mix-up would
/// also show up as a wrong-length output.
fn layers(seed: u64) -> Vec<(&'static str, Arc<CompactEngine<f64>>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shapes = [
        (
            "fc_a",
            TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap(),
        ),
        (
            "fc_b",
            TtShape::uniform_rank(vec![2, 2, 2], vec![2, 3, 2], 2).unwrap(),
        ),
        ("fc_c", TtShape::uniform_rank(vec![4], vec![9], 1).unwrap()),
    ];
    shapes
        .into_iter()
        .map(|(name, shape)| {
            let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.6).unwrap();
            (name, Arc::new(CompactEngine::new(ttm).unwrap()))
        })
        .collect()
}

/// The per-request input: derived from the nonce alone, so every request
/// carries a unique, reproducible payload.
fn input_for(nonce: u64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn direct_eval(engine: &CompactEngine<f64>, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; engine.matrix().shape().num_rows()];
    engine.matvec_into(x, &mut y).unwrap();
    y
}

/// Main stress test: 8 client threads × 64 requests each, across three
/// randomized service configurations. Every response is checked bit-exact
/// against a direct engine call; the final counters must balance.
#[test]
fn stress_no_lost_duplicated_or_cross_wired_responses() {
    let seed = suite_seed();
    let layers = layers(seed);
    let mut cfg_rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(1));

    for round in 0..3u64 {
        let config = ServeConfig {
            max_batch: [1usize, 2, 4, 8, 16, 33][cfg_rng.gen_range(0..6usize)],
            max_wait: Duration::from_micros(cfg_rng.gen_range(0..3000u64)),
            queue_capacity: cfg_rng.gen_range(16..512usize),
            workers: cfg_rng.gen_range(0..5usize),
        };
        eprintln!(
            "serve_stress round {round}: max_batch={} max_wait={:?} queue={} workers={}",
            config.max_batch, config.max_wait, config.queue_capacity, config.workers
        );

        let mut registry = EngineRegistry::new();
        for (name, engine) in &layers {
            registry.insert_shared(*name, Arc::clone(engine));
        }
        let service = InferenceService::start(registry, config).unwrap();

        let handles: Vec<_> = (0..CLIENTS)
            .map(|t| {
                let client = service.client();
                let layers = layers.clone();
                std::thread::spawn(move || {
                    let mut completed = 0u64;
                    for i in 0..REQUESTS_PER_CLIENT {
                        let nonce = (t * REQUESTS_PER_CLIENT + i) as u64;
                        let (name, engine) = &layers[nonce as usize % layers.len()];
                        let n = engine.matrix().shape().num_cols();
                        let x = input_for(nonce, n, seed);
                        // Alternate blocking and non-blocking submission;
                        // fall back to the blocking path on backpressure.
                        let ticket = if i % 2 == 0 {
                            client.submit(name, x.clone()).unwrap()
                        } else {
                            match client.try_submit(name, x.clone()) {
                                Ok(t) => t,
                                Err(ServeError::QueueFull) => {
                                    client.submit(name, x.clone()).unwrap()
                                }
                                Err(e) => panic!("unexpected submit error: {e}"),
                            }
                        };
                        let resp = ticket
                            .wait()
                            .unwrap_or_else(|e| panic!("nonce {nonce}: response lost to {e}"));
                        let want = direct_eval(engine, &x);
                        assert_eq!(
                            resp.output.len(),
                            want.len(),
                            "nonce {nonce}: output length (cross-layer wiring?)"
                        );
                        for (r, (&got, &exp)) in resp.output.iter().zip(&want).enumerate() {
                            assert!(
                                got.to_bits() == exp.to_bits(),
                                "nonce {nonce} row {r}: {got:e} != direct {exp:e} \
                                 (lost/cross-wired response)"
                            );
                        }
                        completed += 1;
                    }
                    completed
                })
            })
            .collect();

        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (CLIENTS * REQUESTS_PER_CLIENT) as u64);

        let stats = service.shutdown();
        assert_eq!(
            stats.submitted,
            stats.completed + stats.failed,
            "counter balance"
        );
        assert_eq!(stats.failed, 0, "no request may fail in a clean run");
        assert!(
            stats.submitted >= total,
            "every checked response was submitted through the service"
        );
        assert_eq!(
            stats.batched_requests, stats.submitted,
            "every accepted request rode in exactly one batch"
        );
        assert!(stats.batches > 0);
        assert!(stats.max_latency() >= stats.mean_latency());
    }
}

/// Shutdown under load: clients keep submitting while the service shuts
/// down. Every accepted request must resolve — with a correct response or
/// `ShuttingDown` — and the whole thing must not deadlock (enforced by
/// the harness-level test timeout and the final joins).
#[test]
fn stress_shutdown_under_load_drains_cleanly() {
    let seed = suite_seed().wrapping_add(0xD1E);
    let layers = layers(seed);
    let mut registry = EngineRegistry::new();
    for (name, engine) in &layers {
        registry.insert_shared(*name, Arc::clone(engine));
    }
    let config = ServeConfig {
        max_batch: 8,
        max_wait: Duration::from_micros(500),
        queue_capacity: 64,
        workers: 2,
    };
    let service = InferenceService::start(registry, config).unwrap();

    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = service.client();
            let layers = layers.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut shut_down = 0u64;
                for i in 0..u64::MAX {
                    let nonce = (t as u64) << 32 | i;
                    let (name, engine) = &layers[(nonce % layers.len() as u64) as usize];
                    let n = engine.matrix().shape().num_cols();
                    let x = input_for(nonce, n, seed);
                    match client.submit(name, x.clone()) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(resp) => {
                                let want = direct_eval(engine, &x);
                                assert_eq!(resp.output, want, "nonce {nonce}");
                                ok += 1;
                            }
                            Err(ServeError::ShuttingDown) => {
                                // Accepted but torn down mid-flight: the
                                // accounted-for failure path.
                                shut_down += 1;
                                break;
                            }
                            Err(e) => panic!("nonce {nonce}: unexpected error {e}"),
                        },
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("nonce {nonce}: unexpected submit error {e}"),
                    }
                }
                (ok, shut_down)
            })
        })
        .collect();

    // Let the clients build up real in-flight load, then pull the plug.
    // The final counter snapshot is taken only after the client threads
    // join: a client that squeezed a request in during the drain may not
    // have bumped `submitted` yet when `shutdown` returns.
    let observer = service.client();
    std::thread::sleep(Duration::from_millis(30));
    service.shutdown();

    let mut total_ok = 0u64;
    for h in handles {
        let (ok, _shut_down) = h.join().unwrap();
        total_ok += ok;
    }
    let stats = observer.stats();
    assert!(
        total_ok > 0,
        "some requests must have completed before shutdown"
    );
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed,
        "every accepted request resolved exactly once"
    );
    // The batcher drains whatever was queued: batched_requests covers all
    // requests that reached a batch; the remainder failed at teardown.
    assert!(stats.completed >= total_ok);
}
