//! Tier-2 regression gate: warm-pool dispatch must beat scoped spawning.
//!
//! The whole point of `tie_tensor::pool` is that a parallel kernel no
//! longer pays a `std::thread::scope` spawn/join per call. This gate runs
//! the same blocked GEMM through both dispatch paths — `gemm_into` (pool)
//! vs `gemm_into_scoped` (per-call spawn, kept precisely for this
//! comparison) — at a size where dispatch overhead matters, and requires
//! the pooled median to be no slower. Outputs are checked bit-identical
//! first, so the gate can never pass on wrong results.
//!
//! `#[ignore]`d in normal runs: wall-clock gates belong in `--release`
//! (scripts/ci.sh runs it with `-- --ignored`).

use std::time::Instant;
use tie::tensor::{linalg, parallel, pool};

const REPS: usize = 50;

fn median_secs(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[test]
#[ignore = "wall-clock gate; run via scripts/ci.sh in --release"]
fn pooled_gemm_dispatch_beats_scoped_spawn() {
    // 160³: ~4.1 M multiply-adds — solidly above PARALLEL_MIN_WORK so both
    // paths go parallel, small enough that per-call spawn/join is a
    // visible fraction of the runtime (the regime the pool exists for).
    let (m, k, n) = (160, 160, 160);
    let a: Vec<f64> = (0..m * k)
        .map(|i| ((i % 97) as f64) * 0.013 - 0.5)
        .collect();
    let b: Vec<f64> = (0..k * n)
        .map(|i| ((i % 89) as f64) * 0.017 - 0.7)
        .collect();
    let mut c_pool = vec![0.0; m * n];
    let mut c_scoped = vec![0.0; m * n];

    let prev = parallel::set_num_threads(4);
    pool::prewarm(4);

    // Correctness first: identical bits from both dispatch paths.
    linalg::gemm_into(&a, &b, &mut c_pool, m, k, n).unwrap();
    linalg::gemm_into_scoped(&a, &b, &mut c_scoped, m, k, n).unwrap();
    for (i, (p, s)) in c_pool.iter().zip(&c_scoped).enumerate() {
        assert!(
            p.to_bits() == s.to_bits(),
            "element {i}: pooled {p:e} != scoped {s:e}"
        );
    }

    // Interleave the two measurements so drift (thermal, scheduler) hits
    // both paths equally.
    let mut pooled = Vec::with_capacity(REPS);
    let mut scoped = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        linalg::gemm_into(&a, &b, &mut c_pool, m, k, n).unwrap();
        pooled.push(t.elapsed().as_secs_f64());
        let t = Instant::now();
        linalg::gemm_into_scoped(&a, &b, &mut c_scoped, m, k, n).unwrap();
        scoped.push(t.elapsed().as_secs_f64());
    }
    let (p_med, s_med) = (median_secs(pooled), median_secs(scoped));
    eprintln!(
        "pool_perf: {m}x{k}x{n} GEMM at 4 threads — pooled median {:.3} ms, \
         scoped median {:.3} ms ({:.2}x)",
        p_med * 1e3,
        s_med * 1e3,
        s_med / p_med
    );
    // 10% slack: the gate is about catching a dispatch-latency regression
    // (pool an order of magnitude slower would trip this immediately), not
    // about flaking on CI noise.
    assert!(
        p_med <= s_med * 1.10,
        "warm-pool GEMM dispatch regressed: pooled median {:.3} ms vs scoped {:.3} ms",
        p_med * 1e3,
        s_med * 1e3
    );

    parallel::set_num_threads(prev);
}
