//! Quantized-kernel equivalence and calibration-counter suite.
//!
//! The vectorized [`tie::quant::qmatmul`] rides a runtime
//! AVX-512/AVX2/portable dispatch and the workspace thread pool; its
//! contract is that codes **and** saturation reports are bit-identical to
//! the naive per-output reference at every dispatch tier and every pool
//! size. Random inputs rarely exercise the saturation paths, so the
//! property tests here engineer inputs that saturate both the 24-bit
//! mid-accumulation clamp and the final 16-bit requantization, then prove
//! the three kernels (dispatched, forced-portable, naive) agree across
//! pool sizes {1, 2, 8}.
//!
//! The suite also holds the one-shot calibration to its "zero float work
//! on the hot path" promise via the accelerator's calibration-trace
//! counter.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::prelude::*;
use tie::quant::{
    alignment, qmatmul, qmatmul_naive, qmatmul_raw, qmatmul_raw_portable, qmatmul_raw_relu,
    qmatmul_raw_relu_portable,
};
use tie::sim::{CalibrationMode, QuantConfig};
use tie::tensor::{init, parallel};

/// Builds a `QTensor` from explicit codes.
fn qt(rows: usize, cols: usize, codes: Vec<i16>, frac_bits: u32) -> QTensor {
    QTensor::from_codes(vec![rows, cols], codes, QFormat::new(frac_bits).unwrap()).unwrap()
}

/// Runs all three kernels on the same raw operands and asserts exact
/// agreement of codes and reports, at the given pool size.
fn assert_three_way_agreement(a: &QTensor, b: &QTensor, out: QFormat, threads: usize) {
    let prev = parallel::set_num_threads(threads);
    let (c_fast, r_fast) = qmatmul(a, b, out).unwrap();
    let (c_naive, r_naive) = qmatmul_naive(a, b, out).unwrap();

    let (m, k) = (a.shape().dims()[0], a.shape().dims()[1]);
    let n = b.shape().dims()[1];
    let (prod_shift, out_shift) = alignment(a.format(), b.format(), out);
    let mut c_port = vec![0i16; m * n];
    let r_port = qmatmul_raw_portable(
        a.codes(),
        b.codes(),
        m,
        k,
        n,
        prod_shift,
        out_shift,
        &mut c_port,
    );

    // Fused-ReLU variants: the epilogue clamps the clipped 32-bit code at
    // zero *after* both saturation counters are taken, so codes must be
    // exactly requant-then-relu and reports must be exactly the plain
    // kernel's — under the same engineered saturation.
    let mut c_relu = vec![0i16; m * n];
    let r_relu = qmatmul_raw_relu(
        a.codes(),
        b.codes(),
        m,
        k,
        n,
        prod_shift,
        out_shift,
        &mut c_relu,
    );
    let mut c_relu_port = vec![0i16; m * n];
    let r_relu_port = qmatmul_raw_relu_portable(
        a.codes(),
        b.codes(),
        m,
        k,
        n,
        prod_shift,
        out_shift,
        &mut c_relu_port,
    );
    parallel::set_num_threads(prev);

    assert_eq!(
        c_fast.codes(),
        c_naive.codes(),
        "dispatched vs naive codes, {threads} threads"
    );
    assert_eq!(
        c_fast.codes(),
        &c_port[..],
        "dispatched vs portable codes, {threads} threads"
    );
    assert_eq!(
        r_fast, r_naive,
        "dispatched vs naive report, {threads} threads"
    );
    assert_eq!(
        r_fast, r_port,
        "dispatched vs portable report, {threads} threads"
    );

    let want_relu: Vec<i16> = c_naive.codes().iter().map(|&v| v.max(0)).collect();
    assert_eq!(
        &c_relu[..],
        &want_relu[..],
        "fused relu vs requant-then-relu, {threads} threads"
    );
    assert_eq!(
        &c_relu_port[..],
        &want_relu[..],
        "portable fused relu codes, {threads} threads"
    );
    assert_eq!(
        r_relu, r_naive,
        "fused relu report must equal the plain report, {threads} threads"
    );
    assert_eq!(
        r_relu_port, r_naive,
        "portable fused relu report, {threads} threads"
    );
}

/// Deterministic saturation smoke test: an all-max-code product long
/// enough to blow the 24-bit accumulator on every output, plus an
/// out-shift that clips the requantization. Every kernel must report the
/// same (full) saturation counts.
#[test]
fn engineered_saturation_agrees_across_kernels_and_pool_sizes() {
    // k = 1024 MACs of 32767·32767 ≈ 2^30 each: saturates 24-bit lanes
    // mid-accumulation, repeatedly, on every output.
    let (m, k, n) = (24, 1024, 40);
    let a = qt(m, k, vec![i16::MAX; m * k], 12);
    let b = qt(k, n, vec![i16::MAX; k * n], 8);
    let out = QFormat::new(14).unwrap(); // coarse shift: requant clips too

    for threads in [1usize, 2, 8] {
        assert_three_way_agreement(&a, &b, out, threads);
    }
    let (_, report) = qmatmul_naive(&a, &b, out).unwrap();
    assert_eq!(report.outputs, (m * n) as u64);
    assert_eq!(
        report.acc_saturations,
        (m * n) as u64,
        "every accumulator must saturate"
    );
    assert!(report.out_saturations > 0, "requantization must clip");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Saturation-engineered property: random shapes (including ragged
    /// tile tails), random codes with a heavy-tail bias toward extreme
    /// values, random formats — dispatched, portable, and naive kernels
    /// agree bit-for-bit on codes and saturation reports at pool sizes
    /// {1, 2, 8}.
    #[test]
    fn kernels_agree_bitwise_under_saturation(
        m in 1usize..40,
        k in 1usize..96,
        n in 1usize..70,
        seed in 0u64..10_000,
        a_frac in 0u32..16,
        b_frac in 0u32..16,
        out_frac in 0u32..16,
    ) {
        // Heavy-tailed codes: ~1/4 of entries pinned at ±i16::MAX so long
        // dot products regularly saturate the 24-bit accumulator.
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut gen_codes = |len: usize| -> Vec<i16> {
            (0..len)
                .map(|_| {
                    let r = next();
                    match r % 4 {
                        0 => if r & 8 == 0 { i16::MAX } else { i16::MIN },
                        _ => (r >> 16) as i16,
                    }
                })
                .collect()
        };
        let a = qt(m, k, gen_codes(m * k), a_frac);
        let b = qt(k, n, gen_codes(k * n), b_frac);
        // The datapath clamps the output format to what the products can
        // express (see the stage alignment in tie-sim); mirror that here —
        // finer-than-product output formats never reach the kernel.
        let out = QFormat::new(out_frac.min(a_frac + b_frac).min(15)).unwrap();
        for threads in [1usize, 2, 8] {
            assert_three_way_agreement(&a, &b, out, threads);
        }
    }

    /// The merged report over row-partitioned slabs equals the whole-matrix
    /// report: saturation counting is per-output and order-independent, so
    /// any pool slab decomposition yields the same totals.
    #[test]
    fn report_is_slab_decomposition_invariant(
        m in 2usize..24,
        k in 1usize..64,
        n in 1usize..48,
        seed in 0u64..10_000,
        split in 1usize..23,
    ) {
        let split = split.min(m - 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a_f: Tensor<f64> = init::uniform(&mut rng, vec![m, k], 4.0);
        let b_f: Tensor<f64> = init::uniform(&mut rng, vec![k, n], 4.0);
        let a = QTensor::quantize(&a_f, QFormat::new(13).unwrap());
        let b = QTensor::quantize(&b_f, QFormat::new(13).unwrap());
        let out = QFormat::new(13).unwrap(); // deliberately tight: clips often
        let (prod_shift, out_shift) = alignment(a.format(), b.format(), out);

        let mut whole = vec![0i16; m * n];
        let r_whole = qmatmul_raw(a.codes(), b.codes(), m, k, n, prod_shift, out_shift, &mut whole);

        let mut top = vec![0i16; split * n];
        let mut bot = vec![0i16; (m - split) * n];
        let r_top = qmatmul_raw(&a.codes()[..split * k], b.codes(), split, k, n, prod_shift, out_shift, &mut top);
        let r_bot = qmatmul_raw(&a.codes()[split * k..], b.codes(), m - split, k, n, prod_shift, out_shift, &mut bot);

        prop_assert_eq!(r_top.merged(&r_bot), r_whole);
        prop_assert_eq!(&whole[..split * n], &top[..]);
        prop_assert_eq!(&whole[split * n..], &bot[..]);
    }
}

/// Wall-clock gate on the quantized fast path (run by `scripts/ci.sh`
/// under `--release`, `--ignored` otherwise): a VGG-FC7 batch-16
/// simulated run must finish within `TIE_QUANT_BUDGET_S` seconds
/// (default 5) once the layer is loaded. The seed MAC-walk path took
/// ~110 ms/sample here; the fast path's ~1.5 ms/sample leaves the budget
/// slack even on loaded CI hosts.
#[test]
#[ignore = "wall-clock gate; run via scripts/ci.sh in release"]
fn fc7_quantized_batch_runs_within_budget() {
    use std::time::Instant;
    use tie::workloads::table4_benchmarks;
    let budget_s: f64 = std::env::var("TIE_QUANT_BUDGET_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);

    let bench = table4_benchmarks()
        .into_iter()
        .find(|b| b.name == "VGG-FC7")
        .unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(0xfc7);
    let ttm = TtMatrix::<f64>::random(&mut rng, &bench.shape, 0.3).unwrap();
    // Batch-16 intermediates outgrow the Table 5 working SRAM (see
    // BENCH_quant.json note); provision for the batch.
    let cfg = TieConfig {
        working_sram_bytes: 8 * 1024 * 1024,
        ..TieConfig::default()
    };
    let mut tie = TieAccelerator::new(cfg).unwrap();
    let layer = tie.load_layer(ttm).unwrap();

    const B: usize = 16;
    let xs: Tensor<f64> = init::uniform(&mut rng, vec![bench.shape.num_cols(), B], 1.0);
    tie.run_batch(&layer, &xs, false).unwrap(); // warm-up: scratch growth

    let t = Instant::now();
    let (ys, stats) = tie.run_batch(&layer, &xs, false).unwrap();
    let elapsed = t.elapsed().as_secs_f64();
    assert!(ys.data().iter().all(|v| v.is_finite()));
    assert_eq!(
        stats.saturations(),
        0,
        "calibrated FC7 run must not saturate"
    );
    assert!(
        elapsed < budget_s,
        "FC7 batch-{B} took {elapsed:.2}s, budget {budget_s}s — fast path regressed"
    );
}

/// One-shot calibration does all its float tracing at load time and none
/// afterwards: the trace counter moves by exactly `probe_count` during
/// `load_layer` and stays frozen over any number of `run_batch` calls.
/// Under the legacy per-batch mode the same counter keeps climbing.
#[test]
fn one_shot_calibration_traces_only_at_load() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 3).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
    let n = shape.num_cols();

    let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
    assert_eq!(tie.calibration_traces(), 0);
    let layer = tie.load_layer(ttm.clone()).unwrap();
    let probes = TieConfig::default().quant.probe_count as u64;
    assert_eq!(
        tie.calibration_traces(),
        probes,
        "load must trace exactly the probe set"
    );

    let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, 4], 1.0);
    for _ in 0..5 {
        tie.run_batch(&layer, &xs, false).unwrap();
    }
    assert_eq!(
        tie.calibration_traces(),
        probes,
        "steady-state run_batch must perform zero float reference traces"
    );

    // Control: PerBatch keeps tracing on the hot path.
    let cfg = TieConfig {
        quant: QuantConfig {
            calibration: CalibrationMode::PerBatch,
            ..QuantConfig::default()
        },
        ..TieConfig::default()
    };
    let mut legacy = TieAccelerator::new(cfg).unwrap();
    let layer = legacy.load_layer(ttm).unwrap();
    assert_eq!(
        legacy.calibration_traces(),
        0,
        "per-batch mode traces nothing at load"
    );
    for i in 1..=3u64 {
        legacy.run_batch(&layer, &xs, false).unwrap();
        assert_eq!(
            legacy.calibration_traces(),
            4 * i,
            "per-batch mode must trace every sample of every batch"
        );
    }
}
