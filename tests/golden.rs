//! Golden-fixture suite: frozen TT cores + inputs + expected outputs,
//! compared **exactly** (bit-for-bit).
//!
//! The fixtures under `tests/fixtures/` pin the compact engine's numerics:
//! any change to the stage order, transform indexing, or GEMM kernel that
//! alters even one output ULP fails this suite. Floats survive the JSON
//! round trip losslessly because the vendored serializer emits shortest
//! round-trip decimal strings.
//!
//! Regenerate after an *intentional* numerics change with:
//! `cargo test --test golden -- --ignored regenerate`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::Value;
use tie::core::CompactEngine;
use tie::prelude::*;
use tie::tensor::init;

/// A frozen shape: (fixture name, seed, row modes, col modes, rank).
type GoldenCase = (&'static str, u64, Vec<usize>, Vec<usize>, usize);

/// The frozen shapes: one degenerate single-mode layer (d = 1, rank 1: a
/// plain dense matrix in TT clothing), one small d = 2 layer, one d = 3
/// layer with rank > 1.
fn cases() -> Vec<GoldenCase> {
    vec![
        ("single_mode_5x7", 11, vec![5], vec![7], 1),
        ("d2_6x6_rank2", 12, vec![2, 3], vec![3, 2], 2),
        ("d3_24x24_rank3", 13, vec![2, 3, 4], vec![4, 3, 2], 3),
    ]
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_{name}.json"))
}

fn build_case(seed: u64, m: &[usize], n: &[usize], r: usize) -> (TtMatrix<f64>, Vec<f64>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shape = TtShape::uniform_rank(m.to_vec(), n.to_vec(), r).unwrap();
    let ttm = TtMatrix::<f64>::random(&mut rng, &shape, 0.7).unwrap();
    let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
    (ttm, x.data().to_vec())
}

fn floats_to_value(data: &[f64]) -> Value {
    Value::Array(data.iter().map(|&f| Value::Float(f)).collect())
}

fn value_to_floats(v: &Value) -> Vec<f64> {
    v.as_array()
        .expect("expected a JSON array")
        .iter()
        .map(|x| x.as_f64().expect("expected a number"))
        .collect()
}

fn usizes_to_value(dims: &[usize]) -> Value {
    Value::Array(dims.iter().map(|&d| Value::UInt(d as u64)).collect())
}

fn value_to_usizes(v: &Value) -> Vec<usize> {
    v.as_array()
        .expect("expected a JSON array")
        .iter()
        .map(|x| x.as_u64().expect("expected an unsigned integer") as usize)
        .collect()
}

/// Regenerates every fixture from the frozen seeds. Ignored in normal
/// runs; the committed fixtures are the source of truth.
#[test]
#[ignore = "writes tests/fixtures/; run only after an intentional numerics change"]
fn regenerate_fixtures() {
    std::fs::create_dir_all(fixture_path("x").parent().unwrap()).unwrap();
    for (name, seed, m, n, r) in cases() {
        let (ttm, x) = build_case(seed, &m, &n, r);
        let engine = CompactEngine::new(ttm.clone()).unwrap();
        let mut y = vec![0.0f64; ttm.shape().num_rows()];
        engine.matvec_into(&x, &mut y).unwrap();

        let cores: Vec<Value> = ttm
            .cores()
            .iter()
            .map(|c| {
                Value::Object(vec![
                    ("dims".into(), usizes_to_value(c.dims())),
                    ("data".into(), floats_to_value(c.data())),
                ])
            })
            .collect();
        let fixture = Value::Object(vec![
            ("name".into(), Value::String(name.into())),
            ("seed".into(), Value::UInt(seed)),
            ("row_modes".into(), usizes_to_value(&m)),
            ("col_modes".into(), usizes_to_value(&n)),
            ("rank".into(), Value::UInt(r as u64)),
            ("cores".into(), Value::Array(cores)),
            ("input".into(), floats_to_value(&x)),
            ("output".into(), floats_to_value(&y)),
        ]);
        let text = serde_json::to_string_pretty(&fixture).unwrap();
        std::fs::write(fixture_path(name), text + "\n").unwrap();
    }
}

fn check_fixture(name: &str) {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let fixture = serde_json::from_str(&text).unwrap();

    let cores: Vec<Tensor<f64>> = fixture
        .get("cores")
        .expect("cores")
        .as_array()
        .expect("cores array")
        .iter()
        .map(|c| {
            let dims = value_to_usizes(c.get("dims").expect("dims"));
            let data = value_to_floats(c.get("data").expect("data"));
            Tensor::from_vec(dims, data).unwrap()
        })
        .collect();
    let ttm = TtMatrix::new(cores).unwrap();
    let input = value_to_floats(fixture.get("input").expect("input"));
    let expected = value_to_floats(fixture.get("output").expect("output"));

    let engine = CompactEngine::new(ttm).unwrap();
    let mut y = vec![0.0f64; expected.len()];
    engine.matvec_into(&input, &mut y).unwrap();

    assert_eq!(y.len(), expected.len(), "{name}: output length changed");
    for (i, (&got, &want)) in y.iter().zip(&expected).enumerate() {
        assert!(
            got.to_bits() == want.to_bits(),
            "{name}: output[{i}] drifted: got {got:e} ({:#x}), fixture {want:e} ({:#x})",
            got.to_bits(),
            want.to_bits()
        );
    }
}

#[test]
fn golden_single_mode_5x7() {
    check_fixture("single_mode_5x7");
}

#[test]
fn golden_d2_6x6_rank2() {
    check_fixture("d2_6x6_rank2");
}

#[test]
fn golden_d3_24x24_rank3() {
    check_fixture("d3_24x24_rank3");
}

/// The fixtures themselves must stay self-consistent: seeds + shapes in
/// the file regenerate the very cores and input stored beside them. This
/// catches hand-edits that would silently weaken the golden guarantee.
#[test]
fn fixtures_are_reproducible_from_their_seeds() {
    for (name, ..) in cases() {
        let text = std::fs::read_to_string(fixture_path(name)).unwrap();
        let fixture = serde_json::from_str(&text).unwrap();
        let seed = fixture.get("seed").expect("seed").as_u64().unwrap();
        let m = value_to_usizes(fixture.get("row_modes").expect("row_modes"));
        let n = value_to_usizes(fixture.get("col_modes").expect("col_modes"));
        let r = fixture.get("rank").expect("rank").as_u64().unwrap() as usize;

        let (ttm, x) = build_case(seed, &m, &n, r);
        let stored_input = value_to_floats(fixture.get("input").expect("input"));
        assert_eq!(x, stored_input, "{name}: stored input diverges from seed");
        for (k, (core, stored)) in ttm
            .cores()
            .iter()
            .zip(fixture.get("cores").unwrap().as_array().unwrap())
            .enumerate()
        {
            let stored_data = value_to_floats(stored.get("data").expect("data"));
            assert_eq!(
                core.data(),
                stored_data.as_slice(),
                "{name}: core {k} diverges"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shard-map golden fixture: the consistent-hash ring's layer→shard
// assignment for the Table 4 layer set is part of the serving contract —
// a silent change to the hash or ring layout would reshuffle every
// deployed registry partition.
// ---------------------------------------------------------------------------

/// The pinned ring configurations: vnodes is the `ShardConfig` default.
const SHARD_MAP_SHARD_COUNTS: [usize; 3] = [2, 4, 8];
const SHARD_MAP_VNODES: usize = 64;

fn table4_layer_names() -> Vec<String> {
    tie::workloads::table4_benchmarks()
        .iter()
        .map(|b| b.name.to_string())
        .collect()
}

fn shard_map_value() -> Value {
    let maps: Vec<Value> = SHARD_MAP_SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let ring = HashRing::new(shards, SHARD_MAP_VNODES).unwrap();
            let assignments: Vec<Value> = table4_layer_names()
                .iter()
                .map(|name| {
                    Value::Object(vec![
                        ("layer".into(), Value::String(name.clone())),
                        ("shard".into(), Value::UInt(ring.shard_for(name) as u64)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("shards".into(), Value::UInt(shards as u64)),
                ("vnodes".into(), Value::UInt(SHARD_MAP_VNODES as u64)),
                ("assignments".into(), Value::Array(assignments)),
            ])
        })
        .collect();
    Value::Object(vec![("maps".into(), Value::Array(maps))])
}

/// Regenerate `golden_shard_map.json` after an *intentional* ring change.
#[test]
#[ignore = "writes tests/fixtures/; run only after an intentional ring change"]
fn regenerate_shard_map_fixture() {
    std::fs::create_dir_all(fixture_path("x").parent().unwrap()).unwrap();
    let text = serde_json::to_string_pretty(&shard_map_value()).unwrap();
    std::fs::write(fixture_path("shard_map"), text + "\n").unwrap();
}

// ---------------------------------------------------------------------------
// Pipeline-cut golden fixture: the cut-point planner's stage partition for
// every Table 4 layer is part of the pipelined-serving contract — a silent
// change to the cost model or the DP tie-break would re-balance deployed
// pipelines (and shift their per-stage SRAM footprints) without anyone
// noticing.
// ---------------------------------------------------------------------------

/// The pinned pipeline depths.
const PIPELINE_CUT_DEPTHS: [usize; 2] = [2, 4];

fn pipeline_cuts_value() -> Value {
    use tie::core::pipeline::plan_cuts;
    let layers: Vec<Value> = tie::workloads::table4_benchmarks()
        .iter()
        .map(|b| {
            let plan = InferencePlan::new(&b.shape).unwrap();
            let plans: Vec<Value> = PIPELINE_CUT_DEPTHS
                .iter()
                .map(|&depth| {
                    let cut = plan_cuts(&plan, depth);
                    Value::Object(vec![
                        ("depth".into(), Value::UInt(depth as u64)),
                        ("cuts".into(), usizes_to_value(&cut.cuts())),
                        ("bottleneck_cost".into(), Value::UInt(cut.bottleneck_cost())),
                        ("total_cost".into(), Value::UInt(cut.total_cost())),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("layer".into(), Value::String(b.name.into())),
                ("stages".into(), Value::UInt(b.shape.ndim() as u64)),
                ("plans".into(), Value::Array(plans)),
            ])
        })
        .collect();
    Value::Object(vec![("layers".into(), Value::Array(layers))])
}

/// Regenerate `golden_pipeline_cuts.json` after an *intentional* planner
/// change.
#[test]
#[ignore = "writes tests/fixtures/; run only after an intentional planner change"]
fn regenerate_pipeline_cuts_fixture() {
    std::fs::create_dir_all(fixture_path("x").parent().unwrap()).unwrap();
    let text = serde_json::to_string_pretty(&pipeline_cuts_value()).unwrap();
    std::fs::write(fixture_path("pipeline_cuts"), text + "\n").unwrap();
}

#[test]
fn golden_pipeline_cuts_table4() {
    let path = fixture_path("pipeline_cuts");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let fixture: Value = serde_json::from_str(&text).unwrap();
    let want = pipeline_cuts_value();
    assert_eq!(
        serde_json::to_string_pretty(&fixture).unwrap(),
        serde_json::to_string_pretty(&want).unwrap(),
        "the cut planner's Table 4 partition drifted from the committed fixture"
    );
    // The stored layer set must cover all of Table 4 at every pinned depth.
    let layers = fixture.get("layers").expect("layers").as_array().unwrap();
    assert_eq!(layers.len(), table4_layer_names().len());
    for layer in layers {
        let plans = layer.get("plans").expect("plans").as_array().unwrap();
        assert_eq!(plans.len(), PIPELINE_CUT_DEPTHS.len());
    }
}

#[test]
fn golden_shard_map_table4() {
    let path = fixture_path("shard_map");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()));
    let fixture: Value = serde_json::from_str(&text).unwrap();
    let maps = fixture
        .get("maps")
        .expect("maps")
        .as_array()
        .expect("array");
    assert_eq!(maps.len(), SHARD_MAP_SHARD_COUNTS.len());
    for map in maps {
        let shards = map.get("shards").expect("shards").as_u64().unwrap() as usize;
        let vnodes = map.get("vnodes").expect("vnodes").as_u64().unwrap() as usize;
        let ring = HashRing::new(shards, vnodes).unwrap();
        let assignments = map
            .get("assignments")
            .expect("assignments")
            .as_array()
            .unwrap();
        assert_eq!(
            assignments.len(),
            table4_layer_names().len(),
            "every Table 4 layer must be pinned"
        );
        for a in assignments {
            let layer = a.get("layer").expect("layer").as_str().expect("string");
            let want = a.get("shard").expect("shard").as_u64().unwrap() as usize;
            assert_eq!(
                ring.shard_for(layer),
                want,
                "layer {layer} moved off shard {want} ({shards} shards): \
                 the hash ring's placement contract changed"
            );
        }
    }
}
