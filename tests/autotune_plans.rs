//! Autotuner deployment-plan suite: the JSON round-trip property, golden
//! tuned-plan fixtures for two Table 4 layers, worker-pool determinism,
//! and the saturation re-probe loop at integration scale.
//!
//! The golden fixtures under `tests/fixtures/golden_tuned_plan_*.json`
//! pin the tuner's *output contract*: the exact plan (layout, ranks, SVD
//! seed, serving knobs, validated margin) the pinned search config
//! produces for LSTM-UCF11 and LSTM-Youtube. The fast tests parse and
//! re-derive the fixtures without running the search; the `#[ignore]`d
//! reproduction test re-runs the search in release mode (ci.sh tier-2)
//! and must land on the committed bytes — that is the determinism gate,
//! and `TIE_AUTOTUNE_BUDGET_S` turns it into a wall-clock gate too.
//!
//! Regenerate after an *intentional* tuner change with:
//! `cargo test --release --test autotune_plans -- --ignored regenerate`

use proptest::prelude::*;
use serde_json::Value;
use tie::core::{plans_from_json, plans_to_json};
use tie::core::{Activation, CostModel, DeploymentPlan, InferencePlan, PlanBackend};
use tie::sim::{QuantConfig, ReprobeConfig, TieConfig};
use tie::tensor::linalg::{RsvdParams, SvdMethod};
use tie::tensor::parallel;
use tie::tt::TtShape;
use tie::workloads::autotune::{autotune_layer, SearchSpace, TunerConfig};
use tie::workloads::{table4_layer_specs, LayerSpec, Task};

// ---------------------------------------------------------------------------
// Property: every well-formed plan survives the JSON round trip
// bit-identically (the fixture/diff/load contract of `DeploymentPlan`).
// ---------------------------------------------------------------------------

/// Strategy: a valid TT layout with d in 1..=4, modes in 1..=8, uniform
/// interior rank in 1..=4.
fn shape_strategy() -> impl Strategy<Value = TtShape> {
    (1usize..=4).prop_flat_map(|d| {
        (
            proptest::collection::vec(1usize..=8, d),
            proptest::collection::vec(1usize..=8, d),
            1usize..=4,
        )
            .prop_map(|(m, n, r)| TtShape::uniform_rank(m, n, r).expect("valid layout"))
    })
}

/// Strategy: every `SvdMethod` variant, seeds and rSVD params included.
fn svd_strategy() -> impl Strategy<Value = SvdMethod> {
    (0usize..3, 0u64..u64::MAX, 1usize..16, 0usize..4).prop_map(
        |(variant, seed, oversample, power_iters)| match variant {
            0 => SvdMethod::Jacobi,
            1 => SvdMethod::Auto { seed },
            _ => SvdMethod::Randomized(RsvdParams {
                seed,
                oversample,
                power_iters,
            }),
        },
    )
}

fn plan_strategy() -> impl Strategy<Value = DeploymentPlan> {
    (
        (0usize..4, 1u32..1000),
        shape_strategy(),
        svd_strategy(),
        (0usize..2, 0usize..2, 1usize..=64, 1usize..=8, 1usize..=16),
        (1e-3f64..1e3, 0.0f64..1e12),
    )
        .prop_map(
            |((name_ix, tag), shape, svd, (backend, act, batch, depth, micro), (margin, cps))| {
                DeploymentPlan {
                    layer: format!("{}-{tag}", ["fc", "lstm", "conv", "attn"][name_ix]),
                    shape,
                    svd,
                    backend: [PlanBackend::Float, PlanBackend::Quantized][backend],
                    batch,
                    pipeline_depth: depth,
                    micro_batch: micro,
                    activation: [Activation::Identity, Activation::Relu][act],
                    quant_margin: margin,
                    modeled_cycles_per_sample: cps,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Serialize → parse lands on the identical plan, floats bit-for-bit.
    #[test]
    fn plan_json_round_trip_is_bit_identical(plan in plan_strategy()) {
        let back = DeploymentPlan::from_json(&plan.to_json()).expect("round trip parses");
        prop_assert_eq!(&back, &plan);
        prop_assert_eq!(back.quant_margin.to_bits(), plan.quant_margin.to_bits());
        prop_assert_eq!(
            back.modeled_cycles_per_sample.to_bits(),
            plan.modeled_cycles_per_sample.to_bits()
        );
        // Serializing the parsed plan reproduces the exact bytes.
        prop_assert_eq!(back.to_json(), plan.to_json());
    }

    /// Whole deployments (arrays of plans) round-trip the same way.
    #[test]
    fn deployment_arrays_round_trip(plans in proptest::collection::vec(plan_strategy(), 0..4)) {
        let text = plans_to_json(&plans);
        let back = plans_from_json(&text).expect("array round trip parses");
        prop_assert_eq!(&back, &plans);
        prop_assert_eq!(plans_to_json(&back), text);
    }
}

// ---------------------------------------------------------------------------
// Golden tuned-plan fixtures: LSTM-UCF11 and LSTM-Youtube under the
// pinned search config below. `{ "default": <plan>, "tuned": <plan> }`.
// ---------------------------------------------------------------------------

/// The two pinned layers (the LSTM rows of Table 4 — paper-scale inputs
/// whose searches run in seconds in release mode).
const GOLDEN_LAYERS: [&str; 2] = ["LSTM-UCF11", "LSTM-Youtube"];

/// The frozen search config the fixtures were generated with. Every knob
/// that shapes the search is spelled out here so a default-drift anywhere
/// upstream shows up as a fixture diff, not a silent re-tune.
fn fixture_cfg() -> TunerConfig {
    TunerConfig {
        space: SearchSpace {
            layouts_per_dim: 2,
            ..SearchSpace::default()
        },
        top_k: 2,
        ..TunerConfig::default()
    }
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(format!("golden_tuned_plan_{name}.json"))
}

fn golden_spec(name: &str) -> LayerSpec {
    table4_layer_specs()
        .into_iter()
        .find(|s| s.name == name)
        .expect("pinned layer is in Table 4")
}

fn read_fixture(name: &str) -> (DeploymentPlan, DeploymentPlan) {
    let path = fixture_path(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing fixture {}: {e}; regenerate with \
             `cargo test --release --test autotune_plans -- --ignored regenerate`",
            path.display()
        )
    });
    let fixture: Value = serde_json::from_str(&text).expect("fixture parses");
    let default =
        DeploymentPlan::from_value(fixture.get("default").expect("default plan")).unwrap();
    let tuned = DeploymentPlan::from_value(fixture.get("tuned").expect("tuned plan")).unwrap();
    (default, tuned)
}

fn fixture_text(default: &DeploymentPlan, tuned: &DeploymentPlan) -> String {
    use serde::Serialize;
    let fixture = Value::Object(vec![
        ("default".into(), default.to_value()),
        ("tuned".into(), tuned.to_value()),
    ]);
    serde_json::to_string_pretty(&fixture).unwrap() + "\n"
}

/// Regenerates both tuned-plan fixtures from the frozen search config.
/// Run in **release** mode — each layer's search TT-SVD-compiles its
/// paper-scale dense weights a few times.
#[test]
#[ignore = "writes tests/fixtures/; run only after an intentional tuner change"]
fn regenerate_tuned_plan_fixtures() {
    std::fs::create_dir_all(fixture_path("x").parent().unwrap()).unwrap();
    let cfg = fixture_cfg();
    for name in GOLDEN_LAYERS {
        let tuned = autotune_layer(&golden_spec(name), &cfg).expect("search succeeds");
        std::fs::write(
            fixture_path(name),
            fixture_text(&tuned.default_plan, &tuned.plan),
        )
        .unwrap();
    }
}

fn check_fixture(name: &str) {
    let (default, tuned) = read_fixture(name);
    let spec = golden_spec(name);

    // Both plans address the pinned layer and factorize its dense dims.
    let (rows, cols) = spec.size();
    for plan in [&default, &tuned] {
        assert_eq!(plan.layer, name);
        assert_eq!(plan.shape.num_rows(), rows, "{name}: row dim drifted");
        assert_eq!(plan.shape.num_cols(), cols, "{name}: col dim drifted");
        plan.validate().expect("fixture plans are valid");
        assert_eq!(plan.backend, PlanBackend::Quantized);
        // Bit-identical JSON round trip on the committed bytes.
        let back = DeploymentPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(&back, plan, "{name}: fixture plan does not round-trip");
    }

    // The stored score is re-derivable from the shape + knobs with the
    // same cost model the tuner used — the fixture can't smuggle in a
    // number the hardware model wouldn't produce.
    let model: CostModel = TieConfig::default().cost_model();
    for plan in [&default, &tuned] {
        let inference = InferencePlan::new(&plan.shape).unwrap();
        let cps = model.cycles_per_sample(
            &inference,
            plan.batch,
            plan.pipeline_depth,
            plan.micro_batch,
        );
        assert_eq!(
            cps.to_bits(),
            plan.modeled_cycles_per_sample.to_bits(),
            "{name}: stored modeled_cycles_per_sample diverges from the cost model"
        );
    }

    // The default plan is the paper setting: spec layout, batch 1,
    // sequential. The tuned plan must beat it on modeled cycles (the
    // acceptance criterion) by moving at least one serving knob.
    assert_eq!(default.shape.row_modes, spec.row_modes);
    assert_eq!(default.shape.col_modes, spec.col_modes);
    assert_eq!((default.batch, default.pipeline_depth), (1, 1));
    assert!(
        tuned.modeled_cycles_per_sample < default.modeled_cycles_per_sample,
        "{name}: tuned {} must beat default {}",
        tuned.modeled_cycles_per_sample,
        default.modeled_cycles_per_sample
    );
    assert!(tuned.batch > 1 || tuned.pipeline_depth > 1);
    // The validated margin is positive and at least the tightest searched
    // one (the re-probe ladder can only widen, never tighten).
    let tightest = fixture_cfg()
        .space
        .quant_margins
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    assert!(tuned.quant_margin >= tightest);
}

#[test]
fn golden_tuned_plan_lstm_ucf11() {
    check_fixture("LSTM-UCF11");
}

#[test]
fn golden_tuned_plan_lstm_youtube() {
    check_fixture("LSTM-Youtube");
}

/// Re-runs the pinned search and demands the committed fixture bytes —
/// the tuner determinism gate (ci.sh tier-2, release mode, both thread
/// settings). With `TIE_AUTOTUNE_BUDGET_S` set, each layer's search must
/// also finish inside that wall-clock budget.
#[test]
#[ignore = "re-runs paper-scale searches; ci.sh tier-2 runs it in release mode"]
fn tuned_plan_search_reproduces_the_fixtures() {
    let budget_s: Option<f64> = std::env::var("TIE_AUTOTUNE_BUDGET_S")
        .ok()
        .map(|v| v.parse().expect("TIE_AUTOTUNE_BUDGET_S must be seconds"));
    let cfg = fixture_cfg();
    for name in GOLDEN_LAYERS {
        let committed = std::fs::read_to_string(fixture_path(name)).unwrap();
        let t0 = std::time::Instant::now();
        let tuned = autotune_layer(&golden_spec(name), &cfg).expect("search succeeds");
        let elapsed = t0.elapsed().as_secs_f64();
        assert_eq!(
            fixture_text(&tuned.default_plan, &tuned.plan),
            committed,
            "{name}: the search no longer reproduces the committed fixture"
        );
        if let Some(budget) = budget_s {
            assert!(
                elapsed <= budget,
                "{name}: search took {elapsed:.2}s, over the {budget:.2}s budget"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Determinism across worker-pool sizes, and the re-probe loop, on a
// compile-in-milliseconds layer (runs in debug mode as part of tier 1).
// ---------------------------------------------------------------------------

/// A small planted-rank-2 layer whose full search runs in milliseconds.
fn small_spec() -> LayerSpec {
    LayerSpec {
        name: "tiny-fc",
        row_modes: vec![4, 4],
        col_modes: vec![4, 4],
        rank: 2,
        task: Task::ImageClassification,
        paper_cr: None,
        activation: Activation::Relu,
        noise: 1e-4,
    }
}

fn small_cfg() -> TunerConfig {
    TunerConfig {
        space: SearchSpace {
            layouts_per_dim: 2,
            batch_sizes: vec![1, 8],
            pipeline_depths: vec![1, 2],
            ..SearchSpace::default()
        },
        top_k: 2,
        error_entries: 1 << 10,
        ..TunerConfig::default()
    }
}

/// Same seed ⇒ byte-identical plan at every pool size: the SVD routes,
/// probe generators and margin walk are all seed-deterministic, and with
/// `compile_budget_s = None` no wall-clock measurement feeds back into
/// the search.
#[test]
fn autotuned_plan_is_identical_across_pool_sizes() {
    let spec = small_spec();
    let cfg = small_cfg();
    let prev = parallel::set_num_threads(1);
    let reference = autotune_layer(&spec, &cfg).unwrap();
    for threads in [2usize, 8] {
        parallel::set_num_threads(threads);
        let got = autotune_layer(&spec, &cfg).unwrap();
        assert_eq!(
            got.plan.to_json(),
            reference.plan.to_json(),
            "plan drifted at pool size {threads}"
        );
        assert_eq!(got.plan, reference.plan);
        assert_eq!(got.default_plan, reference.default_plan);
    }
    parallel::set_num_threads(prev);
}

/// Calibrating far too tight forces saturation drift on the held-out
/// validation probes; the tuner must walk the margin ladder, accept a
/// widened margin, and end clean — the re-probe loop end to end.
#[test]
fn reprobe_ladder_widens_on_saturation_drift() {
    let spec = small_spec();
    let cfg = TunerConfig {
        quant: QuantConfig {
            probe_amplitude: 0.05,
            ..QuantConfig::default()
        },
        space: SearchSpace {
            quant_margins: vec![1.0, 2.0],
            ..small_cfg().space
        },
        reprobe: ReprobeConfig {
            widen_factor: 2.0,
            max_widenings: 8,
            ..ReprobeConfig::default()
        },
        ..small_cfg()
    };
    let tuned = autotune_layer(&spec, &cfg).unwrap();
    let trail = tuned.reprobe_attempts.as_ref().expect("quantized backend");
    assert!(trail.len() > 1, "drift must force more than one attempt");
    assert!(
        trail[0].saturation_rate > 0.0,
        "the tightest margin must saturate on validation probes"
    );
    assert!(tuned.plan.quant_margin > 1.0, "accepted margin widened");
    assert_eq!(tuned.tuned_saturation_rate.unwrap(), 0.0, "ends clean");
}
