//! Chaos suite for the sharded serving layer: fault injection under
//! live load.
//!
//! The scenarios (ISSUE 7 acceptance):
//!
//! * **Replica kill + drain + re-registration mid-load** — while client
//!   threads hammer the service, one replica of a busy shard is drained
//!   (graceful) and the other killed (handle dropped), leaving the shard
//!   dark; submissions fail fast with `ShardUnavailable` until a fresh
//!   replica is re-registered. Afterwards every counter must reconcile
//!   **exactly** against the client-side tallies: no request lost, none
//!   double-completed, every router retry/reject/drain accounted.
//! * **Shutdown under load leaks no threads** — a full service lifecycle
//!   under load must return the process to its baseline thread count
//!   (the persistent kernel pool excluded: its workers are process-wide
//!   and live across services by design).
//!
//! Both run at kernel-pool sizes {1, 8}. Reproducible via
//! `TIE_STRESS_SEED` (printed on stderr).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;
use tie::core::CompactEngine;
use tie::serve::{EngineRegistry, HashRing, ServeConfig, ServeError, ShardConfig, ShardedService};
use tie::tensor::parallel;
use tie::tt::{TtMatrix, TtShape};

const POOL_SIZES: [usize; 2] = [1, 8];

/// Both tests measure or perturb process-global state (thread counts,
/// the kernel-pool size override), so they must not interleave.
static SERIAL: Mutex<()> = Mutex::new(());

fn suite_seed() -> u64 {
    let seed = std::env::var("TIE_STRESS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC0FF_EE00_5EED);
    eprintln!("shard_chaos: TIE_STRESS_SEED={seed}");
    seed
}

/// Layers covering every shard of the ring (see shard_stress.rs).
fn layers_covering_all_shards(
    seed: u64,
    ring: &HashRing,
) -> Vec<(String, Arc<CompactEngine<f64>>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let shapes = [
        TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap(),
        TtShape::uniform_rank(vec![2, 2, 2], vec![2, 3, 2], 2).unwrap(),
        TtShape::uniform_rank(vec![4], vec![9], 1).unwrap(),
    ];
    let mut owned = vec![0usize; ring.shards().len()];
    let mut layers = Vec::new();
    for i in 0..256 {
        let name = format!("layer{i}");
        let pos = ring
            .shards()
            .iter()
            .position(|&s| s == ring.shard_for(&name))
            .unwrap();
        if owned.iter().all(|&c| c > 0) && layers.len() >= 2 * ring.shards().len() {
            break;
        }
        owned[pos] += 1;
        let ttm = TtMatrix::<f64>::random(&mut rng, &shapes[i % shapes.len()], 0.6).unwrap();
        layers.push((name, Arc::new(CompactEngine::new(ttm).unwrap())));
    }
    assert!(
        owned.iter().all(|&c| c > 0),
        "candidates must cover every shard"
    );
    layers
}

fn input_for(nonce: u64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn direct_eval(engine: &CompactEngine<f64>, x: &[f64]) -> Vec<f64> {
    let mut y = vec![0.0; engine.matrix().shape().num_rows()];
    engine.matvec_batch_into(x, 1, &mut y).unwrap();
    y
}

/// Client-side tally of one thread's outcomes — the ground truth the
/// service counters are reconciled against.
#[derive(Default)]
struct Tally {
    ok_nonces: Vec<u64>,
    torn_down: u64,
    queue_full: u64,
    unavailable: u64,
}

fn chaos_round(seed: u64, pool: usize) {
    let shards = 4;
    let config = ShardConfig {
        shards,
        replicas: 2,
        vnodes: 64,
        replica: ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_capacity: 64,
            workers: 1,
        },
        submit_retries: 4,
        retry_backoff: Duration::from_micros(50),
    };
    let ring = HashRing::new(config.shards, config.vnodes).unwrap();
    let layers = layers_covering_all_shards(seed, &ring);
    let mut registry = EngineRegistry::new();
    for (name, engine) in &layers {
        registry.insert_shared(name.clone(), Arc::clone(engine));
    }
    let service = Arc::new(ShardedService::start(registry, config).unwrap());
    let layers = Arc::new(layers);
    let stop = Arc::new(AtomicBool::new(false));

    const CLIENTS: usize = 6;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|t| {
            let client = service.client();
            let layers = Arc::clone(&layers);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut tally = Tally::default();
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    let nonce = (t as u64) << 32 | i;
                    i += 1;
                    let li = nonce as usize % layers.len();
                    let (name, engine) = &layers[li];
                    let n = engine.matrix().shape().num_cols();
                    let x = input_for(nonce, n, seed);
                    match client.submit(name, x.clone()) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(resp) => {
                                let want = direct_eval(engine, &x);
                                assert_eq!(resp.output, want, "nonce {nonce}: bit-identity");
                                tally.ok_nonces.push(nonce);
                            }
                            // Accepted, then the replica was torn down:
                            // the accounted-for failure path.
                            Err(ServeError::ShuttingDown) => tally.torn_down += 1,
                            Err(e) => panic!("nonce {nonce}: unexpected wait error {e}"),
                        },
                        Err(ServeError::QueueFull) => tally.queue_full += 1,
                        Err(ServeError::ShardUnavailable { .. }) => {
                            tally.unavailable += 1;
                            // The shard is dark; give the conductor a
                            // moment instead of spinning.
                            std::thread::sleep(Duration::from_micros(200));
                        }
                        Err(ServeError::ShuttingDown) => break,
                        Err(e) => panic!("nonce {nonce}: unexpected submit error {e}"),
                    }
                }
                tally
            })
        })
        .collect();

    // The chaos conductor: pick the shard owning layer 0, drain one
    // replica mid-load, kill the other, let ShardUnavailable storms hit
    // the clients, then re-register and let the shard recover.
    let victim = ring.shard_for(&layers[0].0);
    std::thread::sleep(Duration::from_millis(20));
    let drained_stats = service
        .drain_replica(victim, 0)
        .expect("drain live replica");
    assert_eq!(
        drained_stats.submitted,
        drained_stats.completed + drained_stats.failed,
        "drained replica's own books balance"
    );
    std::thread::sleep(Duration::from_millis(10));
    service
        .kill_replica(victim, 1)
        .expect("kill second replica");
    assert_eq!(service.live_replicas(victim), 0, "shard is dark");
    std::thread::sleep(Duration::from_millis(10));
    let slot = service.reregister_replica(victim).expect("re-register");
    assert_eq!(slot, 2, "fresh slot, retired slots retained");
    std::thread::sleep(Duration::from_millis(20));

    stop.store(true, Ordering::Release);
    let tallies: Vec<Tally> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // After re-registration the shard serves again (the clients above
    // may all have moved past it, so check explicitly).
    let probe = service.client();
    let (name0, engine0) = &layers[0];
    let x = input_for(u64::MAX, engine0.matrix().shape().num_cols(), seed);
    let resp = probe.submit(name0, x.clone()).unwrap().wait().unwrap();
    assert_eq!(
        resp.output,
        direct_eval(engine0, &x),
        "revived shard serves bit-identically"
    );

    let service = Arc::try_unwrap(service).expect("all client handles joined");
    let stats = service.shutdown();
    let global = stats.global();

    // Exact reconciliation against the client-side ground truth.
    let mut ok_nonces = HashSet::new();
    let mut total_ok = 0u64;
    let (mut torn, mut full, mut unavailable) = (0u64, 0u64, 0u64);
    for t in &tallies {
        for &n in &t.ok_nonces {
            assert!(ok_nonces.insert(n), "nonce {n} completed twice");
        }
        total_ok += t.ok_nonces.len() as u64;
        torn += t.torn_down;
        full += t.queue_full;
        unavailable += t.unavailable;
    }
    total_ok += 1; // the post-recovery probe above

    assert!(
        total_ok > 1,
        "some requests must have completed around the chaos"
    );
    assert_eq!(
        global.completed, total_ok,
        "no response lost or double-completed"
    );
    assert_eq!(
        global.failed, torn,
        "every torn-down request accounted exactly once"
    );
    assert_eq!(
        global.submitted,
        total_ok + torn,
        "accepted = completed + torn down"
    );
    assert_eq!(
        global.submitted,
        global.completed + global.failed,
        "global balance"
    );
    assert_eq!(
        stats.routed(),
        global.submitted,
        "router routed == replicas accepted"
    );
    assert_eq!(
        stats.rejected(),
        full,
        "router rejects reconcile with client QueueFulls"
    );
    assert_eq!(
        stats.drained(),
        unavailable,
        "fail-fasts reconcile with ShardUnavailable"
    );
    for shard in &stats.shards {
        let view = shard.service();
        assert_eq!(
            shard.routed, view.submitted,
            "shard {} routed balance",
            shard.shard
        );
        assert_eq!(
            view.submitted,
            view.completed + view.failed,
            "shard {} replica balance",
            shard.shard
        );
    }
    let st = &stats.shards[victim];
    assert_eq!(st.replicas.len(), 3, "2 retired + 1 re-registered slot");
    assert!(
        st.drained == unavailable,
        "all fail-fasts happened on the victim shard ({} vs {unavailable})",
        st.drained
    );
    eprintln!(
        "shard_chaos pool={pool}: ok={total_ok} torn={torn} full={full} \
         unavailable={unavailable} routed={}",
        stats.routed()
    );
}

#[test]
fn chaos_kill_drain_reregister_reconciles_exactly() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seed = suite_seed();
    let prev = parallel::set_num_threads(0);
    for &pool in &POOL_SIZES {
        parallel::set_num_threads(pool);
        chaos_round(seed.wrapping_add(pool as u64), pool);
    }
    parallel::set_num_threads(prev);
}

/// Current thread count of this process (Linux: `/proc/self/status`).
/// Returns `None` on platforms without procfs — the leak check then
/// degrades to the join-based guarantees of the other tests.
fn thread_count() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse().ok())
}

/// One service lifecycle under load: 4 clients submit continuously,
/// shutdown lands mid-flight, everything joins.
fn lifecycle_under_load(seed: u64) {
    let config = ShardConfig {
        shards: 4,
        replicas: 2,
        replica: ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_micros(200),
            queue_capacity: 64,
            workers: 2,
        },
        ..ShardConfig::default()
    };
    let ring = HashRing::new(config.shards, config.vnodes).unwrap();
    let layers = layers_covering_all_shards(seed, &ring);
    let mut registry = EngineRegistry::new();
    for (name, engine) in &layers {
        registry.insert_shared(name.clone(), Arc::clone(engine));
    }
    let service = ShardedService::start(registry, config).unwrap();
    let layers = Arc::new(layers);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let client = service.client();
            let layers = Arc::clone(&layers);
            std::thread::spawn(move || {
                for i in 0..u64::MAX {
                    let nonce = (t as u64) << 32 | i;
                    let li = nonce as usize % layers.len();
                    let (name, engine) = &layers[li];
                    let x = input_for(nonce, engine.matrix().shape().num_cols(), seed);
                    match client.submit(name, x) {
                        Ok(ticket) => match ticket.wait() {
                            Ok(_) | Err(ServeError::ShuttingDown) => {}
                            Err(e) => panic!("unexpected wait error {e}"),
                        },
                        Err(ServeError::ShuttingDown) => break,
                        Err(ServeError::QueueFull | ServeError::ShardUnavailable { .. }) => {}
                        Err(e) => panic!("unexpected submit error {e}"),
                    }
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(30));
    let stats = service.shutdown();
    for h in handles {
        h.join().unwrap();
    }
    let global = stats.global();
    assert_eq!(global.submitted, global.completed + global.failed);
}

#[test]
fn shutdown_under_load_leaves_no_leaked_threads() {
    let _guard = SERIAL
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let seed = suite_seed().wrapping_add(0xCAFE);
    let prev = parallel::set_num_threads(0);

    // Warm the persistent kernel pool to its largest size first, so its
    // (process-wide, by-design persistent) workers are part of the
    // baseline and not mistaken for a leak.
    parallel::set_num_threads(8);
    lifecycle_under_load(seed);

    let Some(baseline) = thread_count() else {
        eprintln!("shard_chaos: no procfs; skipping the thread-count assertion");
        parallel::set_num_threads(prev);
        return;
    };

    for &pool in &POOL_SIZES {
        parallel::set_num_threads(pool);
        lifecycle_under_load(seed.wrapping_add(pool as u64));
        // The OS may reap exited threads a beat after join returns.
        let mut now = thread_count().unwrap();
        for _ in 0..50 {
            if now <= baseline {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
            now = thread_count().unwrap();
        }
        assert!(
            now <= baseline,
            "pool={pool}: {now} threads alive vs baseline {baseline} — serve threads leaked"
        );
    }
    parallel::set_num_threads(prev);
}
