//! Offline stand-in for `serde_derive`, written against `proc_macro` alone
//! (no `syn`/`quote` — the build environment has no registry access).
//!
//! Supports exactly the shape the workspace uses: `struct` with named
//! fields, no generics. Attributes (doc comments included) are skipped;
//! every field is serialized under its own name. Anything else produces a
//! clear compile error rather than silently wrong output.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored stand-in trait) for a struct
/// with named fields.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_struct(input) {
        Ok((name, fields)) => {
            let mut entries = String::new();
            for f in &fields {
                entries.push_str(&format!(
                    "(\"{f}\".to_string(), <_ as serde::Serialize>::to_value(&self.{f})),"
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         serde::Value::Object(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
            .parse()
            .expect("generated impl parses")
        }
        Err(msg) => format!("compile_error!(\"derive(Serialize) stand-in: {msg}\");")
            .parse()
            .expect("error token parses"),
    }
}

/// Extracts `(struct_name, field_names)` from the derive input.
fn parse_struct(input: TokenStream) -> Result<(String, Vec<String>), String> {
    let mut iter = input.into_iter().peekable();
    // Skip attributes and visibility to find `struct Name { ... }`.
    let mut name = None;
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                match iter.next() {
                    Some(TokenTree::Ident(n)) => name = Some(n.to_string()),
                    _ => return Err("expected struct name".into()),
                }
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                return Err("enums are not supported; serialize structs only".into());
            }
            _ => {}
        }
    }
    let name = name.ok_or_else(|| "no struct found".to_string())?;
    // Next significant token must be the brace group (generics unsupported).
    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("generic structs are not supported".into());
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err("tuple structs are not supported".into());
            }
            Some(_) => continue,
            None => return Err("struct has no body".into()),
        }
    };
    // Walk the fields: `(#[attr])* (pub (…)?)? name : Type ,`
    let mut fields = Vec::new();
    let mut expect_name = true;
    let mut angle_depth = 0i32;
    let mut body_iter = body.into_iter().peekable();
    while let Some(tt) = body_iter.next() {
        match tt {
            TokenTree::Punct(p) => match p.as_char() {
                '#' if expect_name => {
                    body_iter.next(); // attribute group
                }
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => expect_name = true,
                _ => {}
            },
            TokenTree::Ident(id) if expect_name => {
                let s = id.to_string();
                if s == "pub" {
                    // Optional `pub(crate)`-style restriction group follows.
                    if let Some(TokenTree::Group(g)) = body_iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            body_iter.next();
                        }
                    }
                } else {
                    match body_iter.next() {
                        Some(TokenTree::Punct(c)) if c.as_char() == ':' => {
                            fields.push(s);
                            expect_name = false;
                        }
                        _ => return Err(format!("field `{s}` is not `name: Type`")),
                    }
                }
            }
            _ => {}
        }
    }
    Ok((name, fields))
}
