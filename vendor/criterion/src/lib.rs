//! Offline stand-in for `criterion`, vendored because the build environment
//! has no registry access.
//!
//! Keeps the harness API (`criterion_group!`/`criterion_main!`, benchmark
//! groups, `Bencher::iter`) so the workspace's `harness = false` bench
//! targets compile and run unchanged, but replaces the statistics engine
//! with a bounded warm-up + mean-of-batches measurement printed as
//! `group/id  time: … per iter`. There are no HTML reports and no saved
//! baselines; benches that want machine-readable output write their own
//! JSON (see `tie-bench`).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Harness entry point; holds measurement defaults.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 60,
            measurement_time: Duration::from_millis(400),
            warm_up_time: Duration::from_millis(80),
        }
    }
}

impl Criterion {
    /// Sets the target number of measured iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_one(id, sample_size, measurement_time, warm_up_time, f);
        self
    }
}

/// A named set of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of measured iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark identified by a plain string.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(
            &full,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            |b| {
                f(b, input);
            },
        );
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An identifier with only a parameter part.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of the accepted id shapes into the printed identifier.
pub trait IntoBenchmarkId {
    /// Renders the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Mean time per iteration of the last `iter` call.
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: warms up within the warm-up budget, then runs
    /// until either `sample_size` iterations or the measurement budget is
    /// reached (always at least one timed iteration).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_iters < 3 || warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 3 && warm_start.elapsed() >= self.warm_up_time {
                break;
            }
            if warm_iters >= 10_000 {
                break;
            }
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.sample_size as u64 || start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.result = Some(start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        sample_size,
        measurement_time,
        warm_up_time,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(per_iter) => println!("{id:<56} time: {} per iter", format_duration(per_iter)),
        None => println!("{id:<56} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut c = Criterion::default();
        c.measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
            .sample_size(4);
        let mut group = c.benchmark_group("stub");
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert!(calls >= 1);
    }

    #[test]
    fn benchmark_id_formats_function_and_parameter() {
        assert_eq!(
            BenchmarkId::new("compact", "16x16_r2").into_benchmark_id(),
            "compact/16x16_r2"
        );
        assert_eq!(BenchmarkId::from_parameter(42).into_benchmark_id(), "42");
    }

    #[test]
    fn durations_format_with_unit_scaling() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(format_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
