//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text and parses JSON text back into a [`Value`]
//! tree ([`from_str`]). Numbers written by [`to_string`] round-trip
//! exactly: Rust's `{}` formatting of `f64` emits the shortest string that
//! parses back to the same bits, so `from_str(&to_string(v))` reproduces
//! every finite float bit-for-bit (the golden-fixture tests rely on this).

#![forbid(unsafe_code)]

use serde::Serialize;
pub use serde::Value;

/// Serialization/parse error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; `Result` is kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as human-readable JSON (two-space indentation).
///
/// # Errors
///
/// Infallible in this stand-in; `Result` is kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&render_f64(*f)),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => render_array(items, indent, depth, out),
        Value::Object(entries) => render_object(entries, indent, depth, out),
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render_array(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    out.push('[');
    if !items.is_empty() {
        for (i, item) in items.iter().enumerate() {
            newline_indent(indent, depth + 1, out);
            render(item, indent, depth + 1, out);
            if i + 1 < items.len() {
                out.push(',');
            }
        }
        newline_indent(indent, depth, out);
    }
    out.push(']');
}

fn render_object(
    entries: &[(String, Value)],
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    out.push('{');
    if !entries.is_empty() {
        for (i, (k, v)) in entries.iter().enumerate() {
            newline_indent(indent, depth + 1, out);
            render_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            render(v, indent, depth + 1, out);
            if i + 1 < entries.len() {
                out.push(',');
            }
        }
        newline_indent(indent, depth, out);
    }
    out.push('}');
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`] tree.
///
/// Supports the full JSON grammar as this stand-in's serializer emits it:
/// objects (as ordered key/value pairs), arrays, strings with the common
/// escapes plus `\uXXXX` (including surrogate pairs), `true`/`false`/
/// `null`, and numbers. A number lexeme containing `.`, `e` or `E` parses
/// as [`Value::Float`]; otherwise it parses as [`Value::Int`] when it fits
/// an `i64`, falling back to [`Value::UInt`] and then to `Float`.
///
/// # Errors
///
/// Returns [`Error`] with a byte offset for malformed input or trailing
/// non-whitespace.
pub fn from_str(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error {
            message: format!("trailing characters at byte {}", p.pos),
        });
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, what: &str) -> Result<T> {
        Err(Error {
            message: format!("{what} at byte {}", self.pos),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected {:?}", byte as char))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(&format!("expected keyword {word:?}"))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                            continue; // parse_hex4 already advanced
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // remainder is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error {
                        message: "invalid utf-8".into(),
                    })?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|_| Error {
            message: "invalid utf-8 in \\u escape".into(),
        })?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| Error {
            message: format!("invalid \\u escape {hex:?}"),
        })?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let lexeme = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error {
            message: "invalid utf-8 in number".into(),
        })?;
        if lexeme.is_empty() || lexeme == "-" {
            return self.err("expected a number");
        }
        if !is_float {
            if let Ok(i) = lexeme.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = lexeme.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        lexeme.parse::<f64>().map(Value::Float).map_err(|_| Error {
            message: format!("invalid number {lexeme:?}"),
        })
    }
}

fn render_f64(f: f64) -> String {
    if f.is_nan() {
        return "null".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "1e999" } else { "-1e999" }.to_string();
    }
    let s = format!("{f}");
    // Ensure floats keep a float shape ("1.0", not "1") like serde_json.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("name".into(), Value::String("tie".into())),
            ("n".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(0.5)),
            (
                "rows".into(),
                Value::Array(vec![Value::Int(-1), Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ])
    }

    #[test]
    fn compact_rendering() {
        assert_eq!(
            to_string(&sample()).unwrap(),
            r#"{"name":"tie","n":3,"ratio":0.5,"rows":[-1,true,null],"empty":[]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_two_spaces() {
        let s = to_string_pretty(&sample()).unwrap();
        assert!(s.starts_with("{\n  \"name\": \"tie\","));
        assert!(s.contains("\"rows\": [\n    -1,"));
        assert!(s.ends_with("\"empty\": []\n}"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_keep_float_shape() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(1.25e-9)).unwrap(), "0.00000000125");
        assert_eq!(to_string(&Value::Float(-3.5)).unwrap(), "-3.5");
    }

    #[test]
    fn parse_roundtrips_sample() {
        // Variant note: a small `UInt` re-parses as `Int` (JSON text does
        // not carry signedness), so compare through the text form.
        let v = sample();
        let text = to_string(&v).unwrap();
        assert_eq!(to_string(&from_str(&text).unwrap()).unwrap(), text);
        assert_eq!(
            to_string(&from_str(&to_string_pretty(&v).unwrap()).unwrap()).unwrap(),
            text
        );
    }

    #[test]
    fn parse_number_variants() {
        assert_eq!(from_str("42").unwrap(), Value::Int(42));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(u64::MAX)
        );
        assert_eq!(from_str("2.0").unwrap(), Value::Float(2.0));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-2.5E-2").unwrap(), Value::Float(-0.025));
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for f in [
            0.1,
            -1.0 / 3.0,
            f64::MIN_POSITIVE,
            f64::MAX,
            1.2345678901234567e-200,
            -9.87654321e123,
        ] {
            let text = to_string(&Value::Float(f)).unwrap();
            match from_str(&text).unwrap() {
                Value::Float(g) => assert_eq!(f.to_bits(), g.to_bits(), "{text}"),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_string_escapes() {
        assert_eq!(
            from_str(r#""a\"b\\c\ndA😀""#).unwrap(),
            Value::String("a\"b\\c\ndA😀".into())
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str("").is_err());
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"unterminated").is_err());
        assert!(from_str("-").is_err());
    }

    #[test]
    fn parse_nested_structures() {
        let v = from_str(r#"{"a":[{"b":[1,2.5,"x"]},null],"c":{}}"#).unwrap();
        let Value::Object(entries) = &v else {
            panic!("not an object")
        };
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, "a");
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"a":[{"b":[1,2.5,"x"]},null],"c":{}}"#
        );
    }
}
