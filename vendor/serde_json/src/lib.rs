//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text. Only the producer side is implemented —
//! nothing in the workspace parses JSON back.

#![forbid(unsafe_code)]

pub use serde::Value;
use serde::Serialize;

/// Serialization error (the stand-in serializer is infallible; the type
/// exists so call sites keep their `Result` plumbing).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json serialization error: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching upstream.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Renders `value` as compact JSON.
///
/// # Errors
///
/// Infallible in this stand-in; `Result` is kept for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Renders `value` as human-readable JSON (two-space indentation).
///
/// # Errors
///
/// Infallible in this stand-in; `Result` is kept for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => out.push_str(&render_f64(*f)),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => render_array(items, indent, depth, out),
        Value::Object(entries) => render_object(entries, indent, depth, out),
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn render_array(items: &[Value], indent: Option<usize>, depth: usize, out: &mut String) {
    out.push('[');
    if !items.is_empty() {
        for (i, item) in items.iter().enumerate() {
            newline_indent(indent, depth + 1, out);
            render(item, indent, depth + 1, out);
            if i + 1 < items.len() {
                out.push(',');
            }
        }
        newline_indent(indent, depth, out);
    }
    out.push(']');
}

fn render_object(
    entries: &[(String, Value)],
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
) {
    out.push('{');
    if !entries.is_empty() {
        for (i, (k, v)) in entries.iter().enumerate() {
            newline_indent(indent, depth + 1, out);
            render_string(k, out);
            out.push(':');
            if indent.is_some() {
                out.push(' ');
            }
            render(v, indent, depth + 1, out);
            if i + 1 < entries.len() {
                out.push(',');
            }
        }
        newline_indent(indent, depth, out);
    }
    out.push('}');
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render_f64(f: f64) -> String {
    if f.is_nan() {
        return "null".to_string();
    }
    if f.is_infinite() {
        return if f > 0.0 { "1e999" } else { "-1e999" }.to_string();
    }
    let s = format!("{f}");
    // Ensure floats keep a float shape ("1.0", not "1") like serde_json.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("name".into(), Value::String("tie".into())),
            ("n".into(), Value::UInt(3)),
            ("ratio".into(), Value::Float(0.5)),
            (
                "rows".into(),
                Value::Array(vec![Value::Int(-1), Value::Bool(true), Value::Null]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ])
    }

    #[test]
    fn compact_rendering() {
        assert_eq!(
            to_string(&sample()).unwrap(),
            r#"{"name":"tie","n":3,"ratio":0.5,"rows":[-1,true,null],"empty":[]}"#
        );
    }

    #[test]
    fn pretty_rendering_indents_two_spaces() {
        let s = to_string_pretty(&sample()).unwrap();
        assert!(s.starts_with("{\n  \"name\": \"tie\","));
        assert!(s.contains("\"rows\": [\n    -1,"));
        assert!(s.ends_with("\"empty\": []\n}"));
    }

    #[test]
    fn strings_are_escaped() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_keep_float_shape() {
        assert_eq!(to_string(&Value::Float(2.0)).unwrap(), "2.0");
        assert_eq!(to_string(&Value::Float(1.25e-9)).unwrap(), "0.00000000125");
        assert_eq!(to_string(&Value::Float(-3.5)).unwrap(), "-3.5");
    }
}
