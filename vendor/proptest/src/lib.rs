//! Offline stand-in for `proptest`, vendored because the build environment
//! has no registry access.
//!
//! Same programming model as upstream — [`Strategy`] values describe how to
//! sample inputs, the [`proptest!`] macro turns `fn f(x in strat)` items
//! into `#[test]` functions, and `prop_assert!`/`prop_assert_eq!` report
//! failures with the offending case index — but simplified where the
//! workspace does not need the full engine:
//!
//! - sampling is purely random from a **deterministic per-test seed** (the
//!   FNV-1a hash of the test name), so failures reproduce across runs;
//! - there is **no shrinking**: a failing case reports its index and seed
//!   instead of a minimized input.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;

/// Re-export so `$crate`-based macro expansions can seed the runner RNG.
pub use rand::SeedableRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::distributions::SampleUniform;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A recipe for sampling values of type `Self::Value`.
    ///
    /// Unlike upstream (value trees + shrinking), a stand-in strategy is
    /// just a sampling function over the runner's RNG.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps sampled values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Samples a value, builds a dependent strategy from it, and
        /// samples that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Boxes this strategy (API compatibility; rarely needed here).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn generate(&self, rng: &mut SmallRng) -> Self::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    /// Type-erased strategy, see [`Strategy::boxed`].
    pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<Value = T>>);

    trait ErasedStrategy {
        type Value;
        fn erased_generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<S: Strategy> ErasedStrategy for S {
        type Value = S::Value;
        fn erased_generate(&self, rng: &mut SmallRng) -> S::Value {
            self.generate(rng)
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            self.0.erased_generate(rng)
        }
    }

    impl<T> Strategy for std::ops::Range<T>
    where
        T: SampleUniform + Copy + PartialOrd,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    impl<T> Strategy for std::ops::RangeInclusive<T>
    where
        T: SampleUniform + Copy + PartialOrd,
    {
        type Value = T;

        fn generate(&self, rng: &mut SmallRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_strategy_tuple!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    );
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Length specification for [`vec`]: an exact length or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.min == self.size.max {
                self.size.min
            } else {
                rng.gen_range(self.size.min..=self.size.max)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test configuration and failure plumbing used by the macros.

    /// Per-block configuration (only `cases` is honoured).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed `prop_assert!`-style check inside a test case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

/// Deterministic per-test seed: FNV-1a over the test name, so each test
/// draws an independent but reproducible stream.
#[must_use]
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs `body` for `cases` random cases; panics with the case index and
/// seed on the first failure. Called from [`proptest!`] expansions.
pub fn run_cases<F>(test_name: &str, cases: u32, mut body: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), test_runner::TestCaseError>,
{
    let seed = seed_for(test_name);
    let mut rng = <SmallRng as rand::SeedableRng>::seed_from_u64(seed);
    for case in 0..cases {
        if let Err(e) = body(&mut rng) {
            panic!("proptest `{test_name}` failed at case {case}/{cases} (seed {seed:#x}): {e}");
        }
    }
}

/// Turns `fn name(arg in strategy, ...) { body }` items into `#[test]`
/// functions that sample each strategy `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($config); $($rest)*);
    };
    (@fns ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            $crate::run_cases(stringify!($name), config.cases, |prop_rng| {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), prop_rng);
                )+
                $body
                Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @fns ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Like `assert!`, but fails only the current case (with context) rather
/// than aborting without the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Like `assert_ne!`, reporting both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(7);
        for _ in 0..200 {
            let v = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&v));
            let f = (-1.5f64..2.5).generate(&mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_honours_exact_and_ranged_lengths() {
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(8);
        let exact = collection::vec(0u64..10, 5).generate(&mut rng);
        assert_eq!(exact.len(), 5);
        for _ in 0..50 {
            let ranged = collection::vec(0u64..10, 1..4).generate(&mut rng);
            assert!((1..=3).contains(&ranged.len()));
        }
    }

    #[test]
    fn flat_map_builds_dependent_shapes() {
        let strat = (1usize..=3)
            .prop_flat_map(|d| collection::vec(0u32..5, d))
            .prop_map(|v| v.len());
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(9);
        for _ in 0..50 {
            let len = strat.generate(&mut rng);
            assert!((1..=3).contains(&len));
        }
    }

    #[test]
    fn seeds_are_deterministic_and_name_dependent() {
        assert_eq!(seed_a(), seed_a());
        assert_ne!(crate::seed_for("a"), crate::seed_for("b"));
    }

    fn seed_a() -> u64 {
        crate::seed_for("a")
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(x in 0u64..100, ys in collection::vec(1usize..=3, 2..=4)) {
            prop_assert!(x < 100);
            prop_assert!((2..=4).contains(&ys.len()));
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
