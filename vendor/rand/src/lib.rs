//! Offline stand-in for the `rand` crate.
//!
//! The tie-rs build environment has no access to a crates.io registry, so
//! the workspace vendors a minimal, std-only implementation of the exact
//! `rand 0.8` API surface it uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * `gen_range` over integer and float ranges (half-open and inclusive),
//! * `gen_bool`, `gen`, `fill`,
//! * [`seq::index::sample`] (partial Fisher–Yates without replacement),
//! * [`rngs::SmallRng`] and [`thread_rng`] conveniences.
//!
//! Numerical streams are deterministic per seed but are **not** guaranteed
//! to be bit-identical to upstream `rand`; every consumer in this workspace
//! seeds explicitly and asserts mathematical properties, never golden
//! random values. `SeedableRng::seed_from_u64` uses the same PCG32-based
//! byte expansion as `rand_core 0.6` so seed handling is structurally
//! faithful.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level random number generation: sources of raw random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)`. Caller guarantees `low < high`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`. Caller guarantees `low <= high`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                // Multiply-shift rejection-free mapping (Lemire); the tiny
                // modulo bias (< 2^-64 * span) is irrelevant for testing.
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                if high == <$t>::MAX && low == <$t>::MIN {
                    return rng.next_u64() as $t;
                }
                let span = (high as $wide).wrapping_sub(low as $wide) as u64 + 1;
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((low as $wide).wrapping_add(v as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                // 53 (resp. 24) mantissa bits of uniformity in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = low as f64 + unit * (high as f64 - low as f64);
                // Guard against rounding up to `high` exactly.
                if v as $t >= high { low } else { v as $t }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
                (low as f64 + unit * (high as f64 - low as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

pub mod distributions {
    //! Upstream-path re-exports (`rand::distributions::uniform::…`).

    pub use crate::SampleUniform;

    pub mod uniform {
        //! Uniform-distribution traits.

        pub use crate::SampleUniform;
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Values producible by [`Rng::gen`].
pub trait Standard {
    /// Draws one value from the "standard" distribution of the type.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        f64::standard_sample(self) < p
    }

    /// A value from the type's standard distribution (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Fills a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 scheme used by
    /// `rand_core 0.6`, then calls [`SeedableRng::from_seed`].
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&word.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sequence-related helpers.
pub mod seq {
    /// Index sampling without replacement.
    pub mod index {
        use crate::{Rng, RngCore};

        /// The sampled index set (mirrors `rand::seq::index::IndexVec`).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }
            /// True when no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
            /// Iterates the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        /// Samples `amount` distinct indices from `0..length` (partial
        /// Fisher–Yates).
        ///
        /// # Panics
        ///
        /// Panics if `amount > length` (same contract as upstream).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "sample: amount {amount} > length {length}"
            );
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

/// Bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn next(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

/// A process-global convenience generator (seeded from the system clock —
/// use an explicit [`SeedableRng`] seed for reproducible experiments).
pub fn thread_rng() -> rngs::SmallRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    <rngs::SmallRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::SmallRng;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn sample_is_distinct_and_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        let picked = seq::index::sample(&mut rng, 50, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "indices must be distinct");
        assert!(picked.iter().all(|&i| i < 50));
    }

    #[test]
    fn float_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
