//! Offline stand-in for `serde`, vendored because the build environment has
//! no registry access.
//!
//! Upstream serde separates the data model (`Serializer` visitors) from the
//! format; this workspace only ever serializes plain structs to JSON via
//! `serde_json::to_string_pretty`, so the stand-in collapses the data model
//! to a single [`Value`] tree: [`Serialize`] renders a value into a
//! [`Value`], and the vendored `serde_json` renders `Value` as text.
//!
//! The `derive` feature forwards to the vendored `serde_derive` proc-macro,
//! which handles structs with named fields (the only shape used here).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

/// A JSON-shaped value tree — the universal serialization target.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (rendered without a decimal point).
    Int(i64),
    /// Unsigned integer (rendered without a decimal point).
    UInt(u64),
    /// Floating-point number (shortest round-trip rendering).
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an [`Value::Object`] (`None` for other variants
    /// or a missing key).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric content as `f64` (accepts `Int`/`UInt`/`Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The numeric content as `u64` (accepts non-negative `Int`/`UInt`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(i) => u64::try_from(*i).ok(),
            Value::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The string content of a [`Value::String`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The items of a [`Value::Array`].
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }
}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    )+};
}

impl_serialize_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3u32.to_value(), Value::UInt(3));
        assert_eq!((-3i64).to_value(), Value::Int(-3));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::String("x".into()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn containers_nest() {
        let v = vec![vec![1u8], vec![2, 3]];
        assert_eq!(
            v.to_value(),
            Value::Array(vec![
                Value::Array(vec![Value::UInt(1)]),
                Value::Array(vec![Value::UInt(2), Value::UInt(3)]),
            ])
        );
        assert_eq!(
            (1u8, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::String("a".into())])
        );
    }
}
