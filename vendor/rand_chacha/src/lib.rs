//! Offline stand-in for `rand_chacha`: a genuine ChaCha block function
//! driving [`rand::RngCore`], vendored because the build environment has no
//! registry access.
//!
//! The keystream is real ChaCha (8/12/20 rounds, RFC 7539 constants, 64-bit
//! block counter starting at zero, zero nonce) over the 32-byte seed as the
//! key. Word order within a block follows the natural state order, which is
//! deterministic per seed but not promised to be bit-identical to upstream
//! `rand_chacha`'s SIMD-interleaved stream; all tie-rs consumers rely only
//! on determinism.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha-based RNG with `R` double-rounds, generic over the round count.
#[derive(Debug, Clone)]
pub struct ChaChaRng<const DOUBLE_ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    index: usize,
}

impl<const DOUBLE_ROUNDS: usize> ChaChaRng<DOUBLE_ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // nonce words stay zero
        let input = state;
        for _ in 0..DOUBLE_ROUNDS {
            // column round
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // diagonal round
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }
}

impl<const DOUBLE_ROUNDS: usize> RngCore for ChaChaRng<DOUBLE_ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl<const DOUBLE_ROUNDS: usize> SeedableRng for ChaChaRng<DOUBLE_ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

/// ChaCha with 8 rounds (4 double-rounds) — the workspace's default RNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let va: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn chacha20_zero_key_first_block_matches_rfc7539_structure() {
        // With an all-zero key/nonce the first ChaCha20 keystream word is the
        // well-known 0xade0b876 (RFC 7539 §2.3 test vector, counter 0).
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        assert_eq!(rng.next_u32(), 0xade0_b876);
    }

    #[test]
    fn streams_span_blocks_without_repeating() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        // Four blocks of 16 words: consecutive blocks must differ.
        assert_ne!(&first[0..16], &first[16..32]);
        assert_ne!(&first[16..32], &first[32..48]);
    }

    #[test]
    fn usable_through_rand_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = rng.gen_range(0.0f64..1.0);
        assert!((0.0..1.0).contains(&v));
        let n = rng.gen_range(1usize..=6);
        assert!((1..=6).contains(&n));
    }
}
