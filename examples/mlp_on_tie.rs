//! A whole TT network resident on the accelerator: train a two-TT-layer
//! MLP classifier, load **both** layers into the 16 KB weight SRAM at
//! once (the paper's "sufficient for most TT-DNN models" claim), and
//! classify on the TIE model with on-chip ReLU between layers.
//!
//! ```sh
//! cargo run --release --example mlp_on_tie
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::nn::data::gaussian_blobs;
use tie::nn::{accuracy, softmax_cross_entropy, Layer, Relu, Sgd, Trainable, TtDense};
use tie::prelude::*;

fn main() -> Result<(), tie::TensorError> {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    // 256-d inputs, 4 classes; both layers TT (the head maps 256 -> 4
    // via row modes 2*2*1*1 = 4). Biases stay zero so the float model
    // equals the bias-free TT matrices the accelerator executes.
    let hidden_shape = TtShape::uniform_rank(vec![4; 4], vec![4; 4], 4)?;
    let head_shape = TtShape::uniform_rank(vec![2, 2, 1, 1], vec![4; 4], 2)?;
    let data = gaussian_blobs(&mut rng, 4, 256, 60, 0.6);
    let (train_set, test_set) = data.split(0.7);

    let mut l1 = TtDense::new(&mut rng, &hidden_shape);
    let mut l2 = TtDense::new(&mut rng, &head_shape);
    let mut relu = Relu::new();
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    for _ in 0..120 {
        let h = l1.forward(&train_set.features)?;
        let a = relu.forward(&h)?;
        let logits = l2.forward(&a)?;
        let loss = softmax_cross_entropy(&logits, &train_set.labels)?;
        l1.zero_grads();
        l2.zero_grads();
        let g = l2.backward(&loss.grad)?;
        let g = relu.backward(&g)?;
        l1.backward(&g)?;
        // Keep biases at zero: the accelerator deploys the TT matrices
        // alone, so train the function the hardware will execute.
        zero_bias_grad(&mut l1, hidden_shape.num_rows());
        zero_bias_grad(&mut l2, head_shape.num_rows());
        opt.step(&mut l1);
        opt.step(&mut l2);
    }
    let h = l1.forward(&test_set.features)?;
    let a = relu.forward(&h)?;
    let float_acc = accuracy(&l2.forward(&a)?, &test_set.labels);
    println!("== two-TT-layer MLP on TIE ==");
    println!(
        "float test accuracy after training: {:.1}%",
        float_acc * 100.0
    );

    // Deploy both trained layers onto the accelerator at once.
    let m1: TtMatrix<f64> = l1.to_tt_matrix()?.cast();
    let m2: TtMatrix<f64> = l2.to_tt_matrix()?.cast();
    let mut tie = TieAccelerator::new(TieConfig::default())?;
    let network = tie.load_network(vec![m1, m2])?;
    println!(
        "weight SRAM residency: {} TT params of 8192 capacity, 2 layers",
        network.total_params()
    );

    // Classify the test set on "hardware".
    let dim = 256;
    let mut correct = 0usize;
    let mut total_cycles = 0u64;
    for i in 0..test_set.len() {
        let x = Tensor::<f64>::from_vec(
            vec![dim],
            test_set.features.row(i).iter().map(|&v| v as f64).collect(),
        )?;
        let (logits, stats) = tie.run_network(&network, &x, true)?;
        total_cycles += stats.iter().map(|s| s.cycles()).sum::<u64>();
        let (argmax, _) = logits.argmax();
        if argmax == test_set.labels[i] {
            correct += 1;
        }
    }
    let hw_acc = correct as f64 / test_set.len() as f64;
    println!(
        "TIE test accuracy (16-bit datapath, on-chip ReLU): {:.1}%",
        hw_acc * 100.0
    );
    println!(
        "mean cycles per classification: {} ({:.2} us @ 1 GHz)",
        total_cycles / test_set.len() as u64,
        total_cycles as f64 / test_set.len() as f64 / 1000.0
    );
    Ok(())
}

/// Zeroes the bias gradient (the last visited parameter of a `TtDense`)
/// so SGD leaves the bias untouched.
fn zero_bias_grad(layer: &mut TtDense, out_features: usize) {
    let mut params = 0usize;
    layer.visit_params(&mut |_, _| params += 1);
    let mut idx = 0usize;
    layer.visit_params(&mut |p, g| {
        idx += 1;
        if idx == params {
            debug_assert_eq!(p.num_elements(), out_features);
            g.map_inplace(|_| 0.0);
        }
    });
}
