//! Explore the rank knob (the paper's Fig. 13 flexibility argument):
//! for one workload, sweep the TT rank and report compression,
//! reconstruction error on a real decomposed matrix, compact-scheme
//! multiply counts, and TIE cycle counts.
//!
//! ```sh
//! cargo run --release --example rank_explorer
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::counts;
use tie::prelude::*;
use tie::tensor::init;

fn main() -> Result<(), tie::TensorError> {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    // A 64x64 layer with an approximately low-rank structure: sum of a
    // few Kronecker products plus noise — the regime TT thrives in.
    let base = TtMatrix::<f64>::random(
        &mut rng,
        &TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 3)?,
        0.7,
    )?
    .to_dense()?;
    let noise: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 0.02);
    let w = base.add(&noise)?;
    let x: Tensor<f64> = init::uniform(&mut rng, vec![64], 1.0);
    let y_ref = tie::tensor::linalg::matvec(&w, &x)?;

    println!("== rank explorer: 64x64 layer, modes (4,4,4) x (4,4,4) ==\n");
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "r", "params", "compression", "recon err", "output err", "TIE cycles"
    );
    for rank in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        let ttm = TtMatrix::from_dense(&w, &[4, 4, 4], &[4, 4, 4], Truncation::rank(rank))?;
        let recon_err = ttm.to_dense()?.relative_error(&w)?;
        let engine = CompactEngine::new(ttm.clone())?;
        let (y, _) = engine.matvec(&x)?;
        let out_err = y.relative_error(&y_ref)?;
        let mut tie = TieAccelerator::new(TieConfig::default())?;
        let layer = tie.load_layer(ttm)?;
        let (_, stats) = tie.run(&layer, &x, false)?;
        println!(
            "{:>4} {:>10} {:>11.1}x {:>14.3e} {:>14.3e} {:>12}",
            rank,
            layer.shape().num_params(),
            layer.shape().compression_ratio(),
            recon_err,
            out_err,
            stats.cycles()
        );
    }
    println!(
        "\nanalytic multiply counts at the extremes: r=1 -> {}, r=16 -> {} (dense: {})",
        counts::mul_compact(&TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 1)?),
        counts::mul_compact(&TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 16)?),
        64 * 64
    );
    println!(
        "the error knee sits at the generating rank (r=3): beyond it, extra rank buys\n\
         only noise — the compression/accuracy trade the paper's Fig. 13 sweeps."
    );
    Ok(())
}
