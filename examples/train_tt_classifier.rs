//! Train a TT-compressed MLP classifier from scratch (the §2.2
//! "train-from-scratch" strategy) and compare against its dense twin —
//! the Table 1-style accuracy-preservation experiment at laptop scale.
//!
//! ```sh
//! cargo run --release --example train_tt_classifier
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::nn::data::gaussian_blobs;
use tie::nn::{
    accuracy, softmax_cross_entropy, Dense, Layer, Relu, Sequential, Sgd, Trainable, TtDense,
};
use tie::prelude::*;

fn train(
    net: &mut Sequential,
    x: &Tensor<f32>,
    labels: &[usize],
    epochs: usize,
) -> Result<f64, tie::TensorError> {
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    let mut last = f64::NAN;
    for _ in 0..epochs {
        let logits = net.forward(x)?;
        let loss = softmax_cross_entropy(&logits, labels)?;
        last = loss.loss;
        net.zero_grads();
        net.backward(&loss.grad)?;
        opt.step(net);
    }
    Ok(last)
}

fn main() -> Result<(), tie::TensorError> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let data = gaussian_blobs(&mut rng, 4, 256, 50, 0.6);
    let (train_set, test_set) = data.split(0.7);
    println!(
        "== dense vs TT classifier on 4-class, 256-d Gaussian clusters ==\n\
         train {} / test {}\n",
        train_set.len(),
        test_set.len()
    );

    // Dense: 256 -> 256 -> 4.
    let mut dense = Sequential::new();
    dense.push(Dense::new(&mut rng, 256, 256));
    dense.push(Relu::new());
    dense.push(Dense::new(&mut rng, 256, 4));
    let dense_loss = train(&mut dense, &train_set.features, &train_set.labels, 100)?;
    let dense_acc = accuracy(&dense.forward(&test_set.features)?, &test_set.labels);

    // TT twin: the 256x256 layer in TT format, (4*4*4*4) x (4*4*4*4), r=4.
    let shape = TtShape::uniform_rank(vec![4; 4], vec![4; 4], 4)?;
    let mut tt = Sequential::new();
    let tt_layer = TtDense::new(&mut rng, &shape);
    let stored = tt_layer.stored_params();
    tt.push(tt_layer);
    tt.push(Relu::new());
    tt.push(Dense::new(&mut rng, 256, 4));
    let tt_loss = train(&mut tt, &train_set.features, &train_set.labels, 100)?;
    let tt_acc = accuracy(&tt.forward(&test_set.features)?, &test_set.labels);

    println!(
        "{:<12} {:>12} {:>12} {:>16}",
        "model", "final loss", "test acc", "hidden params"
    );
    println!(
        "{:<12} {:>12.4} {:>11.1}% {:>16}",
        "dense",
        dense_loss,
        dense_acc * 100.0,
        256 * 256 + 256
    );
    println!(
        "{:<12} {:>12.4} {:>11.1}% {:>16}",
        "TT (r=4)",
        tt_loss,
        tt_acc * 100.0,
        stored
    );
    println!(
        "\nTT stores {:.0}x fewer parameters in the hidden layer at matched accuracy —\n\
         the Table 1 phenomenon at reproducible scale.",
        (256.0 * 256.0) / shape.num_params() as f64
    );
    Ok(())
}
