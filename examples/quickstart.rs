//! Quickstart: decompose a layer into tensor-train format, run the
//! paper's compact inference scheme, and execute the same layer on the
//! cycle-accurate TIE accelerator model.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::core::counts;
use tie::prelude::*;
use tie::tensor::{init, linalg};
use tie::tt::inference::naive_matvec;

fn main() -> Result<(), tie::TensorError> {
    println!("== TIE quickstart ==\n");
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // A 64x64 fully-connected layer with (approximately) low TT rank —
    // the structure trained TT layers have — factorized (4*4*4) x (4*4*4).
    let generator = TtMatrix::<f64>::random(
        &mut rng,
        &TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 6)?,
        0.6,
    )?;
    let noise: Tensor<f64> = init::uniform(&mut rng, vec![64, 64], 1e-3);
    let w = generator.to_dense()?.add(&noise)?;
    let x: Tensor<f64> = init::uniform(&mut rng, vec![64], 1.0);
    let y_dense = linalg::matvec(&w, &x)?;

    // --- TT decomposition -------------------------------------------------
    let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 8)?;
    let ttm = TtMatrix::from_dense(&w, &shape.row_modes, &shape.col_modes, Truncation::rank(8))?;
    println!(
        "TT decomposition: {} dense params -> {} TT params ({:.1}x compression)",
        64 * 64,
        ttm.num_params(),
        (64.0 * 64.0) / ttm.num_params() as f64
    );
    let reconstruction_err = ttm.to_dense()?.relative_error(&w)?;
    println!("reconstruction error at rank 8: {reconstruction_err:.3e}\n");

    // --- the compact inference scheme (the paper's contribution) ----------
    let engine = CompactEngine::new(ttm.clone())?;
    let (y_compact, ops) = engine.matvec(&x)?;
    let (y_naive, naive_ops) = naive_matvec(&ttm, &x)?;
    println!("compact scheme multiplications: {}", ops.mults);
    println!("naive Eqn.(2) multiplications:  {}", naive_ops.mults);
    println!(
        "redundancy eliminated: {:.1}x fewer multiplies (analytic: {:.1}x)",
        naive_ops.mults as f64 / ops.mults as f64,
        counts::redundancy_ratio(ttm.shape())
    );
    println!(
        "compact == naive: {}\n",
        y_compact.approx_eq(&y_naive, 1e-9)
    );
    let err = y_compact.relative_error(&y_dense)?;
    println!("output vs dense layer (rank-8 truncation): rel err {err:.3e}\n");

    // --- the TIE accelerator ----------------------------------------------
    let mut tie = TieAccelerator::new(TieConfig::default())?;
    let layer = tie.load_layer(ttm)?;
    let (y_hw, stats) = tie.run(&layer, &x, false)?;
    println!("TIE (16 PEs x 16 MACs @ 1 GHz, 16-bit fixed point):");
    println!("  cycles:        {}", stats.cycles());
    println!(
        "  latency:       {:.3} us",
        stats.latency_seconds(1000.0) * 1e6
    );
    println!("  MACs:          {} (== compact multiplies)", stats.macs());
    println!("  utilization:   {:.0}%", stats.utilization(16, 16) * 100.0);
    println!(
        "  weight reads:  {} words; working SRAM: {} reads / {} writes",
        stats.weight_word_reads(),
        stats.act_reads(),
        stats.act_writes()
    );
    let hw_err = y_hw.relative_error(&y_compact)?;
    println!("  fixed-point output vs float reference: rel err {hw_err:.3e}");
    Ok(())
}
