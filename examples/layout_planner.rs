//! Automatic TT-layout planning: the paper hand-picks its (d, m, n)
//! factorizations; this demo searches balanced candidates for a layer,
//! checks them against the prototype's SRAM budgets, and validates the
//! planner's latency proxy against the cycle-accurate simulator.
//!
//! ```sh
//! cargo run --release --example layout_planner
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::prelude::*;
use tie::workloads::factorize::{fits_budget, propose_layouts};

fn main() -> Result<(), tie::TensorError> {
    let cfg = TieConfig::default();
    let (rows, cols, d, rank) = (4096usize, 4096usize, 6usize, 4usize);
    println!("== TT layout planner: {rows}x{cols} layer, d={d}, r={rank} ==\n");
    let proposals = propose_layouts(rows, cols, d, rank, 6)?;
    println!(
        "{:<26} {:<26} {:>8} {:>12} {:>10} {:>10} {:>8}",
        "m (rows)", "n (cols)", "params", "compression", "muls", "sim cyc", "fits?"
    );
    for p in &proposals {
        let fits = fits_budget(
            p,
            cfg.weight_capacity_elems(),
            cfg.working_capacity_elems(),
            cfg.n_mac,
        );
        // Validate the multiply-count proxy on the real simulator.
        let sim_cycles = if fits {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            let ttm = TtMatrix::<f64>::random(&mut rng, &p.shape, 0.5)?;
            let mut tie = TieAccelerator::new(cfg)?;
            let layer = tie.load_layer(ttm)?;
            let x = Tensor::<f64>::filled(vec![cols], 0.01)?;
            let (_, stats) = tie.run(&layer, &x, false)?;
            stats.cycles().to_string()
        } else {
            "-".to_string()
        };
        println!(
            "{:<26} {:<26} {:>8} {:>11.0}x {:>10} {:>10} {:>8}",
            format!("{:?}", p.shape.row_modes),
            format!("{:?}", p.shape.col_modes),
            p.params,
            p.compression,
            p.muls,
            sim_cycles,
            if fits { "yes" } else { "no" }
        );
    }
    let paper = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4)?;
    println!(
        "\npaper's hand-picked FC7 layout: m=n=[4;6], {} muls. The planner finds cheaper\n\
         layouts by coarsening modes (8s and unit modes shrink the effective d) — a pure\n\
         compute/compression view; coarser modes at fixed rank lose expressiveness, which\n\
         is why the paper trains with fine all-4 modes. The planner maps that frontier.",
        tie::core::counts::mul_compact(&paper)
    );
    Ok(())
}
