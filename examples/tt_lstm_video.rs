//! TT-LSTM video-style classification (the paper's Table 3/4 RNN
//! workload family): train a TT-LSTM whose input-to-hidden matrix is
//! TT-compressed, then execute the trained projection on the TIE
//! accelerator model.
//!
//! ```sh
//! cargo run --release --example tt_lstm_video
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::nn::data::noisy_sequences;
use tie::nn::rnn::{InputProjection, LstmCell, SequenceClassifier};
use tie::nn::{accuracy, softmax_cross_entropy, Sgd, Trainable};
use tie::prelude::*;

fn main() -> Result<(), tie::TensorError> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    // "Video": 5 frames of 960-d features, 3 classes.
    let (classes, t_len, dim, hidden) = (3usize, 5usize, 960usize, 8usize);
    let all = noisy_sequences(&mut rng, classes, t_len, 16, dim, 1.0);
    let (train, test) = all.split(0.5);

    // TT input-to-hidden: 960 -> 4H=32, modes (2*4*4) x (8*10*12), r=4.
    let shape = TtShape::uniform_rank(vec![2, 4, 4], vec![8, 10, 12], 4)?;
    let dense_params = dim * 4 * hidden;
    println!("== TT-LSTM video classifier ==");
    println!(
        "input-to-hidden: {} dense params -> {} TT params ({:.0}x compression)\n",
        dense_params,
        shape.num_params(),
        dense_params as f64 / shape.num_params() as f64
    );

    let cell = LstmCell::tt(&mut rng, &shape, hidden)?;
    let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
    let mut opt = Sgd::with_momentum(0.05, 0.9);
    for epoch in 0..40 {
        let logits = clf.forward(&train.sequences)?;
        let loss = softmax_cross_entropy(&logits, &train.labels)?;
        clf.zero_grads();
        clf.backward(&loss.grad)?;
        opt.step(&mut clf);
        if epoch % 10 == 0 || epoch == 39 {
            let train_acc = accuracy(&logits, &train.labels);
            let test_logits = clf.forward(&test.sequences)?;
            let test_acc = accuracy(&test_logits, &test.labels);
            println!(
                "epoch {epoch:>3}: loss {:.4}, train acc {:.0}%, test acc {:.0}%",
                loss.loss,
                train_acc * 100.0,
                test_acc * 100.0
            );
        }
    }

    // Deploy the trained input-to-hidden projection on TIE.
    let InputProjection::Tt { cores, .. } = clf.cell().input_projection() else {
        unreachable!("cell was built with a TT projection");
    };
    let cores64: Vec<Tensor<f64>> = cores.iter().map(Tensor::cast).collect();
    let ttm = TtMatrix::new(cores64)?;
    let mut tie = TieAccelerator::new(TieConfig::default())?;
    let layer = tie.load_layer(ttm)?;
    // One frame through the accelerator.
    let frame = Tensor::<f64>::from_vec(
        vec![dim],
        test.sequences.data()[..dim]
            .iter()
            .map(|&v| v as f64)
            .collect(),
    )?;
    let (gates, stats) = tie.run(&layer, &frame, false)?;
    let (gates_ref, _) = layer.reference().matvec(&frame)?;
    println!(
        "\nTIE executes the trained input projection in {} cycles ({:.2} us @ 1 GHz)",
        stats.cycles(),
        stats.latency_seconds(1000.0) * 1e6
    );
    println!(
        "fixed-point gate pre-activations vs float: rel err {:.2e}",
        gates.relative_error(&gates_ref)?
    );
    Ok(())
}
