//! Run the paper's VGG-16 FC workloads (Table 4) through the
//! cycle-accurate TIE accelerator and print the Table-8/Fig-12 style
//! metrics: latency, dense-equivalent TOPS, utilization, memory traffic
//! and modeled power.
//!
//! ```sh
//! cargo run --release --example vgg_fc_accelerator
//! ```

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use tie::prelude::*;
use tie::tensor::init;
use tie::workloads::table4_benchmarks;

fn main() -> Result<(), tie::TensorError> {
    let cfg = TieConfig::default();
    let model = TieAreaPowerModel::paper_prototype();
    println!("== TIE accelerator on the Table 4 benchmarks ==");
    println!(
        "configuration: {} PEs x {} MACs @ {} MHz, {} KB weight + 2 x {} KB working SRAM\n",
        cfg.n_pe,
        cfg.n_mac,
        cfg.freq_mhz,
        cfg.weight_sram_bytes / 1024,
        cfg.working_sram_bytes / 1024
    );
    println!(
        "{:<14} {:>10} {:>12} {:>10} {:>11} {:>12} {:>10}",
        "workload", "cycles", "latency", "eq. TOPS", "utilization", "power (mW)", "TOPS/W"
    );
    for (i, b) in table4_benchmarks().iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(40 + i as u64);
        let ttm = TtMatrix::<f64>::random(&mut rng, &b.shape, 0.5)?;
        let mut tie = TieAccelerator::new(cfg)?;
        let layer = tie.load_layer(ttm)?;
        let x: Tensor<f64> = init::uniform(&mut rng, vec![b.shape.num_cols()], 1.0);
        let (_, stats) = tie.run(&layer, &x, true)?;
        let latency = stats.latency_seconds(cfg.freq_mhz);
        let tops =
            stats.equivalent_ops_per_sec(layer.plan().dense_equivalent_ops(), cfg.freq_mhz) / 1e12;
        let util = stats.utilization(cfg.n_pe, cfg.n_mac);
        let power = model.power_at_utilization(util).total();
        println!(
            "{:<14} {:>10} {:>9.2} us {:>10.2} {:>10.0}% {:>12.1} {:>10.1}",
            b.name,
            stats.cycles(),
            latency * 1e6,
            tops,
            util * 100.0,
            power,
            tops / (power / 1e3)
        );
    }
    println!(
        "\n(the paper's Table 8 quotes 7.64 TOPS / 72.9 TOPS/W across these workloads;\n\
         equivalent TOPS counts the dense 2*M*N ops the layer replaces)"
    );
    Ok(())
}
