use crate::layer::{Layer, Trainable};
use tie_tensor::linalg::{matmul, matmul_nt, matmul_tn};
use tie_tensor::{Result, Tensor, TensorError};

use rand::Rng;

/// A standard fully-connected layer `y = x Wᵀ + b`.
///
/// Weights are `[out_features, in_features]` (row per output neuron, the
/// paper's `W ∈ R^{M×N}` orientation); inputs are batch-major
/// `[batch, in_features]`.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Tensor<f32>,
    b: Tensor<f32>,
    grad_w: Tensor<f32>,
    grad_b: Tensor<f32>,
    cached_input: Option<Tensor<f32>>,
}

impl Dense {
    /// Glorot-initialized layer.
    pub fn new<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        Dense {
            w: tie_tensor::init::glorot_uniform(rng, out_features, in_features),
            b: Tensor::zeros(vec![out_features]),
            grad_w: Tensor::zeros(vec![out_features, in_features]),
            grad_b: Tensor::zeros(vec![out_features]),
            cached_input: None,
        }
    }

    /// Layer with explicit weights (tests, conversions).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `b` does not match `w`'s
    /// row count or `w` is not 2-D.
    pub fn from_weights(w: Tensor<f32>, b: Tensor<f32>) -> Result<Self> {
        let out = w.nrows()?;
        if b.ndim() != 1 || b.num_elements() != out {
            return Err(TensorError::ShapeMismatch {
                left: w.dims().to_vec(),
                right: b.dims().to_vec(),
            });
        }
        let (gw, gb) = (
            Tensor::zeros(w.dims().to_vec()),
            Tensor::zeros(b.dims().to_vec()),
        );
        Ok(Dense {
            w,
            b,
            grad_w: gw,
            grad_b: gb,
            cached_input: None,
        })
    }

    /// The weight matrix `[out, in]`.
    pub fn weights(&self) -> &Tensor<f32> {
        &self.w
    }

    /// The bias vector `[out]`.
    pub fn bias(&self) -> &Tensor<f32> {
        &self.b
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.w.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.w.dims()[0]
    }
}

impl Trainable for Dense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if x.ndim() != 2 || x.dims()[1] != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![0, self.in_features()],
            });
        }
        // y[b, o] = Σ_i x[b, i] w[o, i] + b[o]  ==  x · Wᵀ
        let mut y = matmul_nt(x, &self.w)?;
        let (bsz, out) = (y.nrows()?, y.ncols()?);
        for r in 0..bsz {
            for c in 0..out {
                y.data_mut()[r * out + c] += self.b.data()[c];
            }
        }
        self.cached_input = Some(x.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or(TensorError::InvalidArgument {
                message: "backward called before forward".into(),
            })?;
        if grad_out.ndim() != 2 || grad_out.dims()[1] != self.out_features() {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![x.dims()[0], self.out_features()],
            });
        }
        // dW = gradᵀ · x ;  db = Σ_batch grad ;  dx = grad · W
        let dw = matmul_tn(grad_out, x)?;
        self.grad_w.axpy(1.0, &dw)?;
        let (bsz, out) = (grad_out.nrows()?, grad_out.ncols()?);
        for r in 0..bsz {
            for c in 0..out {
                self.grad_b.data_mut()[c] += grad_out.data()[r * out + c];
            }
        }
        matmul(grad_out, &self.w)
    }

    fn describe(&self) -> String {
        format!("dense {}->{}", self.in_features(), self.out_features())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    /// Central-difference gradient check utility shared by layer tests.
    pub(crate) fn check_input_gradient<L: Layer>(layer: &mut L, x: &Tensor<f32>, tol: f64) {
        let y = layer.forward(x).unwrap();
        // Loss = 0.5 Σ y², so dL/dy = y.
        let gx = layer.backward(&y).unwrap();
        let eps = 1e-3f32;
        for i in (0..x.num_elements()).step_by(1 + x.num_elements() / 17) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f64 = layer
                .forward(&xp)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let lm: f64 = layer
                .forward(&xm)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = gx.data()[i] as f64;
            assert!(
                (numeric - analytic).abs() <= tol * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn forward_matches_hand_computation() {
        let w = Tensor::<f32>::from_vec(vec![2, 3], vec![1., 0., -1., 2., 1., 0.]).unwrap();
        let b = Tensor::<f32>::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let mut layer = Dense::from_weights(w, b).unwrap();
        let x = Tensor::<f32>::from_vec(vec![1, 3], vec![1., 2., 3.]).unwrap();
        let y = layer.forward(&x).unwrap();
        assert_eq!(y.data(), &[1. - 3. + 0.5, 2. + 2. - 0.5]);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(90);
        let mut layer = Dense::new(&mut rng, 5, 4);
        let x: Tensor<f32> = init::uniform(&mut rng, vec![3, 5], 1.0);
        check_input_gradient(&mut layer, &x, 1e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(91);
        let mut layer = Dense::new(&mut rng, 4, 3);
        let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 4], 1.0);
        let y = layer.forward(&x).unwrap();
        layer.zero_grads();
        layer.backward(&y).unwrap();
        let analytic_gw = layer.grad_w.clone();
        let eps = 1e-3f32;
        for i in 0..analytic_gw.num_elements() {
            let orig = layer.w.data()[i];
            layer.w.data_mut()[i] = orig + eps;
            let lp: f64 = layer
                .forward(&x)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            layer.w.data_mut()[i] = orig - eps;
            let lm: f64 = layer
                .forward(&x)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            layer.w.data_mut()[i] = orig;
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = analytic_gw.data()[i] as f64;
            assert!(
                (numeric - analytic).abs() <= 1e-2 * (1.0 + numeric.abs()),
                "weight grad mismatch at {i}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn bias_gradient_sums_over_batch() {
        let mut rng = ChaCha8Rng::seed_from_u64(92);
        let mut layer = Dense::new(&mut rng, 3, 2);
        let x: Tensor<f32> = init::uniform(&mut rng, vec![4, 3], 1.0);
        layer.forward(&x).unwrap();
        let gout = Tensor::<f32>::filled(vec![4, 2], 1.0).unwrap();
        layer.backward(&gout).unwrap();
        assert!(layer.grad_b.data().iter().all(|&v| (v - 4.0).abs() < 1e-6));
    }

    #[test]
    fn shape_errors_are_reported() {
        let mut rng = ChaCha8Rng::seed_from_u64(93);
        let mut layer = Dense::new(&mut rng, 3, 2);
        assert!(layer.forward(&Tensor::<f32>::zeros(vec![2, 4])).is_err());
        assert!(layer.backward(&Tensor::<f32>::zeros(vec![2, 2])).is_err());
        layer.forward(&Tensor::<f32>::zeros(vec![2, 3])).unwrap();
        assert!(layer.backward(&Tensor::<f32>::zeros(vec![2, 3])).is_err());
    }

    #[test]
    fn from_weights_validates_bias() {
        let w = Tensor::<f32>::zeros(vec![2, 3]);
        assert!(Dense::from_weights(w.clone(), Tensor::zeros(vec![3])).is_err());
        assert!(Dense::from_weights(w, Tensor::zeros(vec![2])).is_ok());
    }
}
