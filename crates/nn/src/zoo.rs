//! The paper's network configurations (§2.3, Tables 1–4), as data.
//!
//! Everything here is pure metadata — layer sizes, TT layouts, parameter
//! counts — so the compression tables can be regenerated exactly and the
//! performance workloads constructed without trained weights.

use tie_tt::compression::{LayerParams, NetworkCompression};
use tie_tt::TtShape;

/// TT layout of VGG-16 FC6 as benchmarked (Table 4 row 1): `25088 → 4096`,
/// `d = 6`, `n = [2,7,8,8,7,4]`, `m = [4;6]`, `r = 4`.
///
/// # Panics
///
/// Never: the constant configuration is valid.
pub fn vgg16_fc6_tt() -> TtShape {
    TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).expect("valid paper config")
}

/// TT layout of VGG-16 FC7 (Table 4 row 2): `4096 → 4096`, `d = 6`,
/// `n = m = [4;6]`, `r = 4`.
///
/// # Panics
///
/// Never: the constant configuration is valid.
pub fn vgg16_fc7_tt() -> TtShape {
    TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).expect("valid paper config")
}

/// Dense parameter counts (weights + biases) of every VGG-16 layer, in
/// order. Used for the Table 1 network-level compression ratio.
pub fn vgg16_layer_params() -> Vec<(&'static str, usize)> {
    let conv = |name: &'static str, cin: usize, cout: usize| (name, 3 * 3 * cin * cout + cout);
    vec![
        conv("conv1_1", 3, 64),
        conv("conv1_2", 64, 64),
        conv("conv2_1", 64, 128),
        conv("conv2_2", 128, 128),
        conv("conv3_1", 128, 256),
        conv("conv3_2", 256, 256),
        conv("conv3_3", 256, 256),
        conv("conv4_1", 256, 512),
        conv("conv4_2", 512, 512),
        conv("conv4_3", 512, 512),
        conv("conv5_1", 512, 512),
        conv("conv5_2", 512, 512),
        conv("conv5_3", 512, 512),
        ("fc6", 25088 * 4096 + 4096),
        ("fc7", 4096 * 4096 + 4096),
        ("fc8", 4096 * 1000 + 1000),
    ]
}

/// Table 1 reproduction: TT-VGG-16 with FC6/FC7 in TT format (the paper's
/// §2.3 FC-dominated configuration). "FC layers" covers FC6–FC8 (FC8 stays
/// dense, as in Novikov et al.).
pub fn vgg16_tt_compression() -> NetworkCompression {
    let mut net = NetworkCompression::new();
    for (name, params) in vgg16_layer_params() {
        match name {
            "fc6" => {
                let mut l = LayerParams::tt(name, &vgg16_fc6_tt());
                // Bias stays dense on both sides of the comparison.
                l.dense += 4096;
                l.stored += 4096;
                net.push(l);
            }
            "fc7" => {
                let mut l = LayerParams::tt(name, &vgg16_fc7_tt());
                l.dense += 4096;
                l.stored += 4096;
                net.push(l);
            }
            _ => {
                net.push(LayerParams::dense(name, params));
            }
        }
    }
    net
}

/// CR over VGG-16's FC group (FC6 + FC7 compressed, FC8 dense) — the
/// Table 1 "CR for FC layers" column (paper: 30.9×).
pub fn vgg16_fc_group_ratio(net: &NetworkCompression) -> f64 {
    let fc: Vec<_> = net
        .layers()
        .iter()
        .filter(|l| l.name.starts_with("fc"))
        .collect();
    let dense: usize = fc.iter().map(|l| l.dense).sum();
    let stored: usize = fc.iter().map(|l| l.stored).sum();
    dense as f64 / stored as f64
}

/// One TT-compressed CONV layer of the §2.3 CONV-dominated CIFAR-10 CNN.
#[derive(Debug, Clone)]
pub struct TtConvConfig {
    /// Layer name (`conv2` … `conv6`).
    pub name: &'static str,
    /// TT layout of the layer's im2col matrix (`M = C_out`,
    /// `N = f²·C_in`).
    pub shape: TtShape,
}

/// The five TT CONV layers of the CONV-dominated CNN exactly as configured
/// in §2.3: `d = 4`, with the printed `m`, `n` and per-layer ranks.
///
/// # Panics
///
/// Never: the constant configurations are valid.
pub fn cifar_cnn_tt_convs() -> Vec<TtConvConfig> {
    let mk = |name, m: Vec<usize>, n: Vec<usize>, r: Vec<usize>| TtConvConfig {
        name,
        shape: TtShape::new(m, n, r).expect("valid paper config"),
    };
    vec![
        // layer 2: m=[3,4,4,4], n=[3,4,4,4], r=[22,20,20]
        mk(
            "conv2",
            vec![3, 4, 4, 4],
            vec![3, 4, 4, 4],
            vec![1, 22, 20, 20, 1],
        ),
        // layer 3: m=[3,4,8,4], n=[3,4,4,4], r=[27,22,22]
        mk(
            "conv3",
            vec![3, 4, 8, 4],
            vec![3, 4, 4, 4],
            vec![1, 27, 22, 22, 1],
        ),
        // layers 4-6: m=[3,4,8,4], n=[3,4,8,4], r=[23,23,23]
        mk(
            "conv4",
            vec![3, 4, 8, 4],
            vec![3, 4, 8, 4],
            vec![1, 23, 23, 23, 1],
        ),
        mk(
            "conv5",
            vec![3, 4, 8, 4],
            vec![3, 4, 8, 4],
            vec![1, 23, 23, 23, 1],
        ),
        mk(
            "conv6",
            vec![3, 4, 8, 4],
            vec![3, 4, 8, 4],
            vec![1, 23, 23, 23, 1],
        ),
    ]
}

/// Table 2 reproduction: the CONV-dominated CNN with layers 2–6 in TT
/// format. The TIE paper does not restate \[23\]'s full baseline topology;
/// the uncompressed remainder is modeled as a first conv of 1296 weights
/// (3→48 channels, 3×3, matching layer 2's `f²·C_in = 192` with `f = 2`)
/// plus a 384→10 classifier head — a few-thousand-parameter fringe whose
/// exact size moves the overall CR by under 2%.
pub fn cifar_cnn_compression() -> NetworkCompression {
    let mut net = NetworkCompression::new();
    net.push(LayerParams::dense("conv1", 3 * 3 * 3 * 48 + 48));
    for cfg in cifar_cnn_tt_convs() {
        net.push(LayerParams::tt(cfg.name, &cfg.shape));
    }
    net.push(LayerParams::dense("head", 384 * 10 + 10));
    net
}

/// TT layout of the LSTM-UCF11 input-to-hidden workload (Table 4 row 3):
/// `57600 → 256`, `n = [8,20,20,18]`, `m = [4;4]`, `r = 4`.
///
/// # Panics
///
/// Never: the constant configuration is valid.
pub fn lstm_ucf11_tt() -> TtShape {
    TtShape::uniform_rank(vec![4; 4], vec![8, 20, 20, 18], 4).expect("valid paper config")
}

/// TT layout of the LSTM-Youtube input-to-hidden workload (Table 4 row 4):
/// `57600 → 256`, `n = [4,20,20,36]`, `m = [4;4]`, `r = 4`.
///
/// # Panics
///
/// Never: the constant configuration is valid.
pub fn lstm_youtube_tt() -> TtShape {
    TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4).expect("valid paper config")
}

/// Folds a gate count into a single-gate TT layout by widening the last
/// row mode (`m_d ← gates · m_d`): the TT-RNN trick of storing the fused
/// input-to-hidden matrix of all gates (4 for LSTM, 3 for GRU) as one TT
/// matrix.
///
/// # Panics
///
/// Never for a valid input shape.
pub fn with_gate_fusion(shape: &TtShape, gates: usize) -> TtShape {
    let mut m = shape.row_modes.clone();
    let last = m.len() - 1;
    m[last] *= gates;
    TtShape::new(m, shape.col_modes.clone(), shape.ranks.clone()).expect("scaled config is valid")
}

/// Table 3 reproduction: compression of the TT-LSTM / TT-GRU video
/// classifiers (Youtube Celebrities configuration of \[77\]): the fused
/// input-to-hidden matrix is TT, hidden-to-hidden and the readout head
/// stay dense.
///
/// `gates` is 4 for LSTM, 3 for GRU; `classes` is 47 for Youtube
/// Celebrities.
pub fn tt_rnn_compression(gates: usize, classes: usize) -> NetworkCompression {
    let hidden = 256usize;
    let shape = with_gate_fusion(&lstm_youtube_tt(), gates);
    let mut net = NetworkCompression::new();
    net.push(LayerParams::tt("input-to-hidden", &shape));
    net.push(LayerParams::dense(
        "hidden-to-hidden",
        gates * hidden * hidden + gates * hidden,
    ));
    net.push(LayerParams::dense("head", hidden * classes + classes));
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_compression_ratios() {
        // Paper Table 4 CR column: 50972x, 14564x, 4954x, 4608x.
        let cases = [
            (vgg16_fc6_tt(), 50972.0),
            (vgg16_fc7_tt(), 14564.0),
            (lstm_ucf11_tt(), 4954.0),
            (lstm_youtube_tt(), 4608.0),
        ];
        for (shape, want) in cases {
            let cr = shape.compression_ratio();
            assert!(
                (cr - want).abs() / want < 0.02,
                "{shape}: CR {cr:.0} vs paper {want}"
            );
        }
    }

    #[test]
    fn table1_vgg16_ratios() {
        let net = vgg16_tt_compression();
        // Full VGG-16 has ~138M params.
        let total = net.dense_params();
        assert!(
            (137_000_000..140_000_000).contains(&total),
            "VGG-16 params {total}"
        );
        let fc_cr = vgg16_fc_group_ratio(&net);
        assert!(
            (fc_cr - 30.9).abs() / 30.9 < 0.05,
            "FC-group CR {fc_cr:.1} vs paper 30.9"
        );
        let overall = net.overall_ratio();
        assert!(
            (overall - 7.4).abs() / 7.4 < 0.05,
            "overall CR {overall:.2} vs paper 7.4"
        );
    }

    #[test]
    fn table2_cifar_cnn_ratios() {
        let net = cifar_cnn_compression();
        let conv_cr = net.compressed_layers_ratio();
        assert!(
            (conv_cr - 3.3).abs() / 3.3 < 0.03,
            "CONV CR {conv_cr:.2} vs paper 3.3"
        );
        let overall = net.overall_ratio();
        assert!(
            (overall - 3.27).abs() / 3.27 < 0.05,
            "overall CR {overall:.2} vs paper 3.27"
        );
    }

    #[test]
    fn table3_rnn_ratios_have_the_paper_magnitude() {
        // Paper: 15283x (LSTM FC), 196x overall; 11683x (GRU FC), 195x
        // overall. [77] does not publish where the gate factor enters the
        // mode list, so the reproduced values agree in magnitude, not to
        // the last digit (documented in EXPERIMENTS.md).
        let lstm = tt_rnn_compression(4, 47);
        let fc = lstm.compressed_layers_ratio();
        assert!(
            (8000.0..25000.0).contains(&fc),
            "LSTM input-to-hidden CR {fc:.0} should be ~1.5e4"
        );
        let overall = lstm.overall_ratio();
        assert!(
            (130.0..280.0).contains(&overall),
            "LSTM overall CR {overall:.0} should be ~196"
        );
        let gru = tt_rnn_compression(3, 47);
        assert!(gru.compressed_layers_ratio() > 8000.0);
    }

    #[test]
    fn gate_fusion_scales_rows_only() {
        let base = lstm_youtube_tt();
        let fused = with_gate_fusion(&base, 4);
        assert_eq!(fused.num_rows(), 4 * base.num_rows());
        assert_eq!(fused.num_cols(), base.num_cols());
    }

    #[test]
    fn cifar_conv_shapes_match_printed_dims() {
        let convs = cifar_cnn_tt_convs();
        assert_eq!(convs[0].shape.num_rows(), 192);
        assert_eq!(convs[0].shape.num_cols(), 192);
        assert_eq!(convs[1].shape.num_rows(), 384);
        assert_eq!(convs[4].shape.num_cols(), 384);
    }
}
