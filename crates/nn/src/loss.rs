//! Loss functions: each returns the scalar loss and the gradient with
//! respect to the network output, ready to feed `Layer::backward`.

use tie_tensor::{Result, Tensor, TensorError};

/// A computed loss: scalar value plus output gradient.
#[derive(Debug, Clone)]
pub struct LossValue {
    /// Mean loss over the batch.
    pub loss: f64,
    /// Gradient w.r.t. the network output (already divided by batch size).
    pub grad: Tensor<f32>,
}

/// Mean-squared error `mean((pred − target)²)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if shapes differ.
pub fn mse_loss(pred: &Tensor<f32>, target: &Tensor<f32>) -> Result<LossValue> {
    if pred.shape() != target.shape() {
        return Err(TensorError::ShapeMismatch {
            left: pred.dims().to_vec(),
            right: target.dims().to_vec(),
        });
    }
    let n = pred.num_elements() as f64;
    let diff = pred.sub(target)?;
    let loss = diff
        .data()
        .iter()
        .map(|&v| (v as f64) * (v as f64))
        .sum::<f64>()
        / n;
    let grad = diff.scaled(2.0 / n as f32);
    Ok(LossValue { loss, grad })
}

/// Softmax cross-entropy over logits `[batch, classes]` with integer
/// labels; the gradient is the classic `softmax − onehot`, divided by the
/// batch size.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] for a non-2-D input or label
/// count mismatch, and [`TensorError::InvalidArgument`] for an
/// out-of-range label.
pub fn softmax_cross_entropy(logits: &Tensor<f32>, labels: &[usize]) -> Result<LossValue> {
    if logits.ndim() != 2 || logits.dims()[0] != labels.len() {
        return Err(TensorError::ShapeMismatch {
            left: logits.dims().to_vec(),
            right: vec![labels.len(), 0],
        });
    }
    let (bsz, k) = (logits.dims()[0], logits.dims()[1]);
    let mut grad = Tensor::zeros(vec![bsz, k]);
    let mut loss = 0.0f64;
    for (b, &label) in labels.iter().enumerate() {
        if label >= k {
            return Err(TensorError::InvalidArgument {
                message: format!("label {label} out of 0..{k}"),
            });
        }
        let row = logits.row(b);
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &v| a.max(v));
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let z: f64 = exps.iter().sum();
        for (c, &e) in exps.iter().enumerate() {
            let p = e / z;
            let onehot = if c == label { 1.0 } else { 0.0 };
            grad.data_mut()[b * k + c] = ((p - onehot) / bsz as f64) as f32;
            if c == label {
                loss -= (p.max(1e-300)).ln();
            }
        }
    }
    Ok(LossValue {
        loss: loss / bsz as f64,
        grad,
    })
}

/// Classification accuracy of logits `[batch, classes]` against labels.
///
/// # Panics
///
/// Panics if `logits` is not 2-D or the label count differs.
pub fn accuracy(logits: &Tensor<f32>, labels: &[usize]) -> f64 {
    let (bsz, k) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(bsz, labels.len(), "label count mismatch");
    let mut correct = 0usize;
    for (b, &label) in labels.iter().enumerate() {
        let row = logits.row(b);
        let mut best = 0usize;
        for c in 1..k {
            if row[c] > row[best] {
                best = c;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    correct as f64 / bsz as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_equal_tensors_is_zero() {
        let a = Tensor::<f32>::from_vec(vec![2, 2], vec![1., 2., 3., 4.]).unwrap();
        let l = mse_loss(&a, &a).unwrap();
        assert_eq!(l.loss, 0.0);
        assert!(l.grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let p = Tensor::<f32>::from_vec(vec![1, 2], vec![1., 3.]).unwrap();
        let t = Tensor::<f32>::from_vec(vec![1, 2], vec![0., 1.]).unwrap();
        let l = mse_loss(&p, &t).unwrap();
        assert!((l.loss - (1.0 + 4.0) / 2.0).abs() < 1e-9);
        assert_eq!(l.grad.data(), &[1.0, 2.0]); // 2*(diff)/n
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let logits = Tensor::<f32>::from_vec(vec![1, 3], vec![10.0, -5.0, -5.0]).unwrap();
        let l = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(l.loss < 1e-4, "loss {}", l.loss);
        // Gradient of correct class ≈ p - 1 ≈ 0.
        assert!(l.grad.data()[0].abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_differences() {
        let logits =
            Tensor::<f32>::from_vec(vec![2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]).unwrap();
        let labels = [2usize, 0];
        let l = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let fp = softmax_cross_entropy(&lp, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&lm, &labels).unwrap().loss;
            let numeric = (fp - fm) / (2.0 * eps as f64);
            assert!(
                (numeric - l.grad.data()[i] as f64).abs() < 1e-5,
                "grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn cross_entropy_validates_labels() {
        let logits = Tensor::<f32>::zeros(vec![1, 3]);
        assert!(softmax_cross_entropy(&logits, &[3]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 1]).is_err());
    }

    #[test]
    fn accuracy_counts_argmax_hits() {
        let logits = Tensor::<f32>::from_vec(vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }
}
