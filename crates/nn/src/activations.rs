use crate::layer::{Layer, Trainable};
use tie_tensor::{Result, Tensor, TensorError};

macro_rules! activation_layer {
    ($(#[$doc:meta])* $name:ident, $fwd:expr, $bwd_from_out:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Default)]
        pub struct $name {
            cached_output: Option<Tensor<f32>>,
        }

        impl $name {
            /// New stateless activation layer.
            pub fn new() -> Self {
                Self::default()
            }
        }

        impl Trainable for $name {
            fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {}
        }

        impl Layer for $name {
            fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
                let fwd: fn(f32) -> f32 = $fwd;
                let y = x.map(fwd);
                self.cached_output = Some(y.clone());
                Ok(y)
            }

            fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
                let y = self.cached_output.as_ref().ok_or(TensorError::InvalidArgument {
                    message: "backward called before forward".into(),
                })?;
                let bwd: fn(f32) -> f32 = $bwd_from_out;
                grad_out.zip_with(y, |g, o| g * bwd(o))
            }

            fn describe(&self) -> String {
                stringify!($name).to_lowercase()
            }
        }
    };
}

activation_layer!(
    /// Rectified linear unit, `max(0, x)` — the activation of the TIE
    /// PE's activation units (paper §4.3).
    Relu,
    |x| if x > 0.0 { x } else { 0.0 },
    // d/dx relu(x) expressed in terms of the output: 1 where y > 0.
    |y| if y > 0.0 { 1.0 } else { 0.0 }
);

activation_layer!(
    /// Logistic sigmoid `1/(1+e^{-x})` (LSTM/GRU gate nonlinearity).
    Sigmoid,
    |x| 1.0 / (1.0 + (-x).exp()),
    // d/dx σ(x) = σ(1-σ), in terms of the output.
    |y| y * (1.0 - y)
);

activation_layer!(
    /// Hyperbolic tangent (LSTM cell nonlinearity).
    Tanh,
    |x| x.tanh(),
    // d/dx tanh(x) = 1 - tanh², in terms of the output.
    |y| 1.0 - y * y
);

/// Scalar sigmoid used by the recurrent cells (shared definition so the
/// layer and the cells cannot drift apart).
pub(crate) fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grad_check<L: Layer>(layer: &mut L, xs: &[f32], tol: f64) {
        let x = Tensor::<f32>::from_vec(vec![1, xs.len()], xs.to_vec()).unwrap();
        let y = layer.forward(&x).unwrap();
        let gx = layer.backward(&y).unwrap();
        let eps = 1e-3f32;
        for i in 0..xs.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let l = |t: &Tensor<f32>, layer: &mut L| -> f64 {
                layer
                    .forward(t)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|&v| 0.5 * (v as f64) * (v as f64))
                    .sum()
            };
            let numeric = (l(&xp, layer) - l(&xm, layer)) / (2.0 * eps as f64);
            assert!(
                (numeric - gx.data()[i] as f64).abs() <= tol,
                "grad mismatch at {i}: numeric {numeric} analytic {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::<f32>::from_vec(vec![1, 4], vec![-2.0, -0.1, 0.0, 3.0]).unwrap();
        let y = r.forward(&x).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut r = Relu::new();
        let x = Tensor::<f32>::from_vec(vec![1, 3], vec![-1.0, 2.0, 3.0]).unwrap();
        r.forward(&x).unwrap();
        let g = Tensor::<f32>::filled(vec![1, 3], 1.0).unwrap();
        let gx = r.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let x = Tensor::<f32>::from_vec(vec![1, 3], vec![-10.0, 0.0, 10.0]).unwrap();
        let y = s.forward(&x).unwrap();
        assert!(y.data()[0] < 0.001 && (y.data()[1] - 0.5).abs() < 1e-6 && y.data()[2] > 0.999);
        grad_check(&mut s, &[-1.5, -0.2, 0.4, 2.0], 1e-4);
    }

    #[test]
    fn tanh_gradient() {
        let mut t = Tanh::new();
        grad_check(&mut t, &[-2.0, -0.5, 0.0, 0.5, 2.0], 1e-4);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::<f32>::zeros(vec![1, 1])).is_err());
    }

    #[test]
    fn activations_have_no_params() {
        let mut r = Relu::new();
        assert_eq!(r.num_params(), 0);
    }
}
