use crate::layer::{Layer, Trainable};
use tie_tensor::{Result, Tensor, TensorError};

/// 2-D max pooling over `[batch, C, H, W]` inputs.
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    window: usize,
    stride: usize,
    cache: Option<PoolCache>,
}

#[derive(Debug, Clone)]
struct PoolCache {
    input_dims: Vec<usize>,
    /// Flat input offset of the argmax for every output element.
    argmax: Vec<usize>,
}

impl MaxPool2d {
    /// Pooling with a square `window` and `stride` (use `window == stride`
    /// for the classic non-overlapping 2×2 pool).
    ///
    /// # Panics
    ///
    /// Panics if `window` or `stride` is zero.
    pub fn new(window: usize, stride: usize) -> Self {
        assert!(
            window > 0 && stride > 0,
            "window and stride must be nonzero"
        );
        MaxPool2d {
            window,
            stride,
            cache: None,
        }
    }

    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if h < self.window || w < self.window {
            return Err(TensorError::InvalidArgument {
                message: format!("pool window {} does not fit input {h}x{w}", self.window),
            });
        }
        Ok((
            (h - self.window) / self.stride + 1,
            (w - self.window) / self.stride + 1,
        ))
    }
}

impl Trainable for MaxPool2d {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {}
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if x.ndim() != 4 {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![0, 0, 0, 0],
            });
        }
        let (bsz, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.output_hw(h, w)?;
        let mut out = Tensor::zeros(vec![bsz, c, ho, wo]);
        let mut argmax = vec![0usize; bsz * c * ho * wo];
        let xd = x.data();
        for b in 0..bsz {
            for ch in 0..c {
                let plane = (b * c + ch) * h * w;
                for oy in 0..ho {
                    for ox in 0..wo {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_off = 0usize;
                        for ky in 0..self.window {
                            for kx in 0..self.window {
                                let off =
                                    plane + (oy * self.stride + ky) * w + ox * self.stride + kx;
                                if xd[off] > best {
                                    best = xd[off];
                                    best_off = off;
                                }
                            }
                        }
                        let out_off = ((b * c + ch) * ho + oy) * wo + ox;
                        out.data_mut()[out_off] = best;
                        argmax[out_off] = best_off;
                    }
                }
            }
        }
        self.cache = Some(PoolCache {
            input_dims: x.dims().to_vec(),
            argmax,
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let cache = self.cache.as_ref().ok_or(TensorError::InvalidArgument {
            message: "backward called before forward".into(),
        })?;
        if grad_out.num_elements() != cache.argmax.len() {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![cache.argmax.len()],
            });
        }
        let mut grad_x = Tensor::zeros(cache.input_dims.clone());
        for (out_off, &in_off) in cache.argmax.iter().enumerate() {
            grad_x.data_mut()[in_off] += grad_out.data()[out_off];
        }
        Ok(grad_x)
    }

    fn describe(&self) -> String {
        format!(
            "maxpool {}x{} stride {}",
            self.window, self.window, self.stride
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_maxima() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::<f32>::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let y = p.forward(&x).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax_only() {
        let mut p = MaxPool2d::new(2, 2);
        let x = Tensor::<f32>::from_vec(vec![1, 1, 2, 2], vec![1., 9., 3., 4.]).unwrap();
        p.forward(&x).unwrap();
        let g = Tensor::<f32>::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap();
        let gx = p.backward(&g).unwrap();
        assert_eq!(gx.data(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn overlapping_windows_accumulate_gradient() {
        let mut p = MaxPool2d::new(2, 1);
        // Single peak in the middle wins all four overlapping windows.
        let x = Tensor::<f32>::from_vec(vec![1, 1, 3, 3], vec![0., 0., 0., 0., 9., 0., 0., 0., 0.])
            .unwrap();
        let y = p.forward(&x).unwrap();
        assert!(y.data().iter().all(|&v| v == 9.0));
        let g = Tensor::<f32>::filled(vec![1, 1, 2, 2], 1.0).unwrap();
        let gx = p.backward(&g).unwrap();
        assert_eq!(gx.data()[4], 4.0);
        assert_eq!(gx.sum(), 4.0);
    }

    #[test]
    fn rejects_bad_shapes() {
        let mut p = MaxPool2d::new(3, 1);
        assert!(p.forward(&Tensor::<f32>::zeros(vec![2, 2])).is_err());
        assert!(p.forward(&Tensor::<f32>::zeros(vec![1, 1, 2, 2])).is_err());
        assert!(p.backward(&Tensor::<f32>::zeros(vec![1])).is_err());
    }
}
