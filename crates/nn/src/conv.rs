//! Convolution layers: dense im2col convolution ([`Conv2d`]) and the
//! TT-compressed variant ([`TtConv2d`]) per paper Fig. 3, plus the
//! [`im2col`]/[`col2im`] kernels and the direct-convolution reference.

use crate::layer::{Layer, Trainable};
use crate::tt_dense::{tt_layer_backward, tt_layer_forward, TtLayerCache};
use tie_tensor::linalg::{matmul, matmul_nt, matmul_tn};
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::TtShape;

use rand::Rng;

/// Spatial geometry shared by [`Conv2d`] and [`TtConv2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Input channels `C_in`.
    pub in_channels: usize,
    /// Output channels `C_out`.
    pub out_channels: usize,
    /// Square kernel size `f`.
    pub kernel: usize,
    /// Stride (same in both directions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvGeometry {
    /// Output spatial size for an `h × w` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the kernel does not fit.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let he = h + 2 * self.padding;
        let we = w + 2 * self.padding;
        if he < self.kernel || we < self.kernel || self.stride == 0 {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "kernel {}x{} does not fit input {h}x{w}",
                    self.kernel, self.kernel
                ),
            });
        }
        Ok((
            (he - self.kernel) / self.stride + 1,
            (we - self.kernel) / self.stride + 1,
        ))
    }

    /// Rows of the im2col matrix: `f² · C_in` (paper Fig. 3).
    pub fn patch_len(&self) -> usize {
        self.kernel * self.kernel * self.in_channels
    }
}

/// im2col: unfolds conv patches of one `[C, H, W]` image into a matrix
/// `[f²C, H'·W']` so convolution becomes matrix multiplication (paper
/// Fig. 3: "converting computation on CONV layer to matrix
/// multiplication").
///
/// Patch element order is `(c, ky, kx)` row-major, matching the kernel
/// reshape `[C_out, C·f·f]`.
///
/// # Errors
///
/// Returns shape errors for non-3-D input or a kernel that does not fit.
pub fn im2col(x: &Tensor<f32>, geo: &ConvGeometry) -> Result<Tensor<f32>> {
    if x.ndim() != 3 || x.dims()[0] != geo.in_channels {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![geo.in_channels, 0, 0],
        });
    }
    let (h, w) = (x.dims()[1], x.dims()[2]);
    let (ho, wo) = geo.output_hw(h, w)?;
    let rows = geo.patch_len();
    let cols = ho * wo;
    let mut out = Tensor::zeros(vec![rows, cols]);
    let xd = x.data();
    let pad = geo.padding as isize;
    for oy in 0..ho {
        for ox in 0..wo {
            let col = oy * wo + ox;
            for c in 0..geo.in_channels {
                for ky in 0..geo.kernel {
                    for kx in 0..geo.kernel {
                        let iy = (oy * geo.stride + ky) as isize - pad;
                        let ix = (ox * geo.stride + kx) as isize - pad;
                        let row = (c * geo.kernel + ky) * geo.kernel + kx;
                        let v = if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            xd[(c * h + iy as usize) * w + ix as usize]
                        } else {
                            0.0
                        };
                        out.data_mut()[row * cols + col] = v;
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Adjoint of [`im2col`]: scatters patch-matrix gradients back onto the
/// `[C, H, W]` image (overlapping patches accumulate).
///
/// # Errors
///
/// Returns shape errors if `cols` does not match the geometry.
pub fn col2im(
    cols_mat: &Tensor<f32>,
    geo: &ConvGeometry,
    h: usize,
    w: usize,
) -> Result<Tensor<f32>> {
    let (ho, wo) = geo.output_hw(h, w)?;
    if cols_mat.dims() != [geo.patch_len(), ho * wo] {
        return Err(TensorError::ShapeMismatch {
            left: cols_mat.dims().to_vec(),
            right: vec![geo.patch_len(), ho * wo],
        });
    }
    let mut out = Tensor::zeros(vec![geo.in_channels, h, w]);
    let cd = cols_mat.data();
    let pad = geo.padding as isize;
    let n_cols = ho * wo;
    for oy in 0..ho {
        for ox in 0..wo {
            let col = oy * wo + ox;
            for c in 0..geo.in_channels {
                for ky in 0..geo.kernel {
                    for kx in 0..geo.kernel {
                        let iy = (oy * geo.stride + ky) as isize - pad;
                        let ix = (ox * geo.stride + kx) as isize - pad;
                        if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            let row = (c * geo.kernel + ky) * geo.kernel + kx;
                            out.data_mut()[(c * h + iy as usize) * w + ix as usize] +=
                                cd[row * n_cols + col];
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Direct (loop-nest) convolution reference, used only to validate the
/// im2col path in tests.
///
/// # Errors
///
/// Returns shape errors as in [`im2col`].
pub fn conv2d_direct(
    x: &Tensor<f32>,
    kernel: &Tensor<f32>,
    geo: &ConvGeometry,
) -> Result<Tensor<f32>> {
    let (h, w) = (x.dims()[1], x.dims()[2]);
    let (ho, wo) = geo.output_hw(h, w)?;
    let mut out = Tensor::zeros(vec![geo.out_channels, ho, wo]);
    let pad = geo.padding as isize;
    for co in 0..geo.out_channels {
        for oy in 0..ho {
            for ox in 0..wo {
                let mut acc = 0.0f32;
                for c in 0..geo.in_channels {
                    for ky in 0..geo.kernel {
                        for kx in 0..geo.kernel {
                            let iy = (oy * geo.stride + ky) as isize - pad;
                            let ix = (ox * geo.stride + kx) as isize - pad;
                            if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                                acc += x.data()[(c * h + iy as usize) * w + ix as usize]
                                    * kernel.data()[((co * geo.in_channels + c) * geo.kernel + ky)
                                        * geo.kernel
                                        + kx];
                            }
                        }
                    }
                }
                out.data_mut()[(co * ho + oy) * wo + ox] = acc;
            }
        }
    }
    Ok(out)
}

/// A 2-D convolution layer computed as im2col + matrix multiply.
///
/// Inputs are `[batch, C_in, H, W]`, outputs `[batch, C_out, H', W']`.
#[derive(Debug, Clone)]
pub struct Conv2d {
    geo: ConvGeometry,
    /// Kernel as a matrix `[C_out, f²·C_in]` (already reshaped per Fig. 3).
    w: Tensor<f32>,
    b: Tensor<f32>,
    grad_w: Tensor<f32>,
    grad_b: Tensor<f32>,
    cache: Option<ConvCache>,
}

#[derive(Debug, Clone)]
struct ConvCache {
    cols: Vec<Tensor<f32>>, // per-sample im2col matrices
    input_hw: (usize, usize),
}

impl Conv2d {
    /// Glorot-initialized convolution.
    pub fn new<R: Rng>(rng: &mut R, geo: ConvGeometry) -> Self {
        let w = tie_tensor::init::glorot_uniform(rng, geo.out_channels, geo.patch_len());
        Conv2d {
            geo,
            grad_w: Tensor::zeros(w.dims().to_vec()),
            w,
            b: Tensor::zeros(vec![geo.out_channels]),
            grad_b: Tensor::zeros(vec![geo.out_channels]),
            cache: None,
        }
    }

    /// The layer geometry.
    pub fn geometry(&self) -> &ConvGeometry {
        &self.geo
    }

    /// Kernel matrix `[C_out, f²·C_in]`.
    pub fn weights(&self) -> &Tensor<f32> {
        &self.w
    }
}

impl Trainable for Conv2d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        f(&mut self.w, &mut self.grad_w);
        f(&mut self.b, &mut self.grad_b);
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if x.ndim() != 4 || x.dims()[1] != self.geo.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![0, self.geo.in_channels, 0, 0],
            });
        }
        let (bsz, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.geo.output_hw(h, w)?;
        let mut out = Tensor::zeros(vec![bsz, self.geo.out_channels, ho, wo]);
        let mut cols_cache = Vec::with_capacity(bsz);
        let img_len = c * h * w;
        let out_len = self.geo.out_channels * ho * wo;
        for bi in 0..bsz {
            let img = Tensor::from_vec(
                vec![c, h, w],
                x.data()[bi * img_len..(bi + 1) * img_len].to_vec(),
            )?;
            let cols = im2col(&img, &self.geo)?;
            let mut y = matmul(&self.w, &cols)?; // [C_out, H'W']
            let hw = ho * wo;
            for co in 0..self.geo.out_channels {
                for p in 0..hw {
                    y.data_mut()[co * hw + p] += self.b.data()[co];
                }
            }
            out.data_mut()[bi * out_len..(bi + 1) * out_len].copy_from_slice(y.data());
            cols_cache.push(cols);
        }
        self.cache = Some(ConvCache {
            cols: cols_cache,
            input_hw: (h, w),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let cache = self.cache.as_ref().ok_or(TensorError::InvalidArgument {
            message: "backward called before forward".into(),
        })?;
        let (h, w) = cache.input_hw;
        let (ho, wo) = self.geo.output_hw(h, w)?;
        let bsz = cache.cols.len();
        if grad_out.dims() != [bsz, self.geo.out_channels, ho, wo] {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![bsz, self.geo.out_channels, ho, wo],
            });
        }
        let mut grad_x = Tensor::zeros(vec![bsz, self.geo.in_channels, h, w]);
        let out_len = self.geo.out_channels * ho * wo;
        let img_len = self.geo.in_channels * h * w;
        for bi in 0..bsz {
            let gy = Tensor::from_vec(
                vec![self.geo.out_channels, ho * wo],
                grad_out.data()[bi * out_len..(bi + 1) * out_len].to_vec(),
            )?;
            // dW += gy · colsᵀ ; db += row sums ; dcols = Wᵀ · gy
            let dw = matmul_nt(&gy, &cache.cols[bi])?;
            self.grad_w.axpy(1.0, &dw)?;
            let hw = ho * wo;
            for co in 0..self.geo.out_channels {
                let s: f32 = gy.data()[co * hw..(co + 1) * hw].iter().sum();
                self.grad_b.data_mut()[co] += s;
            }
            let dcols = matmul_tn(&self.w, &gy)?;
            let dimg = col2im(&dcols, &self.geo, h, w)?;
            grad_x.data_mut()[bi * img_len..(bi + 1) * img_len].copy_from_slice(dimg.data());
        }
        Ok(grad_x)
    }

    fn describe(&self) -> String {
        format!(
            "conv {}x{} {}->{} (stride {}, pad {})",
            self.geo.kernel,
            self.geo.kernel,
            self.geo.in_channels,
            self.geo.out_channels,
            self.geo.stride,
            self.geo.padding
        )
    }
}

/// A TT-compressed convolution: im2col, then the compact TT scheme as the
/// matrix multiply (paper §2.2, "inference on CONV layers in the TT
/// format").
///
/// The TT layout's column modes must multiply to `f²·C_in` and its row
/// modes to `C_out`.
#[derive(Debug, Clone)]
pub struct TtConv2d {
    geo: ConvGeometry,
    shape: TtShape,
    cores: Vec<Tensor<f32>>,
    bias: Tensor<f32>,
    grad_cores: Vec<Tensor<f32>>,
    grad_bias: Tensor<f32>,
    cache: Option<TtConvCache>,
}

#[derive(Debug, Clone)]
struct TtConvCache {
    cols: Vec<Tensor<f32>>, // per-sample im2col (patch-major: [H'W', f²C])
    tt: Vec<TtLayerCache>,  // per-sample TT caches
    input_hw: (usize, usize),
}

impl TtConv2d {
    /// Randomly initialized TT convolution.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the TT layout does not
    /// match the geometry.
    pub fn new<R: Rng>(rng: &mut R, geo: ConvGeometry, shape: &TtShape) -> Result<Self> {
        if shape.num_cols() != geo.patch_len() || shape.num_rows() != geo.out_channels {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "TT layout {}x{} does not match conv matrix {}x{}",
                    shape.num_rows(),
                    shape.num_cols(),
                    geo.out_channels,
                    geo.patch_len()
                ),
            });
        }
        let tt = crate::tt_dense::TtDense::new(rng, shape);
        let matrix = tt.to_tt_matrix()?;
        let cores: Vec<Tensor<f32>> = matrix.cores().to_vec();
        let grad_cores = cores
            .iter()
            .map(|c| Tensor::zeros(c.dims().to_vec()))
            .collect();
        Ok(TtConv2d {
            geo,
            shape: shape.clone(),
            cores,
            bias: Tensor::zeros(vec![geo.out_channels]),
            grad_cores,
            grad_bias: Tensor::zeros(vec![geo.out_channels]),
            cache: None,
        })
    }

    /// The TT layout.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// Stored parameters (cores + bias) vs the dense kernel.
    pub fn stored_params(&self) -> usize {
        self.shape.num_params() + self.bias.num_elements()
    }
}

impl Trainable for TtConv2d {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        for (c, g) in self.cores.iter_mut().zip(&mut self.grad_cores) {
            f(c, g);
        }
        f(&mut self.bias, &mut self.grad_bias);
    }
}

impl Layer for TtConv2d {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if x.ndim() != 4 || x.dims()[1] != self.geo.in_channels {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![0, self.geo.in_channels, 0, 0],
            });
        }
        let (bsz, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let (ho, wo) = self.geo.output_hw(h, w)?;
        let hw = ho * wo;
        let mut out = Tensor::zeros(vec![bsz, self.geo.out_channels, ho, wo]);
        let img_len = c * h * w;
        let out_len = self.geo.out_channels * hw;
        let mut cols_cache = Vec::with_capacity(bsz);
        let mut tt_cache = Vec::with_capacity(bsz);
        for bi in 0..bsz {
            let img = Tensor::from_vec(
                vec![c, h, w],
                x.data()[bi * img_len..(bi + 1) * img_len].to_vec(),
            )?;
            // Patch-major orientation: each output pixel is a "sample" for
            // the TT matrix-vector product.
            let cols = im2col(&img, &self.geo)?.transposed()?; // [H'W', f²C]
            let (y, cache) = tt_layer_forward(&self.cores, &self.shape, &cols)?; // [H'W', C_out]
            for p in 0..hw {
                for co in 0..self.geo.out_channels {
                    out.data_mut()[bi * out_len + co * hw + p] =
                        y.data()[p * self.geo.out_channels + co] + self.bias.data()[co];
                }
            }
            cols_cache.push(cols);
            tt_cache.push(cache);
        }
        self.cache = Some(TtConvCache {
            cols: cols_cache,
            tt: tt_cache,
            input_hw: (h, w),
        });
        Ok(out)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let cache = self.cache.as_ref().ok_or(TensorError::InvalidArgument {
            message: "backward called before forward".into(),
        })?;
        let (h, w) = cache.input_hw;
        let (ho, wo) = self.geo.output_hw(h, w)?;
        let hw = ho * wo;
        let bsz = cache.cols.len();
        if grad_out.dims() != [bsz, self.geo.out_channels, ho, wo] {
            return Err(TensorError::ShapeMismatch {
                left: grad_out.dims().to_vec(),
                right: vec![bsz, self.geo.out_channels, ho, wo],
            });
        }
        let out_len = self.geo.out_channels * hw;
        let img_len = self.geo.in_channels * h * w;
        let mut grad_x = Tensor::zeros(vec![bsz, self.geo.in_channels, h, w]);
        for bi in 0..bsz {
            // Patch-major gradient [H'W', C_out].
            let mut gy = Tensor::zeros(vec![hw, self.geo.out_channels]);
            for p in 0..hw {
                for co in 0..self.geo.out_channels {
                    let g = grad_out.data()[bi * out_len + co * hw + p];
                    gy.data_mut()[p * self.geo.out_channels + co] = g;
                    self.grad_bias.data_mut()[co] += g;
                }
            }
            let (gcols, gcores) = tt_layer_backward(&self.cores, &self.shape, &cache.tt[bi], &gy)?;
            for (acc, g) in self.grad_cores.iter_mut().zip(&gcores) {
                acc.axpy(1.0, g)?;
            }
            let dimg = col2im(&gcols.transposed()?, &self.geo, h, w)?;
            grad_x.data_mut()[bi * img_len..(bi + 1) * img_len].copy_from_slice(dimg.data());
        }
        Ok(grad_x)
    }

    fn describe(&self) -> String {
        format!(
            "tt-conv {}x{} {}->{} ({} params vs {} dense)",
            self.geo.kernel,
            self.geo.kernel,
            self.geo.in_channels,
            self.geo.out_channels,
            self.stored_params(),
            self.geo.out_channels * self.geo.patch_len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    fn geo(cin: usize, cout: usize, k: usize, stride: usize, pad: usize) -> ConvGeometry {
        ConvGeometry {
            in_channels: cin,
            out_channels: cout,
            kernel: k,
            stride,
            padding: pad,
        }
    }

    #[test]
    fn output_geometry_matches_fig3() {
        // Paper Fig. 3: H' = H - f + 1 (stride 1, no padding).
        let g = geo(3, 8, 3, 1, 0);
        assert_eq!(g.output_hw(32, 32).unwrap(), (30, 30));
        let gp = geo(3, 8, 3, 1, 1);
        assert_eq!(gp.output_hw(32, 32).unwrap(), (32, 32));
        let gs = geo(3, 8, 3, 2, 1);
        assert_eq!(gs.output_hw(32, 32).unwrap(), (16, 16));
        assert!(geo(3, 8, 5, 1, 0).output_hw(3, 3).is_err());
    }

    #[test]
    fn im2col_matmul_equals_direct_convolution() {
        let mut rng = ChaCha8Rng::seed_from_u64(110);
        for (stride, pad) in [(1, 0), (1, 1), (2, 1)] {
            let g = geo(2, 3, 3, stride, pad);
            let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 6, 5], 1.0);
            let kernel: Tensor<f32> = init::uniform(&mut rng, vec![3, 2, 3, 3], 1.0);
            let want = conv2d_direct(&x, &kernel, &g).unwrap();
            let cols = im2col(&x, &g).unwrap();
            let wmat = kernel.reshaped(vec![3, 18]).unwrap();
            let (ho, wo) = g.output_hw(6, 5).unwrap();
            let got = matmul(&wmat, &cols)
                .unwrap()
                .reshaped(vec![3, ho, wo])
                .unwrap();
            assert!(
                got.approx_eq(&want, 1e-5),
                "stride {stride} pad {pad}: max diff {}",
                got.sub(&want).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is what backprop needs.
        let mut rng = ChaCha8Rng::seed_from_u64(111);
        let g = geo(2, 1, 3, 2, 1);
        let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 5, 5], 1.0);
        let cols = im2col(&x, &g).unwrap();
        let y: Tensor<f32> = init::uniform(&mut rng, cols.dims().to_vec(), 1.0);
        let back = col2im(&y, &g, 5, 5).unwrap();
        let lhs: f64 = cols
            .data()
            .iter()
            .zip(y.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        let rhs: f64 = x
            .data()
            .iter()
            .zip(back.data())
            .map(|(&a, &b)| (a as f64) * (b as f64))
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_layer_gradcheck_on_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(112);
        let mut layer = Conv2d::new(&mut rng, geo(2, 3, 3, 1, 1));
        let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 2, 4, 4], 1.0);
        let y = layer.forward(&x).unwrap();
        let gx = layer.backward(&y).unwrap();
        let eps = 1e-2f32;
        for i in (0..x.num_elements()).step_by(7) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let l = |t: &Tensor<f32>, layer: &mut Conv2d| -> f64 {
                layer
                    .forward(t)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|&v| 0.5 * (v as f64) * (v as f64))
                    .sum()
            };
            let numeric = (l(&xp, &mut layer) - l(&xm, &mut layer)) / (2.0 * eps as f64);
            assert!(
                (numeric - gx.data()[i] as f64).abs() <= 2e-2 * (1.0 + numeric.abs()),
                "conv input grad mismatch at {i}"
            );
        }
    }

    #[test]
    fn tt_conv_matches_dense_conv_with_same_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(113);
        // conv matrix: C_out = 4, f²C = 2*2*2 = 8; TT layout (2x2) x (4x2).
        let g = geo(2, 4, 2, 1, 0);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![4, 2], 3).unwrap();
        let mut ttconv = TtConv2d::new(&mut rng, g, &shape).unwrap();
        let wmat = tie_tt::TtMatrix::new(ttconv.cores.clone())
            .unwrap()
            .to_dense()
            .unwrap();
        let kernel = wmat.reshaped(vec![4, 2, 2, 2]).unwrap();
        let x: Tensor<f32> = init::uniform(&mut rng, vec![1, 2, 4, 4], 1.0);
        let got = ttconv.forward(&x).unwrap();
        let img = Tensor::from_vec(vec![2, 4, 4], x.data().to_vec()).unwrap();
        let want = conv2d_direct(&img, &kernel, &g).unwrap();
        let got3 = Tensor::from_vec(vec![4, 3, 3], got.data().to_vec()).unwrap();
        assert!(
            got3.approx_eq(&want, 1e-4),
            "max diff {}",
            got3.sub(&want).unwrap().max_abs()
        );
    }

    #[test]
    fn tt_conv_trains_toward_a_target() {
        let mut rng = ChaCha8Rng::seed_from_u64(114);
        let g = geo(2, 4, 2, 1, 0);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![4, 2], 2).unwrap();
        let mut layer = TtConv2d::new(&mut rng, g, &shape).unwrap();
        let x: Tensor<f32> = init::uniform(&mut rng, vec![4, 2, 4, 4], 1.0);
        let target: Tensor<f32> = init::uniform(&mut rng, vec![4, 4, 3, 3], 0.5);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..150 {
            let y = layer.forward(&x).unwrap();
            let diff = y.sub(&target).unwrap();
            let loss: f64 = diff.data().iter().map(|&v| (v as f64).powi(2)).sum();
            first.get_or_insert(loss);
            last = loss;
            layer.zero_grads();
            layer.backward(&diff).unwrap();
            layer.visit_params(&mut |p, gr| {
                p.axpy(-0.01, gr).unwrap();
            });
        }
        assert!(last < first.unwrap() / 3.0, "{:?} -> {last}", first);
    }

    #[test]
    fn tt_conv_rejects_mismatched_layout() {
        let mut rng = ChaCha8Rng::seed_from_u64(115);
        let g = geo(2, 4, 2, 1, 0);
        let bad = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        assert!(TtConv2d::new(&mut rng, g, &bad).is_err());
    }
}
