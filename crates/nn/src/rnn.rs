//! Recurrent cells (LSTM / GRU) with optionally TT-compressed
//! input-to-hidden matrices — the paper's Table 3 / Table 4 RNN workloads.
//!
//! In the TT-RNN of Yang et al. (ICML '17), which TIE benchmarks
//! (LSTM-UCF11, LSTM-Youtube in Table 4), the huge input-to-hidden matrix
//! (e.g. `57600 × 256` per gate group) is stored in TT format while the
//! hidden-to-hidden matrix stays dense. [`InputProjection`] captures that
//! choice; [`LstmCell`] / [`GruCell`] work with either variant, and
//! [`SequenceClassifier`] adds a readout head plus full backpropagation
//! through time.

use crate::activations::sigmoid;
use crate::dense::Dense;
use crate::layer::{Layer, Trainable};
use crate::tt_dense::{tt_layer_backward, tt_layer_forward, TtLayerCache};
use tie_tensor::linalg::{matmul, matmul_nt, matmul_tn};
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::TtShape;

use rand::Rng;

/// The input-to-hidden projection of a recurrent cell: dense or
/// TT-compressed.
#[derive(Debug, Clone)]
pub enum InputProjection {
    /// Dense `[gates·H, N]` matrix.
    Dense {
        /// Weight matrix.
        w: Tensor<f32>,
        /// Gradient accumulator.
        grad: Tensor<f32>,
    },
    /// TT-compressed matrix with `∏ m_k = gates·H`, `∏ n_k = N`.
    Tt {
        /// TT layout.
        shape: TtShape,
        /// 4-D cores.
        cores: Vec<Tensor<f32>>,
        /// Per-core gradient accumulators.
        grads: Vec<Tensor<f32>>,
    },
}

/// Per-step cache of an input projection.
#[derive(Debug, Clone)]
pub enum ProjectionCache {
    /// Cached input batch.
    Dense(Tensor<f32>),
    /// TT stage cache.
    Tt(TtLayerCache),
}

impl InputProjection {
    /// Dense projection with Glorot init.
    pub fn dense<R: Rng>(rng: &mut R, in_features: usize, out_features: usize) -> Self {
        let w = tie_tensor::init::glorot_uniform(rng, out_features, in_features);
        let grad = Tensor::zeros(w.dims().to_vec());
        InputProjection::Dense { w, grad }
    }

    /// TT projection with variance-scaled cores.
    pub fn tt<R: Rng>(rng: &mut R, shape: &TtShape) -> Self {
        let tt = crate::tt_dense::TtDense::new(rng, shape);
        let cores: Vec<Tensor<f32>> = tt
            .to_tt_matrix()
            .expect("freshly built TT layer is valid")
            .cores()
            .to_vec();
        let grads = cores
            .iter()
            .map(|c| Tensor::zeros(c.dims().to_vec()))
            .collect();
        InputProjection::Tt {
            shape: shape.clone(),
            cores,
            grads,
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        match self {
            InputProjection::Dense { w, .. } => w.dims()[0],
            InputProjection::Tt { shape, .. } => shape.num_rows(),
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        match self {
            InputProjection::Dense { w, .. } => w.dims()[1],
            InputProjection::Tt { shape, .. } => shape.num_cols(),
        }
    }

    /// Stored parameter count (the Table 3 compression numerator/denominator).
    pub fn stored_params(&self) -> usize {
        match self {
            InputProjection::Dense { w, .. } => w.num_elements(),
            InputProjection::Tt { shape, .. } => shape.num_params(),
        }
    }

    fn forward(&self, x: &Tensor<f32>) -> Result<(Tensor<f32>, ProjectionCache)> {
        match self {
            InputProjection::Dense { w, .. } => {
                let y = matmul_nt(x, w)?;
                Ok((y, ProjectionCache::Dense(x.clone())))
            }
            InputProjection::Tt { shape, cores, .. } => {
                let (y, cache) = tt_layer_forward(cores, shape, x)?;
                Ok((y, ProjectionCache::Tt(cache)))
            }
        }
    }

    fn backward(&mut self, cache: &ProjectionCache, dy: &Tensor<f32>) -> Result<Tensor<f32>> {
        match (self, cache) {
            (InputProjection::Dense { w, grad }, ProjectionCache::Dense(x)) => {
                let dw = matmul_tn(dy, x)?;
                grad.axpy(1.0, &dw)?;
                matmul(dy, w)
            }
            (
                InputProjection::Tt {
                    shape,
                    cores,
                    grads,
                },
                ProjectionCache::Tt(tt_cache),
            ) => {
                let (dx, dcores) = tt_layer_backward(cores, shape, tt_cache, dy)?;
                for (g, d) in grads.iter_mut().zip(&dcores) {
                    g.axpy(1.0, d)?;
                }
                Ok(dx)
            }
            _ => Err(TensorError::InvalidArgument {
                message: "projection cache kind mismatch".into(),
            }),
        }
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        match self {
            InputProjection::Dense { w, grad } => f(w, grad),
            InputProjection::Tt { cores, grads, .. } => {
                for (c, g) in cores.iter_mut().zip(grads) {
                    f(c, g);
                }
            }
        }
    }
}

/// Recurrent state `(h, c)`; GRU ignores `c`.
#[derive(Debug, Clone)]
pub struct CellState {
    /// Hidden state `[B, H]`.
    pub h: Tensor<f32>,
    /// Cell state `[B, H]` (LSTM only; zeros for GRU).
    pub c: Tensor<f32>,
}

impl CellState {
    /// Zero state for a batch.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        CellState {
            h: Tensor::zeros(vec![batch, hidden]),
            c: Tensor::zeros(vec![batch, hidden]),
        }
    }
}

/// Gradient flowing backward into a state.
#[derive(Debug, Clone)]
pub struct StateGrad {
    /// `∂L/∂h`.
    pub dh: Tensor<f32>,
    /// `∂L/∂c` (LSTM only).
    pub dc: Tensor<f32>,
}

impl StateGrad {
    /// Zero gradient for a batch.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        StateGrad {
            dh: Tensor::zeros(vec![batch, hidden]),
            dc: Tensor::zeros(vec![batch, hidden]),
        }
    }
}

/// A recurrent cell usable by [`SequenceClassifier`].
pub trait RecurrentCell: Trainable {
    /// Hidden width `H`.
    fn hidden_size(&self) -> usize;
    /// Input width `N`.
    fn input_size(&self) -> usize;
    /// One timestep: consumes `x [B, N]` and the previous state, returns
    /// the new state, caching activations for the backward pass.
    ///
    /// # Errors
    ///
    /// Shape errors on mismatched input.
    fn step(&mut self, x: &Tensor<f32>, state: &CellState) -> Result<CellState>;
    /// Backward through the most recent un-popped step; returns
    /// `(dx, grad for the previous state)`.
    ///
    /// # Errors
    ///
    /// Invalid-argument error if no cached step remains.
    fn step_backward(&mut self, grad: &StateGrad) -> Result<(Tensor<f32>, StateGrad)>;
    /// Clears cached steps (call before a fresh sequence).
    fn reset(&mut self);
    /// Human-readable description.
    fn describe(&self) -> String;
}

// ---------------------------------------------------------------- LSTM --

#[derive(Debug, Clone)]
struct LstmStepCache {
    proj: ProjectionCache,
    h_in: Tensor<f32>,
    c_in: Tensor<f32>,
    i: Tensor<f32>,
    f: Tensor<f32>,
    g: Tensor<f32>,
    o: Tensor<f32>,
    tanh_c: Tensor<f32>,
}

/// An LSTM cell; gate order in the fused `4H` dimension is `i, f, g, o`.
#[derive(Debug, Clone)]
pub struct LstmCell {
    wx: InputProjection,
    wh: Tensor<f32>,
    b: Tensor<f32>,
    grad_wh: Tensor<f32>,
    grad_b: Tensor<f32>,
    hidden: usize,
    steps: Vec<LstmStepCache>,
}

impl LstmCell {
    /// LSTM with a dense input projection.
    pub fn dense<R: Rng>(rng: &mut R, input: usize, hidden: usize) -> Self {
        let wx = InputProjection::dense(rng, input, 4 * hidden);
        Self::with_projection(rng, wx, hidden)
    }

    /// LSTM with a TT-compressed input projection; the TT row modes must
    /// multiply to `4·hidden`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on a layout mismatch.
    pub fn tt<R: Rng>(rng: &mut R, shape: &TtShape, hidden: usize) -> Result<Self> {
        if shape.num_rows() != 4 * hidden {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "TT row modes multiply to {}, need 4H = {}",
                    shape.num_rows(),
                    4 * hidden
                ),
            });
        }
        let wx = InputProjection::tt(rng, shape);
        Ok(Self::with_projection(rng, wx, hidden))
    }

    fn with_projection<R: Rng>(rng: &mut R, wx: InputProjection, hidden: usize) -> Self {
        let wh = tie_tensor::init::glorot_uniform(rng, 4 * hidden, hidden);
        let mut b = Tensor::zeros(vec![4 * hidden]);
        // Standard trick: forget-gate bias at 1 so memory persists early on.
        for v in b.data_mut()[hidden..2 * hidden].iter_mut() {
            *v = 1.0;
        }
        LstmCell {
            grad_wh: Tensor::zeros(wh.dims().to_vec()),
            wh,
            grad_b: Tensor::zeros(b.dims().to_vec()),
            b,
            wx,
            hidden,
            steps: Vec::new(),
        }
    }

    /// The input projection (for compression accounting).
    pub fn input_projection(&self) -> &InputProjection {
        &self.wx
    }
}

impl Trainable for LstmCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        self.wx.visit_params(f);
        f(&mut self.wh, &mut self.grad_wh);
        f(&mut self.b, &mut self.grad_b);
    }
}

impl RecurrentCell for LstmCell {
    fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn input_size(&self) -> usize {
        self.wx.in_features()
    }

    fn step(&mut self, x: &Tensor<f32>, state: &CellState) -> Result<CellState> {
        let hsz = self.hidden;
        let bsz = x.dims()[0];
        let (xw, proj_cache) = self.wx.forward(x)?;
        let hw = matmul_nt(&state.h, &self.wh)?;
        let mut pre = xw.add(&hw)?;
        for b in 0..bsz {
            for j in 0..4 * hsz {
                pre.data_mut()[b * 4 * hsz + j] += self.b.data()[j];
            }
        }
        let mut i = Tensor::zeros(vec![bsz, hsz]);
        let mut f = Tensor::zeros(vec![bsz, hsz]);
        let mut g = Tensor::zeros(vec![bsz, hsz]);
        let mut o = Tensor::zeros(vec![bsz, hsz]);
        for b in 0..bsz {
            for j in 0..hsz {
                let base = b * 4 * hsz;
                i.data_mut()[b * hsz + j] = sigmoid(pre.data()[base + j]);
                f.data_mut()[b * hsz + j] = sigmoid(pre.data()[base + hsz + j]);
                g.data_mut()[b * hsz + j] = pre.data()[base + 2 * hsz + j].tanh();
                o.data_mut()[b * hsz + j] = sigmoid(pre.data()[base + 3 * hsz + j]);
            }
        }
        let c_new = f.hadamard(&state.c)?.add(&i.hadamard(&g)?)?;
        let tanh_c = c_new.map(|v| v.tanh());
        let h_new = o.hadamard(&tanh_c)?;
        self.steps.push(LstmStepCache {
            proj: proj_cache,
            h_in: state.h.clone(),
            c_in: state.c.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        });
        Ok(CellState { h: h_new, c: c_new })
    }

    fn step_backward(&mut self, grad: &StateGrad) -> Result<(Tensor<f32>, StateGrad)> {
        let cache = self.steps.pop().ok_or(TensorError::InvalidArgument {
            message: "no cached LSTM step to backpropagate".into(),
        })?;
        let hsz = self.hidden;
        let bsz = grad.dh.dims()[0];
        // dc_total = dc_in_future + dh ⊙ o ⊙ (1 − tanh²(c))
        let dtanh = grad
            .dh
            .hadamard(&cache.o)?
            .zip_with(&cache.tanh_c, |v, tc| v * (1.0 - tc * tc))?;
        let dc_total = grad.dc.add(&dtanh)?;
        let do_ = grad.dh.hadamard(&cache.tanh_c)?;
        let di = dc_total.hadamard(&cache.g)?;
        let df = dc_total.hadamard(&cache.c_in)?;
        let dg = dc_total.hadamard(&cache.i)?;
        let dc_prev = dc_total.hadamard(&cache.f)?;
        // Pre-activation gradients, fused back into [B, 4H] (i, f, g, o).
        let mut da = Tensor::zeros(vec![bsz, 4 * hsz]);
        for b in 0..bsz {
            for j in 0..hsz {
                let iv = cache.i.data()[b * hsz + j];
                let fv = cache.f.data()[b * hsz + j];
                let gv = cache.g.data()[b * hsz + j];
                let ov = cache.o.data()[b * hsz + j];
                let base = b * 4 * hsz;
                da.data_mut()[base + j] = di.data()[b * hsz + j] * iv * (1.0 - iv);
                da.data_mut()[base + hsz + j] = df.data()[b * hsz + j] * fv * (1.0 - fv);
                da.data_mut()[base + 2 * hsz + j] = dg.data()[b * hsz + j] * (1.0 - gv * gv);
                da.data_mut()[base + 3 * hsz + j] = do_.data()[b * hsz + j] * ov * (1.0 - ov);
            }
        }
        // Parameter gradients.
        let dwh = matmul_tn(&da, &cache.h_in)?;
        self.grad_wh.axpy(1.0, &dwh)?;
        for b in 0..bsz {
            for j in 0..4 * hsz {
                self.grad_b.data_mut()[j] += da.data()[b * 4 * hsz + j];
            }
        }
        let dx = self.wx.backward(&cache.proj, &da)?;
        let dh_prev = matmul(&da, &self.wh)?;
        Ok((
            dx,
            StateGrad {
                dh: dh_prev,
                dc: dc_prev,
            },
        ))
    }

    fn reset(&mut self) {
        self.steps.clear();
    }

    fn describe(&self) -> String {
        let kind = match &self.wx {
            InputProjection::Dense { .. } => "dense",
            InputProjection::Tt { .. } => "tt",
        };
        format!(
            "lstm ({kind} input {}->{} + hidden {})",
            self.input_size(),
            4 * self.hidden,
            self.hidden
        )
    }
}

// ----------------------------------------------------------------- GRU --

#[derive(Debug, Clone)]
struct GruStepCache {
    proj: ProjectionCache,
    h_in: Tensor<f32>,
    r: Tensor<f32>,
    z: Tensor<f32>,
    n: Tensor<f32>,
    uh: Tensor<f32>, // U_n · h_in (needed for dr)
}

/// A GRU cell; gate order in the fused `3H` dimension is `r, z, n`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wx: InputProjection,
    /// Hidden-to-hidden for r and z gates `[2H, H]`.
    wh_rz: Tensor<f32>,
    /// Hidden-to-hidden for the candidate `[H, H]`.
    wh_n: Tensor<f32>,
    b: Tensor<f32>,
    grad_wh_rz: Tensor<f32>,
    grad_wh_n: Tensor<f32>,
    grad_b: Tensor<f32>,
    hidden: usize,
    steps: Vec<GruStepCache>,
}

impl GruCell {
    /// GRU with a dense input projection.
    pub fn dense<R: Rng>(rng: &mut R, input: usize, hidden: usize) -> Self {
        let wx = InputProjection::dense(rng, input, 3 * hidden);
        Self::with_projection(rng, wx, hidden)
    }

    /// GRU with a TT-compressed input projection (row modes multiply to
    /// `3·hidden`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on a layout mismatch.
    pub fn tt<R: Rng>(rng: &mut R, shape: &TtShape, hidden: usize) -> Result<Self> {
        if shape.num_rows() != 3 * hidden {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "TT row modes multiply to {}, need 3H = {}",
                    shape.num_rows(),
                    3 * hidden
                ),
            });
        }
        let wx = InputProjection::tt(rng, shape);
        Ok(Self::with_projection(rng, wx, hidden))
    }

    fn with_projection<R: Rng>(rng: &mut R, wx: InputProjection, hidden: usize) -> Self {
        let wh_rz = tie_tensor::init::glorot_uniform(rng, 2 * hidden, hidden);
        let wh_n = tie_tensor::init::glorot_uniform(rng, hidden, hidden);
        GruCell {
            grad_wh_rz: Tensor::zeros(wh_rz.dims().to_vec()),
            grad_wh_n: Tensor::zeros(wh_n.dims().to_vec()),
            wh_rz,
            wh_n,
            b: Tensor::zeros(vec![3 * hidden]),
            grad_b: Tensor::zeros(vec![3 * hidden]),
            wx,
            hidden,
            steps: Vec::new(),
        }
    }

    /// The input projection (for compression accounting).
    pub fn input_projection(&self) -> &InputProjection {
        &self.wx
    }
}

impl Trainable for GruCell {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        self.wx.visit_params(f);
        f(&mut self.wh_rz, &mut self.grad_wh_rz);
        f(&mut self.wh_n, &mut self.grad_wh_n);
        f(&mut self.b, &mut self.grad_b);
    }
}

impl RecurrentCell for GruCell {
    fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn input_size(&self) -> usize {
        self.wx.in_features()
    }

    fn step(&mut self, x: &Tensor<f32>, state: &CellState) -> Result<CellState> {
        let hsz = self.hidden;
        let bsz = x.dims()[0];
        let (xw, proj_cache) = self.wx.forward(x)?; // [B, 3H]: (r, z, n)
        let hw_rz = matmul_nt(&state.h, &self.wh_rz)?; // [B, 2H]
        let uh = matmul_nt(&state.h, &self.wh_n)?; // [B, H]
        let mut r = Tensor::zeros(vec![bsz, hsz]);
        let mut z = Tensor::zeros(vec![bsz, hsz]);
        let mut n = Tensor::zeros(vec![bsz, hsz]);
        for b in 0..bsz {
            for j in 0..hsz {
                let xb = b * 3 * hsz;
                let rv =
                    sigmoid(xw.data()[xb + j] + hw_rz.data()[b * 2 * hsz + j] + self.b.data()[j]);
                let zv = sigmoid(
                    xw.data()[xb + hsz + j]
                        + hw_rz.data()[b * 2 * hsz + hsz + j]
                        + self.b.data()[hsz + j],
                );
                let nv = (xw.data()[xb + 2 * hsz + j]
                    + rv * uh.data()[b * hsz + j]
                    + self.b.data()[2 * hsz + j])
                    .tanh();
                r.data_mut()[b * hsz + j] = rv;
                z.data_mut()[b * hsz + j] = zv;
                n.data_mut()[b * hsz + j] = nv;
            }
        }
        // h' = (1 − z)·n + z·h
        let mut h_new = Tensor::zeros(vec![bsz, hsz]);
        for idx in 0..bsz * hsz {
            h_new.data_mut()[idx] =
                (1.0 - z.data()[idx]) * n.data()[idx] + z.data()[idx] * state.h.data()[idx];
        }
        self.steps.push(GruStepCache {
            proj: proj_cache,
            h_in: state.h.clone(),
            r,
            z,
            n,
            uh,
        });
        Ok(CellState {
            h: h_new,
            c: Tensor::zeros(vec![bsz, hsz]),
        })
    }

    fn step_backward(&mut self, grad: &StateGrad) -> Result<(Tensor<f32>, StateGrad)> {
        let cache = self.steps.pop().ok_or(TensorError::InvalidArgument {
            message: "no cached GRU step to backpropagate".into(),
        })?;
        let hsz = self.hidden;
        let bsz = grad.dh.dims()[0];
        let mut da = Tensor::zeros(vec![bsz, 3 * hsz]); // pre-activation (r, z, n)
        let mut dh_prev = Tensor::zeros(vec![bsz, hsz]);
        let mut duh = Tensor::zeros(vec![bsz, hsz]);
        for b in 0..bsz {
            for j in 0..hsz {
                let idx = b * hsz + j;
                let (rv, zv, nv) = (
                    cache.r.data()[idx],
                    cache.z.data()[idx],
                    cache.n.data()[idx],
                );
                let dh = grad.dh.data()[idx];
                let dz = dh * (cache.h_in.data()[idx] - nv);
                let dn = dh * (1.0 - zv);
                dh_prev.data_mut()[idx] += dh * zv;
                let dan = dn * (1.0 - nv * nv);
                let dr = dan * cache.uh.data()[idx];
                duh.data_mut()[idx] = dan * rv;
                let dar = dr * rv * (1.0 - rv);
                let daz = dz * zv * (1.0 - zv);
                let base = b * 3 * hsz;
                da.data_mut()[base + j] = dar;
                da.data_mut()[base + hsz + j] = daz;
                da.data_mut()[base + 2 * hsz + j] = dan;
            }
        }
        // Parameter gradients.
        let da_rz = da.cols(0, 2 * hsz)?;
        let dwh_rz = matmul_tn(&da_rz, &cache.h_in)?;
        self.grad_wh_rz.axpy(1.0, &dwh_rz)?;
        let dwh_n = matmul_tn(&duh, &cache.h_in)?;
        self.grad_wh_n.axpy(1.0, &dwh_n)?;
        for b in 0..bsz {
            for j in 0..3 * hsz {
                self.grad_b.data_mut()[j] += da.data()[b * 3 * hsz + j];
            }
        }
        // Input and recurrent gradients.
        let dx = self.wx.backward(&cache.proj, &da)?;
        dh_prev.axpy(1.0, &matmul(&da_rz, &self.wh_rz)?)?;
        dh_prev.axpy(1.0, &matmul(&duh, &self.wh_n)?)?;
        Ok((
            dx,
            StateGrad {
                dh: dh_prev,
                dc: Tensor::zeros(vec![bsz, hsz]),
            },
        ))
    }

    fn reset(&mut self) {
        self.steps.clear();
    }

    fn describe(&self) -> String {
        let kind = match &self.wx {
            InputProjection::Dense { .. } => "dense",
            InputProjection::Tt { .. } => "tt",
        };
        format!(
            "gru ({kind} input {}->{} + hidden {})",
            self.input_size(),
            3 * self.hidden,
            self.hidden
        )
    }
}

// ------------------------------------------------------- classifier ----

/// A sequence classifier: recurrent cell over `[T, B, N]` input, dense
/// readout of the last hidden state — the Table 3 experimental shape
/// (video classification from frame features).
#[derive(Debug)]
pub struct SequenceClassifier<C: RecurrentCell> {
    cell: C,
    head: Dense,
    steps_run: usize,
}

impl<C: RecurrentCell> SequenceClassifier<C> {
    /// Wraps a cell with a `hidden → classes` readout.
    pub fn new<R: Rng>(rng: &mut R, cell: C, classes: usize) -> Self {
        let head = Dense::new(rng, cell.hidden_size(), classes);
        SequenceClassifier {
            cell,
            head,
            steps_run: 0,
        }
    }

    /// The wrapped cell.
    pub fn cell(&self) -> &C {
        &self.cell
    }

    /// Forward over a sequence tensor `[T, B, N]`; returns logits `[B, K]`.
    ///
    /// # Errors
    ///
    /// Shape errors for non-3-D input or width mismatch.
    pub fn forward(&mut self, seq: &Tensor<f32>) -> Result<Tensor<f32>> {
        if seq.ndim() != 3 || seq.dims()[2] != self.cell.input_size() {
            return Err(TensorError::ShapeMismatch {
                left: seq.dims().to_vec(),
                right: vec![0, 0, self.cell.input_size()],
            });
        }
        let (t_len, bsz, n) = (seq.dims()[0], seq.dims()[1], seq.dims()[2]);
        self.cell.reset();
        let mut state = CellState::zeros(bsz, self.cell.hidden_size());
        for t in 0..t_len {
            let xt = Tensor::from_vec(
                vec![bsz, n],
                seq.data()[t * bsz * n..(t + 1) * bsz * n].to_vec(),
            )?;
            state = self.cell.step(&xt, &state)?;
        }
        self.steps_run = t_len;
        self.head.forward(&state.h)
    }

    /// Backward from logits gradient through the head and all timesteps.
    ///
    /// # Errors
    ///
    /// Invalid-argument error when called before `forward`.
    pub fn backward(&mut self, grad_logits: &Tensor<f32>) -> Result<()> {
        if self.steps_run == 0 {
            return Err(TensorError::InvalidArgument {
                message: "backward called before forward".into(),
            });
        }
        let dh_last = self.head.backward(grad_logits)?;
        let bsz = dh_last.dims()[0];
        let mut grad = StateGrad {
            dh: dh_last,
            dc: Tensor::zeros(vec![bsz, self.cell.hidden_size()]),
        };
        for _ in 0..self.steps_run {
            let (_dx, prev) = self.cell.step_backward(&grad)?;
            grad = prev;
        }
        self.steps_run = 0;
        Ok(())
    }
}

impl<C: RecurrentCell> Trainable for SequenceClassifier<C> {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        self.cell.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{accuracy, softmax_cross_entropy};
    use crate::Sgd;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    fn lstm_loss(cell: &mut LstmCell, seq: &[Tensor<f32>], bsz: usize) -> f64 {
        cell.reset();
        let mut state = CellState::zeros(bsz, cell.hidden_size());
        for x in seq {
            state = cell.step(x, &state).unwrap();
        }
        state
            .h
            .data()
            .iter()
            .map(|&v| 0.5 * (v as f64) * (v as f64))
            .sum()
    }

    #[test]
    fn lstm_bptt_input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(130);
        let mut cell = LstmCell::dense(&mut rng, 3, 4);
        let bsz = 2;
        let seq: Vec<Tensor<f32>> = (0..3)
            .map(|_| init::uniform(&mut rng, vec![bsz, 3], 1.0))
            .collect();
        // Forward, loss = 0.5‖h_T‖².
        cell.reset();
        let mut state = CellState::zeros(bsz, 4);
        for x in &seq {
            state = cell.step(x, &state).unwrap();
        }
        // Backward with dh = h_T.
        let mut grad = StateGrad {
            dh: state.h.clone(),
            dc: Tensor::zeros(vec![bsz, 4]),
        };
        let mut dxs = Vec::new();
        for _ in 0..3 {
            let (dx, prev) = cell.step_backward(&grad).unwrap();
            dxs.push(dx);
            grad = prev;
        }
        dxs.reverse(); // dxs[t] now matches seq[t]
        let eps = 1e-2f32;
        for t in 0..3 {
            for i in 0..seq[t].num_elements() {
                let mut sp = seq.clone();
                sp[t].data_mut()[i] += eps;
                let mut sm = seq.clone();
                sm[t].data_mut()[i] -= eps;
                let numeric = (lstm_loss(&mut cell, &sp, bsz) - lstm_loss(&mut cell, &sm, bsz))
                    / (2.0 * eps as f64);
                let analytic = dxs[t].data()[i] as f64;
                assert!(
                    (numeric - analytic).abs() <= 2e-2 * (1.0 + numeric.abs()),
                    "t={t} i={i}: numeric {numeric} analytic {analytic}"
                );
            }
        }
    }

    fn make_sequences(
        rng: &mut ChaCha8Rng,
        classes: usize,
        t_len: usize,
        bsz: usize,
        dim: usize,
        labels: &[usize],
    ) -> Tensor<f32> {
        // Class-dependent direction + noise: linearly separable through time.
        let patterns: Vec<Tensor<f32>> = (0..classes)
            .map(|_| init::uniform::<f32, _>(rng, vec![dim], 1.0))
            .collect();
        let mut seq = Tensor::zeros(vec![t_len, bsz, dim]);
        for t in 0..t_len {
            for b in 0..bsz {
                let noise: Tensor<f32> = init::uniform(rng, vec![dim], 0.3);
                for j in 0..dim {
                    seq.data_mut()[(t * bsz + b) * dim + j] =
                        patterns[labels[b]].data()[j] + noise.data()[j];
                }
            }
        }
        seq
    }

    #[test]
    fn lstm_classifier_learns_synthetic_sequences() {
        let mut rng = ChaCha8Rng::seed_from_u64(131);
        let (classes, t_len, bsz, dim) = (3usize, 5usize, 12usize, 8usize);
        let labels: Vec<usize> = (0..bsz).map(|b| b % classes).collect();
        let seq = make_sequences(&mut rng, classes, t_len, bsz, dim, &labels);
        let cell = LstmCell::dense(&mut rng, dim, 16);
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last_acc = 0.0;
        for _ in 0..120 {
            let logits = clf.forward(&seq).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            last_acc = accuracy(&logits, &labels);
            if last_acc == 1.0 {
                break;
            }
            clf.zero_grads();
            clf.backward(&l.grad).unwrap();
            opt.step(&mut clf);
        }
        assert!(last_acc >= 0.9, "LSTM failed to fit: acc {last_acc}");
    }

    #[test]
    fn tt_lstm_classifier_learns_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(132);
        let (classes, t_len, bsz) = (2usize, 4usize, 8usize);
        // input dim 2*3*4 = 24, hidden 4 => 4H = 16 = 2*2*4
        let shape = TtShape::uniform_rank(vec![2, 2, 4], vec![2, 3, 4], 2).unwrap();
        let labels: Vec<usize> = (0..bsz).map(|b| b % classes).collect();
        let seq = make_sequences(&mut rng, classes, t_len, bsz, 24, &labels);
        let cell = LstmCell::tt(&mut rng, &shape, 4).unwrap();
        assert!(cell.input_projection().stored_params() < 24 * 16);
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last_acc = 0.0;
        for _ in 0..200 {
            let logits = clf.forward(&seq).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            last_acc = accuracy(&logits, &labels);
            if last_acc == 1.0 {
                break;
            }
            clf.zero_grads();
            clf.backward(&l.grad).unwrap();
            opt.step(&mut clf);
        }
        assert!(last_acc >= 0.9, "TT-LSTM failed to fit: acc {last_acc}");
    }

    #[test]
    fn gru_classifier_learns_synthetic_sequences() {
        let mut rng = ChaCha8Rng::seed_from_u64(133);
        let (classes, t_len, bsz, dim) = (2usize, 4usize, 8usize, 6usize);
        let labels: Vec<usize> = (0..bsz).map(|b| b % classes).collect();
        let seq = make_sequences(&mut rng, classes, t_len, bsz, dim, &labels);
        let cell = GruCell::dense(&mut rng, dim, 10);
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last_acc = 0.0;
        for _ in 0..150 {
            let logits = clf.forward(&seq).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            last_acc = accuracy(&logits, &labels);
            if last_acc == 1.0 {
                break;
            }
            clf.zero_grads();
            clf.backward(&l.grad).unwrap();
            opt.step(&mut clf);
        }
        assert!(last_acc >= 0.9, "GRU failed to fit: acc {last_acc}");
    }

    #[test]
    fn gru_bptt_input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(134);
        let mut cell = GruCell::dense(&mut rng, 3, 4);
        let bsz = 2;
        let seq: Vec<Tensor<f32>> = (0..2)
            .map(|_| init::uniform(&mut rng, vec![bsz, 3], 1.0))
            .collect();
        let loss = |cell: &mut GruCell, seq: &[Tensor<f32>]| -> f64 {
            cell.reset();
            let mut state = CellState::zeros(bsz, 4);
            for x in seq {
                state = cell.step(x, &state).unwrap();
            }
            state
                .h
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum()
        };
        cell.reset();
        let mut state = CellState::zeros(bsz, 4);
        for x in &seq {
            state = cell.step(x, &state).unwrap();
        }
        let mut grad = StateGrad {
            dh: state.h.clone(),
            dc: Tensor::zeros(vec![bsz, 4]),
        };
        let mut dxs = Vec::new();
        for _ in 0..2 {
            let (dx, prev) = cell.step_backward(&grad).unwrap();
            dxs.push(dx);
            grad = prev;
        }
        dxs.reverse();
        let eps = 1e-2f32;
        for t in 0..2 {
            for i in 0..seq[t].num_elements() {
                let mut sp = seq.clone();
                sp[t].data_mut()[i] += eps;
                let mut sm = seq.clone();
                sm[t].data_mut()[i] -= eps;
                let numeric = (loss(&mut cell, &sp) - loss(&mut cell, &sm)) / (2.0 * eps as f64);
                let analytic = dxs[t].data()[i] as f64;
                assert!(
                    (numeric - analytic).abs() <= 2e-2 * (1.0 + numeric.abs()),
                    "t={t} i={i}: numeric {numeric} analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn tt_gru_classifier_learns_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(137);
        let (classes, t_len, bsz) = (2usize, 4usize, 8usize);
        // input dim 24, hidden 4 => 3H = 12 = 3*2*2
        let shape = TtShape::uniform_rank(vec![3, 2, 2], vec![2, 3, 4], 2).unwrap();
        let labels: Vec<usize> = (0..bsz).map(|b| b % classes).collect();
        let seq = make_sequences(&mut rng, classes, t_len, bsz, 24, &labels);
        let cell = GruCell::tt(&mut rng, &shape, 4).unwrap();
        assert!(cell.input_projection().stored_params() < 24 * 12);
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Sgd::with_momentum(0.05, 0.9);
        let mut last_acc = 0.0;
        for _ in 0..200 {
            let logits = clf.forward(&seq).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            last_acc = accuracy(&logits, &labels);
            if last_acc == 1.0 {
                break;
            }
            clf.zero_grads();
            clf.backward(&l.grad).unwrap();
            opt.step(&mut clf);
        }
        assert!(last_acc >= 0.9, "TT-GRU failed to fit: acc {last_acc}");
    }

    #[test]
    fn adam_trains_a_tt_lstm_classifier() {
        use crate::Adam;
        let mut rng = ChaCha8Rng::seed_from_u64(138);
        let (classes, t_len, bsz) = (2usize, 4usize, 8usize);
        let shape = TtShape::uniform_rank(vec![2, 2, 4], vec![2, 3, 4], 2).unwrap();
        let labels: Vec<usize> = (0..bsz).map(|b| b % classes).collect();
        let seq = make_sequences(&mut rng, classes, t_len, bsz, 24, &labels);
        let cell = LstmCell::tt(&mut rng, &shape, 4).unwrap();
        let mut clf = SequenceClassifier::new(&mut rng, cell, classes);
        let mut opt = Adam::new(0.02);
        let mut last_acc = 0.0;
        for _ in 0..150 {
            let logits = clf.forward(&seq).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            last_acc = accuracy(&logits, &labels);
            if last_acc == 1.0 {
                break;
            }
            clf.zero_grads();
            clf.backward(&l.grad).unwrap();
            opt.step(&mut clf);
        }
        assert!(last_acc >= 0.9, "Adam + TT-LSTM failed: acc {last_acc}");
    }

    #[test]
    fn tt_cell_constructors_validate_layout() {
        let mut rng = ChaCha8Rng::seed_from_u64(135);
        let bad = TtShape::uniform_rank(vec![2, 2], vec![2, 3], 2).unwrap(); // rows = 4
        assert!(LstmCell::tt(&mut rng, &bad, 4).is_err()); // needs 16
        assert!(GruCell::tt(&mut rng, &bad, 4).is_err()); // needs 12
    }

    #[test]
    fn step_backward_without_step_errors() {
        let mut rng = ChaCha8Rng::seed_from_u64(136);
        let mut cell = LstmCell::dense(&mut rng, 2, 3);
        let g = StateGrad::zeros(1, 3);
        assert!(cell.step_backward(&g).is_err());
    }
}
