use crate::layer::{Layer, Trainable};
use tie_tensor::{Result, Tensor, TensorError};

/// A flattening layer `[B, …] → [B, ∏…]` — the conv-to-classifier bridge
/// of every CNN in the model zoo.
#[derive(Debug, Default, Clone)]
pub struct Flatten {
    cached_dims: Option<Vec<usize>>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Trainable for Flatten {
    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {}
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        if x.ndim() < 2 {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![0, 0],
            });
        }
        self.cached_dims = Some(x.dims().to_vec());
        let b = x.dims()[0];
        x.reshaped(vec![b, x.num_elements() / b])
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let dims = self
            .cached_dims
            .clone()
            .ok_or(TensorError::InvalidArgument {
                message: "backward called before forward".into(),
            })?;
        grad_out.reshaped(dims)
    }

    fn describe(&self) -> String {
        "flatten".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens_and_backward_restores() {
        let mut f = Flatten::new();
        let x = Tensor::<f32>::from_fn(vec![2, 3, 4, 5], |i| (i[0] + i[3]) as f32).unwrap();
        let y = f.forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 60]);
        let back = f.backward(&y).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::<f32>::zeros(vec![1, 2])).is_err());
        assert!(f.forward(&Tensor::<f32>::zeros(vec![4])).is_err());
    }

    #[test]
    fn has_no_parameters() {
        let mut f = Flatten::new();
        assert_eq!(f.num_params(), 0);
    }
}
