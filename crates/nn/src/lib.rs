//! Neural-network substrate for the TIE reproduction.
//!
//! The TIE paper evaluates TT-compressed layers inside real networks:
//! FC-dominated CNNs (TT-VGG-16, Table 1), CONV-dominated CNNs (Table 2)
//! and TT-LSTM/GRU video classifiers (Table 3). This crate provides the
//! network machinery those experiments need, built on `tie-tensor` /
//! `tie-tt` / `tie-core`:
//!
//! * [`Layer`] / [`Trainable`] — the forward/backward module contract,
//! * [`Dense`], [`TtDense`] — fully-connected layers; the TT variant runs
//!   the compact inference scheme forward and an exact stage-wise backward
//!   pass (gradients flow through the same transforms, transposed),
//! * [`Conv2d`], [`TtConv2d`] — convolution via im2col (paper Fig. 3) and
//!   its TT-compressed form,
//! * [`rnn`] — LSTM/GRU cells and sequence classifiers, with TT-compressed
//!   input-to-hidden matrices (the paper's Table 3/4 RNN workloads),
//! * activations, pooling, losses, SGD, [`Sequential`] containers,
//! * [`data`] — deterministic synthetic datasets for the accuracy-analog
//!   experiments,
//! * [`zoo`] — the exact layer/TT configurations quoted in the paper
//!   (§2.3 and Table 4).
//!
//! Everything trains in `f32`; quantized inference is handled by
//! `tie-quant`/`tie-sim` downstream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activations;
mod adam;
mod dense;
mod flatten;
mod layer;
mod network;
mod optimizer;
mod pool;
mod tt_dense;

pub mod conv;
pub mod loss;

pub mod data;
pub mod rnn;
pub mod zoo;

pub use activations::{Relu, Sigmoid, Tanh};
pub use adam::Adam;
pub use conv::{Conv2d, ConvGeometry, TtConv2d};
pub use dense::Dense;
pub use flatten::Flatten;
pub use layer::{Layer, Trainable};
pub use loss::{accuracy, mse_loss, softmax_cross_entropy, LossValue};
pub use network::Sequential;
pub use optimizer::Sgd;
pub use pool::MaxPool2d;
pub use tt_dense::{
    tt_layer_backward, tt_layer_forward, tt_layer_forward_fused, TtDense, TtLayerCache,
};

pub use tie_tensor::{Result, TensorError};
