use crate::layer::{Layer, Trainable};
use tie_tensor::{Result, Tensor};

/// A sequential stack of layers.
///
/// # Example
///
/// ```
/// use tie_nn::{Dense, Relu, Sequential, Layer};
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let mut net = Sequential::new();
/// net.push(Dense::new(&mut rng, 8, 16));
/// net.push(Relu::new());
/// net.push(Dense::new(&mut rng, 16, 3));
/// let x = tie_tensor::Tensor::<f32>::zeros(vec![2, 8]);
/// let y = net.forward(&x).unwrap();
/// assert_eq!(y.dims(), &[2, 3]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// One-line per-layer summary.
    pub fn summary(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl Trainable for Sequential {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut v = x.clone();
        for layer in &mut self.layers {
            v = layer.forward(&v)?;
        }
        Ok(v)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    fn describe(&self) -> String {
        format!("sequential ({} layers)", self.layers.len())
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("layers", &self.summary())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{loss::softmax_cross_entropy, Dense, Relu, Sgd};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empty_network_is_identity() {
        let mut net = Sequential::new();
        assert!(net.is_empty());
        let x = Tensor::<f32>::from_vec(vec![1, 2], vec![1.0, 2.0]).unwrap();
        assert_eq!(net.forward(&x).unwrap(), x);
        assert_eq!(net.backward(&x).unwrap(), x);
    }

    #[test]
    fn mlp_learns_xor() {
        // The classic nonlinear sanity check: an MLP must fit XOR.
        let mut rng = ChaCha8Rng::seed_from_u64(120);
        let mut net = Sequential::new();
        net.push(Dense::new(&mut rng, 2, 16));
        net.push(Relu::new());
        net.push(Dense::new(&mut rng, 16, 2));
        let x = Tensor::<f32>::from_vec(vec![4, 2], vec![0., 0., 0., 1., 1., 0., 1., 1.]).unwrap();
        let labels = [0usize, 1, 1, 0];
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        let mut final_loss = f64::INFINITY;
        for _ in 0..500 {
            let logits = net.forward(&x).unwrap();
            let l = softmax_cross_entropy(&logits, &labels).unwrap();
            final_loss = l.loss;
            net.zero_grads();
            net.backward(&l.grad).unwrap();
            opt.step(&mut net);
        }
        assert!(final_loss < 0.05, "XOR did not converge: loss {final_loss}");
        let logits = net.forward(&x).unwrap();
        assert_eq!(crate::loss::accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn summary_lists_layers() {
        let mut rng = ChaCha8Rng::seed_from_u64(121);
        let mut net = Sequential::new();
        net.push(Dense::new(&mut rng, 2, 3));
        net.push(Relu::new());
        let s = net.summary();
        assert!(s.contains("dense 2->3") && s.contains("relu"));
        assert_eq!(net.len(), 2);
    }
}
