use crate::layer::{Layer, Trainable};
use tie_core::indexmap::{assemble_dest_map, stage_dest_map};
use tie_core::transform::{
    assemble_output_gather, fold_core, prepare_input_scatter, unfold_core, TransformMap,
};
use tie_core::{Activation, InferencePlan};
use tie_tensor::linalg::{gemm_into_mapped, gemm_into_mapped_fused, matmul, matmul_nt, matmul_tn};
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::{TtMatrix, TtShape};

use rand::Rng;

/// Forward-pass cache of one TT-layer batch (everything the exact backward
/// pass needs).
#[derive(Debug, Clone)]
pub struct TtLayerCache {
    /// `stage_inputs[idx]` is the **batched** `V'_{h+1}` for execution
    /// index `idx` (`idx = 0` ⇔ `h = d`): a `gtilde_cols × (v_cols·B)`
    /// matrix with the batch index inner-most.
    stage_inputs: Vec<Tensor<f32>>,
    /// Batch size the cache was built for.
    batch: usize,
}

/// Functional TT-layer forward: `Y = X Wᵀ` where `W` is given by 4-D TT
/// cores (no bias). Runs **one batch-wide compact pass** — each of the `d`
/// stages is a single GEMM over the whole minibatch, with the batch index
/// riding inner-most so the inter-stage transforms are contiguous block
/// copies — and returns the cache for [`tt_layer_backward`].
///
/// `x` is batch-major `[B, N]`; the result is `[B, M]`. Per sample, the
/// arithmetic (and its floating-point order) is identical to running the
/// compact scheme one sample at a time.
///
/// # Errors
///
/// Returns shape errors for mismatched inputs.
pub fn tt_layer_forward(
    cores: &[Tensor<f32>],
    shape: &TtShape,
    x: &Tensor<f32>,
) -> Result<(Tensor<f32>, TtLayerCache)> {
    let (n, m, d) = (shape.num_cols(), shape.num_rows(), shape.ndim());
    if x.ndim() != 2 || x.dims()[1] != n {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![0, n],
        });
    }
    let bsz = x.dims()[0];
    let gtildes: Vec<Tensor<f32>> = cores.iter().map(unfold_core).collect::<Result<_>>()?;
    let transforms: Vec<TransformMap> = (2..=d)
        .rev()
        .map(|h| TransformMap::new(shape, h))
        .collect::<Result<_>>()?;
    // Batched prepare (Eqn. (8)): X' with batch inner-most. The input is
    // batch-major, so this is a scatter per sample.
    let scatter = prepare_input_scatter(shape);
    let n_d = shape.col_modes[d - 1];
    let mut v = Tensor::<f32>::zeros(vec![n_d, (n / n_d) * bsz]);
    for b in 0..bsz {
        let row = x.row(b);
        for (j, &dst) in scatter.iter().enumerate() {
            v.data_mut()[dst * bsz + b] = row[j];
        }
    }
    let mut stage_inputs = Vec::with_capacity(d);
    for (idx, h) in (1..=d).rev().enumerate() {
        stage_inputs.push(v.clone());
        // One GEMM covers the whole batch: the batched intermediate is
        // gtilde_cols × (v_cols·B).
        let out = matmul(&gtildes[h - 1], &v)?;
        v = if h >= 2 {
            transforms[idx].apply_batched(&out, bsz)?
        } else {
            out
        };
    }
    // Batched assemble: gather each sample's rows out of V_1.
    let out_gather = assemble_output_gather(shape);
    let mut y = Tensor::zeros(vec![bsz, m]);
    for b in 0..bsz {
        for (i, &src) in out_gather.iter().enumerate() {
            y.data_mut()[b * m + i] = v.data()[src * bsz + b];
        }
    }
    Ok((
        y,
        TtLayerCache {
            stage_inputs,
            batch: bsz,
        },
    ))
}

/// [`tt_layer_forward`] with the bias and activation **fused into the
/// final stage's GEMM write loop** — the TIE PE's one-pass output scheme.
/// Every stage GEMM scatters straight into the next stage's layout through
/// the composed [`tie_core::indexmap`] map (no transform pass), and the
/// `h = 1` stage applies `bias` + `activation` at the finished accumulator
/// while assembling the output, so the separate bias/activation sweep over
/// `Y` no longer exists. One transpose converts the assembled element-major
/// codes to the layer's batch-major `[B, M]`.
///
/// Per output element the scalar arithmetic (and its order) is identical
/// to [`tt_layer_forward`] followed by a separate `+ bias` / ReLU pass, so
/// outputs and the backward cache are **bit-identical** to that
/// composition.
///
/// # Errors
///
/// Returns shape errors for mismatched inputs or a bias that is not `M`
/// elements.
pub fn tt_layer_forward_fused(
    cores: &[Tensor<f32>],
    shape: &TtShape,
    x: &Tensor<f32>,
    bias: Option<&[f32]>,
    activation: Activation,
) -> Result<(Tensor<f32>, TtLayerCache)> {
    let (n, m, d) = (shape.num_cols(), shape.num_rows(), shape.ndim());
    if x.ndim() != 2 || x.dims()[1] != n {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![0, n],
        });
    }
    if let Some(bias) = bias {
        if bias.len() != m {
            return Err(TensorError::ShapeMismatch {
                left: vec![bias.len()],
                right: vec![m],
            });
        }
    }
    let bsz = x.dims()[0];
    let gtildes: Vec<Tensor<f32>> = cores.iter().map(unfold_core).collect::<Result<_>>()?;
    let plan = InferencePlan::new(shape)?.with_activation(activation);
    // Batched prepare (Eqn. (8)): X' with batch inner-most.
    let scatter = prepare_input_scatter(shape);
    let n_d = shape.col_modes[d - 1];
    let mut v = Tensor::<f32>::zeros(vec![n_d, (n / n_d) * bsz]);
    for b in 0..bsz {
        let row = x.row(b);
        for (j, &dst) in scatter.iter().enumerate() {
            v.data_mut()[dst * bsz + b] = row[j];
        }
    }
    let mut stage_inputs = Vec::with_capacity(d);
    // Assembled element-major M × bsz output; transposed to [B, M] below.
    let mut assembled = vec![0.0f32; m * bsz];
    for (idx, h) in (1..=d).rev().enumerate() {
        let stage = &plan.stages()[idx];
        let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
        stage_inputs.push(v.clone());
        if h >= 2 {
            // The GEMM's write loop evaluates the composed Transform map:
            // codes land directly in the next stage's V' layout.
            let map = stage_dest_map(shape, h)?;
            let next = &plan.stages()[idx + 1];
            let mut out = Tensor::<f32>::zeros(vec![next.gtilde_cols, next.v_cols * bsz]);
            gemm_into_mapped(
                gtildes[h - 1].data(),
                &v.data()[..k * cols * bsz],
                out.data_mut(),
                rows,
                k,
                cols,
                bsz,
                &map,
            )?;
            v = out;
        } else {
            // Final stage: bias + activation fuse into the same store that
            // assembles the output.
            let map = assemble_dest_map(shape)?;
            gemm_into_mapped_fused(
                gtildes[h - 1].data(),
                &v.data()[..k * cols * bsz],
                &mut assembled,
                rows,
                k,
                cols,
                bsz,
                &map,
                bias,
                activation,
            )?;
        }
    }
    let mut y = Tensor::zeros(vec![bsz, m]);
    for b in 0..bsz {
        for o in 0..m {
            y.data_mut()[b * m + o] = assembled[o * bsz + b];
        }
    }
    Ok((
        y,
        TtLayerCache {
            stage_inputs,
            batch: bsz,
        },
    ))
}

/// Functional TT-layer backward: given upstream gradients `grad_y [B, M]`
/// and the forward cache, returns `(grad_x [B, N], grad_cores)` where
/// `grad_cores[k]` matches core `k`'s 4-D layout.
///
/// Gradients flow through the *same* stage structure, transposed: the
/// inter-stage transforms are permutations, so their adjoints are their
/// inverses, and each stage contributes `dG̃_h = dV_h · V'ᵀ_{h+1}` and
/// `dV'_{h+1} = G̃ᵀ_h · dV_h`. With the batch inner-most in the cached
/// intermediates, the single product `dV_h · V'ᵀ_{h+1}` **sums over the
/// batch automatically** — one GEMM per stage yields the minibatch core
/// gradient, the backward mirror of the batched forward.
///
/// # Errors
///
/// Returns shape errors for mismatched inputs (including a cache from a
/// different batch size).
pub fn tt_layer_backward(
    cores: &[Tensor<f32>],
    shape: &TtShape,
    cache: &TtLayerCache,
    grad_y: &Tensor<f32>,
) -> Result<(Tensor<f32>, Vec<Tensor<f32>>)> {
    let (n, m, d) = (shape.num_cols(), shape.num_rows(), shape.ndim());
    if grad_y.ndim() != 2 || grad_y.dims()[1] != m || grad_y.dims()[0] != cache.batch {
        return Err(TensorError::ShapeMismatch {
            left: grad_y.dims().to_vec(),
            right: vec![cache.batch, m],
        });
    }
    let bsz = grad_y.dims()[0];
    let gtildes: Vec<Tensor<f32>> = cores.iter().map(unfold_core).collect::<Result<_>>()?;
    let transforms: Vec<TransformMap> = (2..=d)
        .rev()
        .map(|h| TransformMap::new(shape, h))
        .collect::<Result<_>>()?;
    // dV_1 from the output gather's adjoint, batched (batch inner-most).
    let out_gather = assemble_output_gather(shape);
    let m_1 = shape.row_modes[0];
    let mut dv = Tensor::<f32>::zeros(vec![m_1, (m / m_1) * bsz]);
    for b in 0..bsz {
        let row = grad_y.row(b);
        for (i, &src) in out_gather.iter().enumerate() {
            dv.data_mut()[src * bsz + b] = row[i];
        }
    }
    let mut grad_gtildes: Vec<Tensor<f32>> = Vec::with_capacity(d);
    let mut grad_x = Tensor::zeros(vec![bsz, n]);
    // Walk stages h = 1 .. d (reverse of execution order).
    for h in 1..=d {
        let exec_idx = d - h; // forward execution index of stage h
        let vin = &cache.stage_inputs[exec_idx];
        // dV_h · V'ᵀ_{h+1} over the batched columns: sums over the batch.
        grad_gtildes.push(matmul_nt(&dv, vin)?);
        let dvin = matmul_tn(&gtildes[h - 1], &dv)?; // G̃ᵀ_h · dV_h
        if h < d {
            // dV'_{h+1} → dV_{h+1}: invert the transform applied after
            // stage h+1 in the forward pass (execution index d-h-1).
            let t = &transforms[d - h - 1];
            debug_assert_eq!(t.h, h + 1);
            dv = t.apply_inverse_batched(&dvin, bsz)?;
        } else {
            // dX' → dx: adjoint of the batched prepare scatter.
            let scatter = prepare_input_scatter(shape);
            for b in 0..bsz {
                for (j, &src) in scatter.iter().enumerate() {
                    grad_x.data_mut()[b * n + j] = dvin.data()[src * bsz + b];
                }
            }
        }
    }
    let grad_cores = grad_gtildes
        .iter()
        .enumerate()
        .map(|(k, g)| {
            let [r0, mk, nk, r1] = shape.core_dims(k);
            fold_core(g, r0, mk, nk, r1)
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((grad_x, grad_cores))
}

/// A trainable TT-compressed fully-connected layer (with bias), the
/// building block of TT-VGG-16 and the TT-RNN input-to-hidden matrices.
#[derive(Debug, Clone)]
pub struct TtDense {
    shape: TtShape,
    cores: Vec<Tensor<f32>>,
    bias: Tensor<f32>,
    grad_cores: Vec<Tensor<f32>>,
    grad_bias: Tensor<f32>,
    cache: Option<TtLayerCache>,
    /// Activation fused into the final stage's GEMM write loop.
    activation: Activation,
    /// Post-activation output cached when `activation` needs it for the
    /// backward mask (`ReLU`: `1[y > 0]`).
    out: Option<Tensor<f32>>,
}

impl TtDense {
    /// Randomly initialized layer with variance-scaled cores: element
    /// variance is chosen so the reconstructed dense matrix matches Glorot
    /// initialization (`var(W) ≈ 2/(N+M)`), accounting for the
    /// `∏ r_k` rank paths each dense element sums over.
    pub fn new<R: Rng>(rng: &mut R, shape: &TtShape) -> Self {
        let d = shape.ndim();
        let target_var = 2.0 / (shape.num_cols() + shape.num_rows()) as f64;
        let rank_paths: f64 = shape.ranks[1..d].iter().map(|&r| r as f64).product();
        let core_sigma = (target_var / rank_paths).powf(1.0 / (2.0 * d as f64));
        let cores: Vec<Tensor<f32>> = (0..d)
            .map(|k| {
                let [r0, m, n, r1] = shape.core_dims(k);
                tie_tensor::init::normal(rng, vec![r0, m, n, r1], core_sigma)
            })
            .collect();
        let grad_cores = cores
            .iter()
            .map(|c| Tensor::zeros(c.dims().to_vec()))
            .collect();
        TtDense {
            shape: shape.clone(),
            cores,
            bias: Tensor::zeros(vec![shape.num_rows()]),
            grad_cores,
            grad_bias: Tensor::zeros(vec![shape.num_rows()]),
            cache: None,
            activation: Activation::Identity,
            out: None,
        }
    }

    /// Builds the layer from an existing [`TtMatrix`] (e.g. decomposed from
    /// a trained dense layer) with zero bias.
    pub fn from_tt_matrix(tt: &TtMatrix<f32>) -> Self {
        let shape = tt.shape().clone();
        let cores: Vec<Tensor<f32>> = tt.cores().to_vec();
        let grad_cores = cores
            .iter()
            .map(|c| Tensor::zeros(c.dims().to_vec()))
            .collect();
        let m = shape.num_rows();
        TtDense {
            shape,
            cores,
            bias: Tensor::zeros(vec![m]),
            grad_cores,
            grad_bias: Tensor::zeros(vec![m]),
            cache: None,
            activation: Activation::Identity,
            out: None,
        }
    }

    /// Selects the activation fused into the final TT stage's GEMM write
    /// loop (builder style). The backward pass masks gradients through it
    /// (`ReLU`: `1[y > 0]`), so the layer trains exactly like
    /// TT-dense-then-activation — without the separate activation sweep in
    /// the forward pass.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// The fused activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The layer's TT layout.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// Current cores as a [`TtMatrix`] (for export to the simulator).
    ///
    /// # Errors
    ///
    /// Cannot fail for a layer constructed through this type.
    pub fn to_tt_matrix(&self) -> Result<TtMatrix<f32>> {
        TtMatrix::new(self.cores.clone())
    }

    /// Stored parameter count (cores + bias).
    pub fn stored_params(&self) -> usize {
        self.shape.num_params() + self.bias.num_elements()
    }
}

impl Trainable for TtDense {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
        for (c, g) in self.cores.iter_mut().zip(&mut self.grad_cores) {
            f(c, g);
        }
        f(&mut self.bias, &mut self.grad_bias);
    }
}

impl Layer for TtDense {
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>> {
        // Bias (and the optional activation) ride the final stage's GEMM
        // write loop — no second pass over the output.
        let (y, cache) = tt_layer_forward_fused(
            &self.cores,
            &self.shape,
            x,
            Some(self.bias.data()),
            self.activation,
        )?;
        self.cache = Some(cache);
        self.out = (self.activation == Activation::Relu).then(|| y.clone());
        Ok(y)
    }

    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>> {
        let cache = self.cache.as_ref().ok_or(TensorError::InvalidArgument {
            message: "backward called before forward".into(),
        })?;
        // Gradient through the fused activation first: ReLU's derivative
        // from its own output is `1[y > 0]`.
        let masked;
        let grad_z = if self.activation == Activation::Relu {
            let y = self.out.as_ref().ok_or(TensorError::InvalidArgument {
                message: "backward called before forward".into(),
            })?;
            let mut g = grad_out.clone();
            for (gv, &yv) in g.data_mut().iter_mut().zip(y.data()) {
                if yv <= 0.0 {
                    *gv = 0.0;
                }
            }
            masked = g;
            &masked
        } else {
            grad_out
        };
        let (grad_x, grad_cores) = tt_layer_backward(&self.cores, &self.shape, cache, grad_z)?;
        for (g, dg) in self.grad_cores.iter_mut().zip(&grad_cores) {
            g.axpy(1.0, dg)?;
        }
        let (bsz, m) = (grad_z.dims()[0], grad_z.dims()[1]);
        for b in 0..bsz {
            for o in 0..m {
                self.grad_bias.data_mut()[o] += grad_z.data()[b * m + o];
            }
        }
        Ok(grad_x)
    }

    fn describe(&self) -> String {
        format!(
            "tt-dense {}->{} (d={}, {} params vs {} dense)",
            self.shape.num_cols(),
            self.shape.num_rows(),
            self.shape.ndim(),
            self.stored_params(),
            self.shape.dense_params()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;

    fn small_shape() -> TtShape {
        TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap()
    }

    #[test]
    fn forward_matches_dense_reconstruction() {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        let mut layer = TtDense::new(&mut rng, &small_shape());
        let w = layer.to_tt_matrix().unwrap().to_dense().unwrap();
        let x: Tensor<f32> = init::uniform(&mut rng, vec![3, 6], 1.0);
        let y = layer.forward(&x).unwrap();
        let want = matmul_nt(&x, &w).unwrap();
        assert!(
            y.approx_eq(&want, 1e-5),
            "max diff {}",
            y.sub(&want).unwrap().max_abs()
        );
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(101);
        let mut layer = TtDense::new(&mut rng, &small_shape());
        let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 6], 1.0);
        let y = layer.forward(&x).unwrap();
        let gx = layer.backward(&y).unwrap();
        let eps = 1e-2f32;
        for i in 0..x.num_elements() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp: f64 = layer
                .forward(&xp)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let lm: f64 = layer
                .forward(&xm)
                .unwrap()
                .data()
                .iter()
                .map(|&v| 0.5 * (v as f64) * (v as f64))
                .sum();
            let numeric = (lp - lm) / (2.0 * eps as f64);
            let analytic = gx.data()[i] as f64;
            assert!(
                (numeric - analytic).abs() <= 2e-2 * (1.0 + numeric.abs()),
                "input grad mismatch at {i}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn core_gradients_match_finite_differences() {
        let mut rng = ChaCha8Rng::seed_from_u64(102);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        let mut layer = TtDense::new(&mut rng, &shape);
        let x: Tensor<f32> = init::uniform(&mut rng, vec![2, 4], 1.0);
        let y = layer.forward(&x).unwrap();
        layer.zero_grads();
        layer.backward(&y).unwrap();
        let analytic: Vec<Tensor<f32>> = layer.grad_cores.clone();
        let eps = 1e-2f32;
        #[allow(clippy::needless_range_loop)]
        // k indexes layer.cores (mutated) and analytic together
        for k in 0..layer.cores.len() {
            for i in 0..layer.cores[k].num_elements() {
                let orig = layer.cores[k].data()[i];
                layer.cores[k].data_mut()[i] = orig + eps;
                let lp: f64 = layer
                    .forward(&x)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|&v| 0.5 * (v as f64) * (v as f64))
                    .sum();
                layer.cores[k].data_mut()[i] = orig - eps;
                let lm: f64 = layer
                    .forward(&x)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|&v| 0.5 * (v as f64) * (v as f64))
                    .sum();
                layer.cores[k].data_mut()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let got = analytic[k].data()[i] as f64;
                assert!(
                    (numeric - got).abs() <= 3e-2 * (1.0 + numeric.abs()),
                    "core {k} grad mismatch at {i}: numeric {numeric}, analytic {got}"
                );
            }
        }
    }

    #[test]
    fn gradient_descent_fits_a_linear_target() {
        // Train the TT layer to reproduce a random dense map; loss must
        // drop by >10x, demonstrating the backward pass is useful, not just
        // locally correct.
        let mut rng = ChaCha8Rng::seed_from_u64(103);
        let shape = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        let mut layer = TtDense::new(&mut rng, &shape);
        let target: Tensor<f32> = init::uniform(&mut rng, vec![4, 4], 0.5);
        let xs: Tensor<f32> = init::uniform(&mut rng, vec![16, 4], 1.0);
        let ys = matmul_nt(&xs, &target).unwrap();
        let mut first_loss = None;
        let mut last_loss = 0.0f64;
        for _ in 0..300 {
            let out = layer.forward(&xs).unwrap();
            let diff = out.sub(&ys).unwrap();
            let loss: f64 = diff
                .data()
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
                / 16.0;
            first_loss.get_or_insert(loss);
            last_loss = loss;
            layer.zero_grads();
            layer.backward(&diff).unwrap();
            layer.visit_params(&mut |p, g| {
                p.axpy(-0.02, g).unwrap();
            });
        }
        let first = first_loss.unwrap();
        assert!(
            last_loss < first / 10.0,
            "loss did not drop: {first} -> {last_loss}"
        );
    }

    #[test]
    fn bias_is_applied_and_trained() {
        let mut rng = ChaCha8Rng::seed_from_u64(104);
        let mut layer = TtDense::new(&mut rng, &small_shape());
        layer.bias.data_mut()[0] = 1.5;
        let x = Tensor::<f32>::zeros(vec![1, 6]);
        let y = layer.forward(&x).unwrap();
        assert!((y.data()[0] - 1.5).abs() < 1e-6);
        let gout = Tensor::<f32>::filled(vec![1, 6], 2.0).unwrap();
        layer.zero_grads();
        layer.backward(&gout).unwrap();
        assert!((layer.grad_bias.data()[0] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn shape_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(105);
        let mut layer = TtDense::new(&mut rng, &small_shape());
        assert!(layer.forward(&Tensor::<f32>::zeros(vec![1, 5])).is_err());
        assert!(layer.backward(&Tensor::<f32>::zeros(vec![1, 6])).is_err());
    }

    #[test]
    fn fused_forward_is_bitwise_equal_to_unfused_plus_separate_pass() {
        let mut rng = ChaCha8Rng::seed_from_u64(107);
        let shape = small_shape();
        let layer = TtDense::new(&mut rng, &shape);
        let bias: Vec<f32> = (0..shape.num_rows())
            .map(|o| (o as f32 - 2.5) * 0.3)
            .collect();
        let x: Tensor<f32> = init::uniform(&mut rng, vec![4, 6], 1.0);
        for act in [Activation::Identity, Activation::Relu] {
            let (fused, fused_cache) =
                tt_layer_forward_fused(&layer.cores, &shape, &x, Some(&bias), act).unwrap();
            // Oracle: the unfused forward, then bias and activation as a
            // separate output pass.
            let (mut want, cache) = tt_layer_forward(&layer.cores, &shape, &x).unwrap();
            let m = shape.num_rows();
            for b in 0..4 {
                for (o, &bo) in bias.iter().enumerate() {
                    let mut v = want.data()[b * m + o] + bo;
                    if act == Activation::Relu {
                        v = if v > 0.0 { v } else { 0.0 };
                    }
                    want.data_mut()[b * m + o] = v;
                }
            }
            for (got, want) in fused.data().iter().zip(want.data()) {
                assert_eq!(got.to_bits(), want.to_bits(), "act {act:?}");
            }
            // The cache feeding backward must be identical too.
            assert_eq!(fused_cache.stage_inputs.len(), cache.stage_inputs.len());
            for (a, b) in fused_cache.stage_inputs.iter().zip(&cache.stage_inputs) {
                for (va, vb) in a.data().iter().zip(b.data()) {
                    assert_eq!(va.to_bits(), vb.to_bits());
                }
            }
        }
    }

    #[test]
    fn fused_relu_backward_matches_masked_identity_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(108);
        let shape = small_shape();
        let mut plain = TtDense::new(&mut rng, &shape);
        for (i, v) in plain.bias.data_mut().iter_mut().enumerate() {
            *v = (i as f32 - 2.0) * 0.4;
        }
        let mut fused = plain.clone().with_activation(Activation::Relu);
        assert_eq!(fused.activation(), Activation::Relu);

        let x: Tensor<f32> = init::uniform(&mut rng, vec![3, 6], 1.0);
        let y_plain = plain.forward(&x).unwrap();
        let y_fused = fused.forward(&x).unwrap();
        // ReLU must have actually clipped something for the mask to matter.
        assert!(y_plain.data().iter().any(|&v| v <= 0.0));
        for (yf, yp) in y_fused.data().iter().zip(y_plain.data()) {
            let want = if *yp > 0.0 { *yp } else { 0.0 };
            assert_eq!(yf.to_bits(), want.to_bits());
        }

        let gout: Tensor<f32> = init::uniform(&mut rng, vec![3, shape.num_rows()], 1.0);
        // Oracle: mask the upstream gradient by 1[y > 0] and push it
        // through the Identity layer.
        let mut masked = gout.clone();
        for (g, &y) in masked.data_mut().iter_mut().zip(y_plain.data()) {
            if y <= 0.0 {
                *g = 0.0;
            }
        }
        plain.zero_grads();
        fused.zero_grads();
        let gx_plain = plain.backward(&masked).unwrap();
        let gx_fused = fused.backward(&gout).unwrap();
        for (a, b) in gx_fused.data().iter().zip(gx_plain.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in fused.grad_bias.data().iter().zip(plain.grad_bias.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (gf, gp) in fused.grad_cores.iter().zip(&plain.grad_cores) {
            for (a, b) in gf.data().iter().zip(gp.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn stored_params_reflect_compression() {
        let mut rng = ChaCha8Rng::seed_from_u64(106);
        let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 2).unwrap();
        let mut layer = TtDense::new(&mut rng, &shape);
        assert!(layer.stored_params() < shape.dense_params());
        assert_eq!(layer.num_params(), shape.num_params() + shape.num_rows());
    }
}
