use tie_tensor::{Result, Tensor};

/// A module with trainable parameters.
///
/// Parameters are visited as `(param, grad)` pairs in a stable order, which
/// is how [`crate::Sgd`] associates its per-parameter momentum state. The
/// visitor style avoids returning simultaneous mutable borrows.
pub trait Trainable {
    /// Visits every `(parameter, gradient)` pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>));

    /// Zeroes all gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |_, g| g.map_inplace(|_| 0.0));
    }

    /// Total trainable parameter count.
    fn num_params(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.num_elements());
        n
    }
}

/// A feed-forward network layer.
///
/// The convention is batch-major: inputs and outputs are
/// `[batch, features…]` tensors. `forward` caches whatever `backward`
/// needs; `backward` consumes the cache of the *most recent* forward call,
/// accumulates parameter gradients, and returns the gradient with respect
/// to the layer input.
pub trait Layer: Trainable {
    /// Forward pass over a batch.
    ///
    /// # Errors
    ///
    /// Returns a shape error if the input does not match the layer.
    fn forward(&mut self, x: &Tensor<f32>) -> Result<Tensor<f32>>;

    /// Backward pass; must follow a `forward` call.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `grad_out` does not match the cached
    /// forward output, or an invalid-argument error if no forward cache
    /// exists.
    fn backward(&mut self, grad_out: &Tensor<f32>) -> Result<Tensor<f32>>;

    /// Short layer description for summaries (e.g. `"dense 128->10"`).
    fn describe(&self) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Null {
        p: Tensor<f32>,
        g: Tensor<f32>,
    }

    impl Trainable for Null {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn default_zero_grads_and_num_params() {
        let mut n = Null {
            p: Tensor::zeros(vec![2, 3]),
            g: Tensor::filled(vec![2, 3], 5.0).unwrap(),
        };
        assert_eq!(n.num_params(), 6);
        n.zero_grads();
        assert!(n.g.data().iter().all(|&v| v == 0.0));
    }
}
