//! Deterministic synthetic datasets for the accuracy-analog experiments.
//!
//! The paper's Tables 1–3 quote accuracies on ImageNet / CIFAR-10 /
//! Youtube Celebrities — datasets and training budgets far beyond a
//! reproduction harness. What those tables *demonstrate* is that
//! TT-compressed layers preserve (or, for RNNs, improve) accuracy relative
//! to their dense counterparts at matched training; these generators
//! produce small, fully deterministic classification problems on which the
//! same dense-vs-TT comparison is run at tractable scale (see
//! `EXPERIMENTS.md` for the substitution rationale).

use tie_tensor::{Scalar, Tensor};

use rand::Rng;

/// A classification dataset: features `[n, dim]` plus integer labels.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Feature matrix `[n_samples, dim]`.
    pub features: Tensor<f32>,
    /// Class labels, one per row.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits into (train, test) at `train_fraction` (samples are already
    /// interleaved by class, so a prefix split is stratified).
    pub fn split(&self, train_fraction: f64) -> (Dataset, Dataset) {
        let dim = self.features.dims()[1];
        let n_train = ((self.len() as f64) * train_fraction).round() as usize;
        let cut = n_train.clamp(1, self.len() - 1);
        let take = |lo: usize, hi: usize| Dataset {
            features: Tensor::from_vec(
                vec![hi - lo, dim],
                self.features.data()[lo * dim..hi * dim].to_vec(),
            )
            .expect("consistent split"),
            labels: self.labels[lo..hi].to_vec(),
            classes: self.classes,
        };
        (take(0, cut), take(cut, self.len()))
    }
}

/// Gaussian class clusters in `dim` dimensions: class `k` is centered at a
/// random unit-ish direction, with isotropic noise of `spread`.
///
/// Samples are interleaved (`k = i % classes`) so prefix splits stay
/// stratified.
pub fn gaussian_blobs<R: Rng>(
    rng: &mut R,
    classes: usize,
    dim: usize,
    samples_per_class: usize,
    spread: f64,
) -> Dataset {
    let centers: Vec<Tensor<f32>> = (0..classes)
        .map(|_| tie_tensor::init::uniform(rng, vec![dim], 1.0))
        .collect();
    let n = classes * samples_per_class;
    let mut features = Tensor::zeros(vec![n, dim]);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let k = i % classes;
        labels.push(k);
        let noise: Tensor<f32> = tie_tensor::init::normal(rng, vec![dim], spread);
        for j in 0..dim {
            features.data_mut()[i * dim + j] = centers[k].data()[j] + noise.data()[j];
        }
    }
    Dataset {
        features,
        labels,
        classes,
    }
}

/// A sequence-classification dataset shaped like the paper's video task:
/// high-dimensional frames `[T, n, dim]`, where class identity is a
/// persistent direction corrupted by per-frame noise stronger than the
/// signal — single frames are ambiguous, integrating over time is not.
#[derive(Debug, Clone)]
pub struct SequenceDataset {
    /// Sequences `[T, n_samples, dim]`.
    pub sequences: Tensor<f32>,
    /// Labels, one per sample.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl SequenceDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Splits into (train, test) at `train_fraction`; samples are
    /// interleaved by class, so the prefix split stays stratified and both
    /// halves share the same class patterns (unlike generating two
    /// datasets, which would draw fresh patterns).
    pub fn split(&self, train_fraction: f64) -> (SequenceDataset, SequenceDataset) {
        let (t_len, n, dim) = (
            self.sequences.dims()[0],
            self.sequences.dims()[1],
            self.sequences.dims()[2],
        );
        let cut = (((n as f64) * train_fraction).round() as usize).clamp(1, n - 1);
        let take = |lo: usize, hi: usize| {
            let m = hi - lo;
            let mut seq = Tensor::zeros(vec![t_len, m, dim]);
            for t in 0..t_len {
                for (bi, b) in (lo..hi).enumerate() {
                    let src = (t * n + b) * dim;
                    let dst = (t * m + bi) * dim;
                    seq.data_mut()[dst..dst + dim]
                        .copy_from_slice(&self.sequences.data()[src..src + dim]);
                }
            }
            SequenceDataset {
                sequences: seq,
                labels: self.labels[lo..hi].to_vec(),
                classes: self.classes,
            }
        };
        (take(0, cut), take(cut, n))
    }
}

/// Generates a [`SequenceDataset`].
pub fn noisy_sequences<R: Rng>(
    rng: &mut R,
    classes: usize,
    seq_len: usize,
    samples_per_class: usize,
    dim: usize,
    noise: f64,
) -> SequenceDataset {
    let patterns: Vec<Tensor<f32>> = (0..classes)
        .map(|_| tie_tensor::init::uniform(rng, vec![dim], 1.0))
        .collect();
    let n = classes * samples_per_class;
    let mut sequences = Tensor::zeros(vec![seq_len, n, dim]);
    let mut labels = Vec::with_capacity(n);
    for b in 0..n {
        labels.push(b % classes);
    }
    for t in 0..seq_len {
        for b in 0..n {
            let frame_noise: Tensor<f32> = tie_tensor::init::normal(rng, vec![dim], noise);
            for j in 0..dim {
                sequences.data_mut()[(t * n + b) * dim + j] =
                    patterns[labels[b]].data()[j] + frame_noise.data()[j];
            }
        }
    }
    SequenceDataset {
        sequences,
        labels,
        classes,
    }
}

/// Normalizes features to zero mean / unit variance per dimension
/// (in place); returns the per-dimension `(mean, std)` for reuse on a
/// test split.
pub fn standardize<T: Scalar>(features: &mut Tensor<T>) -> Vec<(f64, f64)> {
    let (n, dim) = (features.dims()[0], features.dims()[1]);
    let mut stats = Vec::with_capacity(dim);
    for j in 0..dim {
        let mut mean = 0.0f64;
        for i in 0..n {
            mean += features.data()[i * dim + j].to_f64();
        }
        mean /= n as f64;
        let mut var = 0.0f64;
        for i in 0..n {
            let d = features.data()[i * dim + j].to_f64() - mean;
            var += d * d;
        }
        let std = (var / n as f64).sqrt().max(1e-12);
        for i in 0..n {
            let v = (features.data()[i * dim + j].to_f64() - mean) / std;
            features.data_mut()[i * dim + j] = T::from_f64(v);
        }
        stats.push((mean, std));
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn blobs_have_right_shape_and_interleaved_labels() {
        let mut rng = ChaCha8Rng::seed_from_u64(140);
        let d = gaussian_blobs(&mut rng, 3, 5, 4, 0.1);
        assert_eq!(d.len(), 12);
        assert_eq!(d.features.dims(), &[12, 5]);
        assert_eq!(&d.labels[..6], &[0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn split_preserves_all_samples() {
        let mut rng = ChaCha8Rng::seed_from_u64(141);
        let d = gaussian_blobs(&mut rng, 2, 3, 10, 0.1);
        let (tr, te) = d.split(0.8);
        assert_eq!(tr.len() + te.len(), d.len());
        assert_eq!(tr.len(), 16);
        assert_eq!(tr.features.dims()[1], 3);
    }

    #[test]
    fn blobs_are_separable_when_spread_is_small() {
        // Nearest-center classification must be near-perfect at low noise.
        let mut rng = ChaCha8Rng::seed_from_u64(142);
        let d = gaussian_blobs(&mut rng, 2, 8, 20, 0.05);
        // Recover centers as class means and classify.
        let dim = 8;
        let mut centers = vec![vec![0.0f64; dim]; 2];
        let mut counts = [0usize; 2];
        for i in 0..d.len() {
            counts[d.labels[i]] += 1;
            for (j, c) in centers[d.labels[i]].iter_mut().enumerate() {
                *c += d.features.data()[i * dim + j] as f64;
            }
        }
        for (center, &count) in centers.iter_mut().zip(&counts) {
            for c in center.iter_mut() {
                *c /= count as f64;
            }
        }
        let mut correct = 0;
        for i in 0..d.len() {
            let dist = |k: usize| -> f64 {
                (0..dim)
                    .map(|j| {
                        let e = d.features.data()[i * dim + j] as f64 - centers[k][j];
                        e * e
                    })
                    .sum()
            };
            if (dist(0) < dist(1)) == (d.labels[i] == 0) {
                correct += 1;
            }
        }
        assert!(correct as f64 / d.len() as f64 > 0.95);
    }

    #[test]
    fn sequences_shape_and_determinism() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(143);
        let mut rng2 = ChaCha8Rng::seed_from_u64(143);
        let a = noisy_sequences(&mut rng1, 2, 3, 4, 6, 0.5);
        let b = noisy_sequences(&mut rng2, 2, 3, 4, 6, 0.5);
        assert_eq!(a.sequences, b.sequences);
        assert_eq!(a.sequences.dims(), &[3, 8, 6]);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn standardize_zeroes_mean_and_unit_variance() {
        let mut rng = ChaCha8Rng::seed_from_u64(144);
        let mut d = gaussian_blobs(&mut rng, 2, 4, 50, 1.0);
        standardize(&mut d.features);
        let (n, dim) = (d.len(), 4);
        for j in 0..dim {
            let mean: f64 = (0..n)
                .map(|i| d.features.data()[i * dim + j] as f64)
                .sum::<f64>()
                / n as f64;
            let var: f64 = (0..n)
                .map(|i| (d.features.data()[i * dim + j] as f64 - mean).powi(2))
                .sum::<f64>()
                / n as f64;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-4, "var {var}");
        }
    }
}
