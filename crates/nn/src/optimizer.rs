use crate::layer::Trainable;
use tie_tensor::Tensor;

/// Stochastic gradient descent with classical momentum and L2 weight decay.
///
/// Per-parameter momentum buffers are keyed by visit order, which
/// [`Trainable::visit_params`] guarantees to be stable.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 weight-decay coefficient (0 disables decay).
    pub weight_decay: f32,
    velocities: Vec<Tensor<f32>>,
}

impl Sgd {
    /// Plain SGD.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            weight_decay: 0.0,
            velocities: Vec::new(),
        }
    }

    /// Adds L2 weight decay (builder-style).
    pub fn weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Applies one update step to every parameter of `model`, consuming the
    /// accumulated gradients (the caller is responsible for
    /// `zero_grads` before the next accumulation).
    pub fn step<M: Trainable + ?Sized>(&mut self, model: &mut M) {
        let mut idx = 0usize;
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocities = &mut self.velocities;
        model.visit_params(&mut |p, g| {
            if velocities.len() <= idx {
                velocities.push(Tensor::zeros(p.dims().to_vec()));
            }
            let v = &mut velocities[idx];
            debug_assert_eq!(v.dims(), p.dims(), "parameter order changed between steps");
            for ((pv, gv), vv) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(v.data_mut().iter_mut())
            {
                let grad = gv + wd * *pv;
                *vv = momentum * *vv + grad;
                *pv -= lr * *vv;
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneParam {
        p: Tensor<f32>,
        g: Tensor<f32>,
    }

    impl Trainable for OneParam {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut m = OneParam {
            p: Tensor::from_vec(vec![2], vec![1.0, -1.0]).unwrap(),
            g: Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap(),
        };
        let mut opt = Sgd::new(0.1);
        opt.step(&mut m);
        assert!((m.p.data()[0] - 0.95).abs() < 1e-7);
        assert!((m.p.data()[1] + 0.95).abs() < 1e-7);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut m = OneParam {
            p: Tensor::zeros(vec![1]),
            g: Tensor::from_vec(vec![1], vec![1.0]).unwrap(),
        };
        let mut opt = Sgd::with_momentum(0.1, 0.9);
        opt.step(&mut m); // v=1, p=-0.1
        opt.step(&mut m); // v=1.9, p=-0.29
        assert!((m.p.data()[0] + 0.29).abs() < 1e-6, "{}", m.p.data()[0]);
    }

    #[test]
    fn weight_decay_shrinks_params_without_gradient() {
        let mut m = OneParam {
            p: Tensor::from_vec(vec![1], vec![2.0]).unwrap(),
            g: Tensor::zeros(vec![1]),
        };
        let mut opt = Sgd::new(0.1).weight_decay(0.5);
        opt.step(&mut m);
        // grad = 0 + 0.5*2 = 1; p -= 0.1 -> 1.9
        assert!((m.p.data()[0] - 1.9).abs() < 1e-7);
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        // f(p) = (p - 3)², gradient 2(p-3): must converge near 3.
        let mut m = OneParam {
            p: Tensor::zeros(vec![1]),
            g: Tensor::zeros(vec![1]),
        };
        let mut opt = Sgd::with_momentum(0.05, 0.8);
        for _ in 0..200 {
            let p = m.p.data()[0];
            m.g.data_mut()[0] = 2.0 * (p - 3.0);
            opt.step(&mut m);
        }
        assert!((m.p.data()[0] - 3.0).abs() < 1e-3, "{}", m.p.data()[0]);
    }
}
