use crate::layer::Trainable;
use tie_tensor::Tensor;

/// The Adam optimizer (Kingma & Ba, 2015) with bias-corrected first and
/// second moments — the optimizer TT-RNN training typically uses in
/// practice, provided alongside [`crate::Sgd`].
///
/// Per-parameter state is keyed by visit order, which
/// [`Trainable::visit_params`] guarantees to be stable.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (default 1e-3).
    pub lr: f32,
    /// First-moment decay (default 0.9).
    pub beta1: f32,
    /// Second-moment decay (default 0.999).
    pub beta2: f32,
    /// Denominator fuzz (default 1e-8).
    pub eps: f32,
    step: u64,
    m: Vec<Tensor<f32>>,
    v: Vec<Tensor<f32>>,
}

impl Adam {
    /// Adam with the canonical hyper-parameters and the given rate.
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// Applies one update to every parameter of `model`, consuming the
    /// accumulated gradients.
    pub fn step<M: Trainable + ?Sized>(&mut self, model: &mut M) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let mut idx = 0usize;
        let ms = &mut self.m;
        let vs = &mut self.v;
        model.visit_params(&mut |p, g| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.dims().to_vec()));
                vs.push(Tensor::zeros(p.dims().to_vec()));
            }
            debug_assert_eq!(ms[idx].dims(), p.dims(), "parameter order changed");
            for ((pv, &gv), (mv, vv)) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(ms[idx].data_mut().iter_mut().zip(vs[idx].data_mut()))
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct OneParam {
        p: Tensor<f32>,
        g: Tensor<f32>,
    }

    impl Trainable for OneParam {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
            f(&mut self.p, &mut self.g);
        }
    }

    #[test]
    fn first_step_moves_by_about_lr() {
        // Bias correction makes the first Adam step ≈ lr·sign(g).
        let mut m = OneParam {
            p: Tensor::zeros(vec![2]),
            g: Tensor::from_vec(vec![2], vec![3.0, -0.001]).unwrap(),
        };
        let mut opt = Adam::new(0.1);
        opt.step(&mut m);
        assert!((m.p.data()[0] + 0.1).abs() < 1e-3, "{}", m.p.data()[0]);
        assert!((m.p.data()[1] - 0.1).abs() < 1e-2, "{}", m.p.data()[1]);
        assert_eq!(opt.steps(), 1);
    }

    #[test]
    fn adam_minimizes_ill_conditioned_quadratic_faster_than_sgd() {
        // f(p) = 0.5(100·p0² + p1²): Adam's per-coordinate scaling shines.
        let run_adam = |iters: usize| -> f32 {
            let mut m = OneParam {
                p: Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap(),
                g: Tensor::zeros(vec![2]),
            };
            let mut opt = Adam::new(0.05);
            for _ in 0..iters {
                let p = m.p.data().to_vec();
                m.g.data_mut()[0] = 100.0 * p[0];
                m.g.data_mut()[1] = p[1];
                opt.step(&mut m);
            }
            let p = m.p.data();
            0.5 * (100.0 * p[0] * p[0] + p[1] * p[1])
        };
        let run_sgd = |iters: usize| -> f32 {
            let mut m = OneParam {
                p: Tensor::from_vec(vec![2], vec![1.0, 1.0]).unwrap(),
                g: Tensor::zeros(vec![2]),
            };
            let mut opt = crate::Sgd::new(0.005); // larger diverges on the stiff axis
            for _ in 0..iters {
                let p = m.p.data().to_vec();
                m.g.data_mut()[0] = 100.0 * p[0];
                m.g.data_mut()[1] = p[1];
                opt.step(&mut m);
            }
            let p = m.p.data();
            0.5 * (100.0 * p[0] * p[0] + p[1] * p[1])
        };
        let adam_loss = run_adam(200);
        let sgd_loss = run_sgd(200);
        assert!(
            adam_loss < sgd_loss,
            "Adam {adam_loss} should beat plain SGD {sgd_loss} here"
        );
        assert!(adam_loss < 1e-2, "Adam failed to converge: {adam_loss}");
    }

    #[test]
    fn state_grows_lazily_per_parameter() {
        struct TwoParams {
            a: Tensor<f32>,
            ga: Tensor<f32>,
            b: Tensor<f32>,
            gb: Tensor<f32>,
        }
        impl Trainable for TwoParams {
            fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor<f32>, &mut Tensor<f32>)) {
                f(&mut self.a, &mut self.ga);
                f(&mut self.b, &mut self.gb);
            }
        }
        let mut m = TwoParams {
            a: Tensor::zeros(vec![3]),
            ga: Tensor::filled(vec![3], 1.0).unwrap(),
            b: Tensor::zeros(vec![2, 2]),
            gb: Tensor::filled(vec![2, 2], -1.0).unwrap(),
        };
        let mut opt = Adam::new(0.01);
        opt.step(&mut m);
        assert_eq!(opt.m.len(), 2);
        assert_eq!(opt.v[1].dims(), &[2, 2]);
        assert!(m.a.data().iter().all(|&v| v < 0.0));
        assert!(m.b.data().iter().all(|&v| v > 0.0));
    }
}
