//! Activity-based energy accounting: per-operation energies derived from
//! the Table 6 calibration, applied to the simulator's measured traffic.
//!
//! The [`crate::TieAreaPowerModel`] charges utilization-gated *power*;
//! this model instead charges *events* — MACs, SRAM element accesses,
//! clock ticks — so two runs with equal utilization but different memory
//! mixes get different energies. Both models agree at the calibration
//! point (full-load prototype), which the tests pin down.

use serde::Serialize;

/// Per-event energies at 28 nm, derived from Table 6.
///
/// Derivation at the prototype's full-load steady state (1 GHz, every
/// cycle: 256 MACs, one 16-element weight word read, 16 working-SRAM
/// element reads and on average ~16/N_Gcol ≈ 1 element written):
///
/// * datapath (combinational + register) 64.9 mW over 256 MAC/cycle →
///   **0.2535 pJ/MAC**,
/// * memory 60.8 mW over ~33 element accesses/cycle → **1.84 pJ/element**
///   (weight and working SRAM charged alike; both are on-chip SRAM of
///   similar word width),
/// * clock network 29.1 mW → **29.1 pJ/cycle** flat.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ActivityEnergy {
    /// Energy per multiply-accumulate, picojoules.
    pub pj_per_mac: f64,
    /// Energy per SRAM element access (read or write), picojoules.
    pub pj_per_sram_elem: f64,
    /// Clock-tree energy per cycle, picojoules.
    pub pj_per_cycle_clock: f64,
}

/// Event counts of one run (the simulator's `RunStats` totals, expressed
/// crate-neutrally so `tie-energy` stays dependency-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct Activity {
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Weight SRAM element reads (words × word width).
    pub weight_elem_reads: u64,
    /// Working SRAM element reads.
    pub act_elem_reads: u64,
    /// Working SRAM element writes.
    pub act_elem_writes: u64,
    /// Total cycles.
    pub cycles: u64,
}

impl Default for ActivityEnergy {
    fn default() -> Self {
        // Full-load calibration point (see type docs).
        let pj_per_mac = 64.9 / 256.0;
        let accesses_per_cycle = 16.0 + 16.0 + 1.0;
        ActivityEnergy {
            pj_per_mac,
            pj_per_sram_elem: 60.8 / accesses_per_cycle,
            pj_per_cycle_clock: 29.1,
        }
    }
}

impl ActivityEnergy {
    /// Total energy of a run in nanojoules.
    pub fn energy_nj(&self, a: &Activity) -> f64 {
        let sram = (a.weight_elem_reads + a.act_elem_reads + a.act_elem_writes) as f64
            * self.pj_per_sram_elem;
        let mac = a.macs as f64 * self.pj_per_mac;
        let clock = a.cycles as f64 * self.pj_per_cycle_clock;
        (sram + mac + clock) / 1e3
    }

    /// Average power in milliwatts over a run at `freq_mhz`.
    pub fn average_power_mw(&self, a: &Activity, freq_mhz: f64) -> f64 {
        if a.cycles == 0 {
            return 0.0;
        }
        let seconds = a.cycles as f64 / (freq_mhz * 1e6);
        // nJ → mJ is /1e6; mJ per second is mW.
        self.energy_nj(a) / 1e6 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_load(cycles: u64) -> Activity {
        Activity {
            macs: cycles * 256,
            weight_elem_reads: cycles * 16,
            act_elem_reads: cycles * 16,
            act_elem_writes: cycles,
            cycles,
        }
    }

    #[test]
    fn full_load_reproduces_table6_power() {
        let e = ActivityEnergy::default();
        let p = e.average_power_mw(&full_load(1_000_000), 1000.0);
        assert!((p - 154.8).abs() < 0.2, "full-load power {p} mW");
    }

    #[test]
    fn idle_run_costs_only_clock() {
        let e = ActivityEnergy::default();
        let a = Activity {
            cycles: 1000,
            ..Activity::default()
        };
        assert!((e.energy_nj(&a) - 29.1).abs() < 1e-9);
    }

    #[test]
    fn memory_heavy_run_costs_more_than_compute_heavy() {
        let e = ActivityEnergy::default();
        let compute = Activity {
            macs: 10_000,
            cycles: 100,
            ..Activity::default()
        };
        let memory = Activity {
            act_elem_reads: 10_000,
            cycles: 100,
            ..Activity::default()
        };
        assert!(
            e.energy_nj(&memory) > e.energy_nj(&compute),
            "per-element SRAM energy exceeds per-MAC energy at 28 nm"
        );
    }

    #[test]
    fn zero_cycles_is_zero_power() {
        let e = ActivityEnergy::default();
        assert_eq!(e.average_power_mw(&Activity::default(), 1000.0), 0.0);
    }

    #[test]
    fn per_op_constants_are_physically_plausible() {
        let e = ActivityEnergy::default();
        assert!((0.1..1.0).contains(&e.pj_per_mac), "16-bit MAC ~0.25 pJ");
        assert!(
            (0.5..5.0).contains(&e.pj_per_sram_elem),
            "small-SRAM 16-bit access ~2 pJ"
        );
    }
}
