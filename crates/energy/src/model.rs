//! Component-level area / power model calibrated to the paper's Table 6.

use serde::Serialize;

/// Area breakdown in mm² (Table 6 right column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct AreaBreakdown {
    /// On-chip SRAM macros.
    pub memory: f64,
    /// Pipeline / accumulator registers.
    pub register: f64,
    /// Combinational logic (multipliers, adders, muxes).
    pub combinational: f64,
    /// Clock tree.
    pub clock_network: f64,
    /// Routing / fill / everything else.
    pub other: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total(&self) -> f64 {
        self.memory + self.register + self.combinational + self.clock_network + self.other
    }
}

/// Power breakdown in mW (Table 6 left column).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PowerBreakdown {
    /// SRAM access power.
    pub memory: f64,
    /// Register switching power.
    pub register: f64,
    /// Combinational switching power.
    pub combinational: f64,
    /// Clock-network power.
    pub clock_network: f64,
}

impl PowerBreakdown {
    /// Total power in mW.
    pub fn total(&self) -> f64 {
        self.memory + self.register + self.combinational + self.clock_network
    }
}

/// Parametric 28 nm area/power model of a TIE-style design.
///
/// Per-unit constants are calibrated so the paper's prototype
/// configuration (256 MAC lanes, 16 KB + 2 × 384 KB SRAM, 1000 MHz)
/// reproduces Table 6: 154.8 mW and 1.744 mm². Scaling behavior:
/// SRAM terms are linear in capacity, datapath terms linear in MAC-lane
/// count, clock power linear in both registers and frequency, `other`
/// area a fixed fraction of the component sum.
///
/// # Example
///
/// ```
/// use tie_energy::TieAreaPowerModel;
/// let m = TieAreaPowerModel::paper_prototype();
/// assert!((m.area().total() - 1.744).abs() < 0.01);
/// assert!((m.power_at_utilization(1.0).total() - 154.8).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TieAreaPowerModel {
    /// Total MAC lanes (`n_pe × n_mac`).
    pub mac_lanes: usize,
    /// Total on-chip SRAM in KiB (weight + both working copies).
    pub sram_kib: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
}

// Calibration constants (from Table 6 at the prototype configuration:
// 256 lanes, 784 KiB, 1000 MHz).
const PROTO_LANES: f64 = 256.0;
const PROTO_SRAM_KIB: f64 = 784.0;
const PROTO_FREQ: f64 = 1000.0;

const AREA_MEM_PER_KIB: f64 = 1.29 / PROTO_SRAM_KIB;
const AREA_REG_PER_LANE: f64 = 0.019 / PROTO_LANES;
const AREA_COMB_PER_LANE: f64 = 0.082 / PROTO_LANES;
const AREA_CLK_PER_LANE: f64 = 0.0035 / PROTO_LANES;
// Table 6 "other" = 0.35 of 1.744; modeled as a fixed fraction of the
// component area (routing overhead grows with what is routed).
const AREA_OTHER_FRACTION: f64 = 0.35 / (1.29 + 0.019 + 0.082 + 0.0035);

const POWER_MEM_PER_KIB_MHZ: f64 = 60.8 / PROTO_SRAM_KIB / PROTO_FREQ;
const POWER_REG_PER_LANE_MHZ: f64 = 10.9 / PROTO_LANES / PROTO_FREQ;
const POWER_COMB_PER_LANE_MHZ: f64 = 54.0 / PROTO_LANES / PROTO_FREQ;
const POWER_CLK_PER_LANE_MHZ: f64 = 29.1 / PROTO_LANES / PROTO_FREQ;

impl TieAreaPowerModel {
    /// The fabricated prototype (Table 5 configuration).
    pub fn paper_prototype() -> Self {
        TieAreaPowerModel {
            mac_lanes: 256,
            sram_kib: 784.0,
            freq_mhz: 1000.0,
        }
    }

    /// Model for an arbitrary configuration.
    pub fn new(mac_lanes: usize, sram_kib: f64, freq_mhz: f64) -> Self {
        TieAreaPowerModel {
            mac_lanes,
            sram_kib,
            freq_mhz,
        }
    }

    /// Area breakdown (frequency-independent).
    pub fn area(&self) -> AreaBreakdown {
        let memory = AREA_MEM_PER_KIB * self.sram_kib;
        let register = AREA_REG_PER_LANE * self.mac_lanes as f64;
        let combinational = AREA_COMB_PER_LANE * self.mac_lanes as f64;
        let clock_network = AREA_CLK_PER_LANE * self.mac_lanes as f64;
        let other = AREA_OTHER_FRACTION * (memory + register + combinational + clock_network);
        AreaBreakdown {
            memory,
            register,
            combinational,
            clock_network,
            other,
        }
    }

    /// Power breakdown at a datapath utilization in `[0, 1]`
    /// (1.0 = every MAC lane busy every cycle — the Table 6 condition).
    /// Clock power does not gate with utilization; switching power does.
    pub fn power_at_utilization(&self, utilization: f64) -> PowerBreakdown {
        let u = utilization.clamp(0.0, 1.0);
        let lanes = self.mac_lanes as f64;
        PowerBreakdown {
            memory: POWER_MEM_PER_KIB_MHZ * self.sram_kib * self.freq_mhz * u,
            register: POWER_REG_PER_LANE_MHZ * lanes * self.freq_mhz * u,
            combinational: POWER_COMB_PER_LANE_MHZ * lanes * self.freq_mhz * u,
            clock_network: POWER_CLK_PER_LANE_MHZ * lanes * self.freq_mhz,
        }
    }

    /// Energy of a run in millijoules: `power(utilization) × seconds`.
    pub fn energy_mj(&self, utilization: f64, seconds: f64) -> f64 {
        self.power_at_utilization(utilization).total() * seconds
    }

    /// Energy per MAC at full utilization, in picojoules — a sanity
    /// metric (16-bit MACs in 28 nm land near a quarter picojoule).
    pub fn energy_per_mac_pj(&self) -> f64 {
        let p = self.power_at_utilization(1.0);
        let switching = p.register + p.combinational; // datapath share
                                                      // mW / (lanes × MHz × 1e6) = mJ/op → ×1e9 pJ/op
        switching / (self.mac_lanes as f64 * self.freq_mhz * 1e6) * 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_reproduces_table6_power() {
        let p = TieAreaPowerModel::paper_prototype().power_at_utilization(1.0);
        assert!((p.memory - 60.8).abs() < 1e-9);
        assert!((p.register - 10.9).abs() < 1e-9);
        assert!((p.combinational - 54.0).abs() < 1e-9);
        assert!((p.clock_network - 29.1).abs() < 1e-9);
        assert!((p.total() - 154.8).abs() < 1e-9);
    }

    #[test]
    fn prototype_reproduces_table6_area() {
        let a = TieAreaPowerModel::paper_prototype().area();
        assert!((a.memory - 1.29).abs() < 1e-9);
        assert!((a.register - 0.019).abs() < 1e-9);
        assert!((a.combinational - 0.082).abs() < 1e-9);
        assert!((a.clock_network - 0.0035).abs() < 1e-9);
        assert!((a.other - 0.35).abs() < 1e-6);
        // Component sum is 1.7445; the paper rounds to 1.744.
        assert!((a.total() - 1.744).abs() < 1e-3);
    }

    #[test]
    fn idle_power_is_clock_only() {
        let m = TieAreaPowerModel::paper_prototype();
        let p = m.power_at_utilization(0.0);
        assert_eq!(p.memory, 0.0);
        assert_eq!(p.combinational, 0.0);
        assert!((p.clock_network - 29.1).abs() < 1e-9);
    }

    #[test]
    fn scaling_with_lanes_and_sram() {
        let half_lanes = TieAreaPowerModel::new(128, 784.0, 1000.0);
        let p = half_lanes.power_at_utilization(1.0);
        assert!((p.combinational - 27.0).abs() < 1e-9);
        assert!(
            (p.memory - 60.8).abs() < 1e-9,
            "SRAM power independent of lanes"
        );
        let half_sram = TieAreaPowerModel::new(256, 392.0, 1000.0);
        assert!((half_sram.area().memory - 0.645).abs() < 1e-9);
    }

    #[test]
    fn energy_per_mac_is_sub_picojoule() {
        let e = TieAreaPowerModel::paper_prototype().energy_per_mac_pj();
        assert!(
            (0.05..1.0).contains(&e),
            "16-bit MAC at 28 nm should be ~0.25 pJ, got {e}"
        );
    }

    #[test]
    fn energy_integrates_power() {
        let m = TieAreaPowerModel::paper_prototype();
        let e = m.energy_mj(1.0, 2.0);
        assert!((e - 154.8 * 2.0).abs() < 1e-9);
    }
}
