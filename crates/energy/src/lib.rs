//! Area / power / energy modeling and technology-node scaling.
//!
//! The paper evaluates TIE with a synthesized 28 nm implementation
//! (Synopsys DC/ICC/PrimeTime + Cacti) and compares against accelerators
//! published at other nodes by *projecting* them to 28 nm with the scaling
//! rule of the EIE paper: **frequency scales linearly** with the node
//! ratio, **area scales quadratically**, **power stays constant**
//! (Tables 7–9 all use this rule).
//!
//! This crate substitutes the CAD flow with a component-level model
//! calibrated to the paper's own Table 6 breakdown (154.8 mW / 1.744 mm²
//! for the 16-PE, 16 KB + 2×384 KB prototype at 1000 MHz):
//!
//! * [`TieAreaPowerModel`] — parametric in PE/MAC count and SRAM capacity,
//!   reproducing Table 6 at the default configuration and extrapolating
//!   for the ablation studies (PE-count / SRAM sweeps),
//! * [`TechNode`] + [`project`] — the paper's projection rule,
//! * [`Metrics`] — throughput/area/power bundles with the derived
//!   efficiency figures the tables report (TOPS/W, frames/s/W,
//!   frames/s/mm²).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod metrics;
mod model;
mod scaling;

pub use activity::{Activity, ActivityEnergy};
pub use metrics::{FrameMetrics, Metrics};
pub use model::{AreaBreakdown, PowerBreakdown, TieAreaPowerModel};
pub use scaling::{project, AcceleratorSpec, TechNode};
