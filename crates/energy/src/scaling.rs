//! Technology-node projection (the EIE/TIE comparison rule).

use serde::Serialize;

/// A CMOS technology node in nanometers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TechNode {
    /// Feature size in nm (e.g. 28.0, 45.0, 65.0).
    pub nm: f64,
}

impl TechNode {
    /// 28 nm — TIE's node, the common basis of all paper comparisons.
    pub const NM28: TechNode = TechNode { nm: 28.0 };
    /// 45 nm — EIE's and CirCNN's reported node.
    pub const NM45: TechNode = TechNode { nm: 45.0 };
    /// 65 nm — Eyeriss's reported node.
    pub const NM65: TechNode = TechNode { nm: 65.0 };
}

/// Published (or modeled) headline numbers of an accelerator at some node.
#[derive(Debug, Clone, Serialize)]
pub struct AcceleratorSpec {
    /// Design name.
    pub name: String,
    /// Technology node the numbers are reported at.
    pub node: TechNode,
    /// Clock frequency, MHz.
    pub freq_mhz: f64,
    /// Silicon area, mm² (`None` when unpublished, as for CirCNN).
    pub area_mm2: Option<f64>,
    /// Power, mW.
    pub power_mw: f64,
}

impl AcceleratorSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        node: TechNode,
        freq_mhz: f64,
        area_mm2: Option<f64>,
        power_mw: f64,
    ) -> Self {
        AcceleratorSpec {
            name: name.into(),
            node,
            freq_mhz,
            area_mm2,
            power_mw,
        }
    }
}

/// Projects a spec to another node with the paper's rule (Table 7
/// footnote: "linear, quadratic and constant scaling for frequency, area
/// and power, respectively").
pub fn project(spec: &AcceleratorSpec, to: TechNode) -> AcceleratorSpec {
    let ratio = spec.node.nm / to.nm;
    AcceleratorSpec {
        name: spec.name.clone(),
        node: to,
        freq_mhz: spec.freq_mhz * ratio,
        area_mm2: spec.area_mm2.map(|a| a / (ratio * ratio)),
        power_mw: spec.power_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eie_projection_matches_table7() {
        // EIE: 45 nm, 800 MHz, 40.8 mm², 590 mW → 28 nm: 1285 MHz,
        // 15.7 mm², 590 mW (paper Table 7).
        let eie = AcceleratorSpec::new("EIE", TechNode::NM45, 800.0, Some(40.8), 590.0);
        let p = project(&eie, TechNode::NM28);
        assert!((p.freq_mhz - 1285.0).abs() < 2.0, "freq {}", p.freq_mhz);
        assert!(
            (p.area_mm2.unwrap() - 15.7).abs() < 0.15,
            "area {:?}",
            p.area_mm2
        );
        assert_eq!(p.power_mw, 590.0);
    }

    #[test]
    fn circnn_projection_matches_table8() {
        // CirCNN: 45 nm, 200 MHz → 320 MHz at 28 nm (paper Table 8).
        let c = AcceleratorSpec::new("CirCNN", TechNode::NM45, 200.0, None, 80.0);
        let p = project(&c, TechNode::NM28);
        assert!((p.freq_mhz - 320.0).abs() < 2.0);
        assert!(p.area_mm2.is_none());
    }

    #[test]
    fn eyeriss_projection_matches_table9() {
        // Eyeriss: 65 nm, 200 MHz, 12.25 mm² → 464 MHz, 2.27 mm² (Table 9).
        let e = AcceleratorSpec::new("Eyeriss", TechNode::NM65, 200.0, Some(12.25), 236.0);
        let p = project(&e, TechNode::NM28);
        assert!((p.freq_mhz - 464.0).abs() < 2.0, "freq {}", p.freq_mhz);
        assert!(
            (p.area_mm2.unwrap() - 2.27).abs() < 0.03,
            "area {:?}",
            p.area_mm2
        );
        assert_eq!(p.power_mw, 236.0);
    }

    #[test]
    fn projecting_to_same_node_is_identity() {
        let s = AcceleratorSpec::new("X", TechNode::NM28, 1000.0, Some(1.74), 154.8);
        let p = project(&s, TechNode::NM28);
        assert_eq!(p.freq_mhz, 1000.0);
        assert_eq!(p.area_mm2, Some(1.74));
    }
}
