//! Derived efficiency metrics — the figures of merit the paper's tables
//! report.

use serde::Serialize;

/// A throughput/area/power bundle for one design on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct Metrics {
    /// Design name.
    pub name: String,
    /// Dense-equivalent throughput, ops/s (2·M·N per matrix-vector
    /// product over latency) — or frames/s when `frames` semantics are
    /// used by the caller.
    pub throughput_ops: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl Metrics {
    /// New metrics bundle.
    pub fn new(name: impl Into<String>, throughput_ops: f64, area_mm2: f64, power_mw: f64) -> Self {
        Metrics {
            name: name.into(),
            throughput_ops,
            area_mm2,
            power_mw,
        }
    }

    /// Throughput in TOPS.
    pub fn tops(&self) -> f64 {
        self.throughput_ops / 1e12
    }

    /// Energy efficiency in TOPS/W.
    pub fn tops_per_watt(&self) -> f64 {
        self.tops() / (self.power_mw / 1e3)
    }

    /// Area efficiency in GOPS/mm².
    pub fn gops_per_mm2(&self) -> f64 {
        self.throughput_ops / 1e9 / self.area_mm2
    }

    /// Throughput ratio over a baseline (the "N×" numbers of the tables).
    pub fn throughput_ratio(&self, base: &Metrics) -> f64 {
        self.throughput_ops / base.throughput_ops
    }

    /// Area-efficiency ratio over a baseline.
    pub fn area_efficiency_ratio(&self, base: &Metrics) -> f64 {
        self.gops_per_mm2() / base.gops_per_mm2()
    }

    /// Energy-efficiency ratio over a baseline.
    pub fn energy_efficiency_ratio(&self, base: &Metrics) -> f64 {
        self.tops_per_watt() / base.tops_per_watt()
    }
}

/// Frame-rate metrics for CONV-network comparisons (Table 9 semantics).
#[derive(Debug, Clone, Serialize)]
pub struct FrameMetrics {
    /// Design name.
    pub name: String,
    /// Frames per second.
    pub fps: f64,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

impl FrameMetrics {
    /// New frame-rate bundle.
    pub fn new(name: impl Into<String>, fps: f64, area_mm2: f64, power_mw: f64) -> Self {
        FrameMetrics {
            name: name.into(),
            fps,
            area_mm2,
            power_mw,
        }
    }

    /// Frames/s/W (Table 9 "area efficiency" column is frames/s/W in the
    /// paper's header order; both ratios are provided).
    pub fn fps_per_watt(&self) -> f64 {
        self.fps / (self.power_mw / 1e3)
    }

    /// Frames/s/mm².
    pub fn fps_per_mm2(&self) -> f64 {
        self.fps / self.area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tie_table8_figures() {
        // TIE (Table 8): 7.64 TOPS at 104.8 mW → 72.9 TOPS/W.
        let tie = Metrics::new("TIE", 7.64e12, 1.40, 104.8);
        assert!((tie.tops() - 7.64).abs() < 1e-9);
        assert!((tie.tops_per_watt() - 72.9).abs() < 0.2);
    }

    #[test]
    fn ratios_against_circnn() {
        // CirCNN projected: 1.28 TOPS, 80 mW → 16 TOPS/W; paper quotes
        // TIE advantages of 5.96× throughput and 4.56× energy efficiency.
        let tie = Metrics::new("TIE", 7.64e12, 1.40, 104.8);
        let circnn = Metrics::new("CirCNN", 1.28e12, 1.0, 80.0);
        assert!((tie.throughput_ratio(&circnn) - 5.96).abs() < 0.03);
        assert!((tie.energy_efficiency_ratio(&circnn) - 4.56).abs() < 0.03);
    }

    #[test]
    fn frame_metrics_table9() {
        // TIE on VGG CONV (Table 9): 6.72 fps, 170 mW, 1.74 mm²
        // → 39.5 fps/W and 3.86 fps/mm².
        let tie = FrameMetrics::new("TIE", 6.72, 1.74, 170.0);
        assert!((tie.fps_per_watt() - 39.5).abs() < 0.1);
        assert!((tie.fps_per_mm2() - 3.86).abs() < 0.01);
    }

    #[test]
    fn area_efficiency_ratio_sanity() {
        let a = Metrics::new("A", 1e12, 1.0, 100.0);
        let b = Metrics::new("B", 1e12, 10.0, 100.0);
        assert!((a.area_efficiency_ratio(&b) - 10.0).abs() < 1e-9);
    }
}
