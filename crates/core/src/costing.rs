//! Analytic candidate costing: the closed-form TIE cycle model as a pure
//! function of an [`InferencePlan`] and a hardware configuration.
//!
//! This is the Fig. 7 tiling model the simulator's
//! `TieAccelerator::predict_cycles` has always used, hoisted out of
//! `tie-sim` so that *planners* — the deployment autotuner above all —
//! can score thousands of candidate layouts without constructing an
//! accelerator (or touching any weights). The simulator delegates to
//! [`CostModel`], so the two can never drift apart.
//!
//! Two refinements over the plain per-layer sum make the model usable as
//! a search objective:
//!
//! * **batched costing** ([`CostModel::batched_stage_cycles`]): batch
//!   columns ride along as extra `V` columns of every stage, so the pass
//!   count uses `ceil(v_cols·b / N_PE)` — *not* `b · ceil(v_cols/N_PE)`;
//!   wide batches genuinely amortize partially filled PE passes, and the
//!   model must see that.
//! * **pipelined costing** ([`CostModel::pipelined_cycles`]): the
//!   fill-plus-bottleneck-drain overlap model over a [`plan_cuts`]
//!   partition, mirroring `RunStats::pipelined_cycles` but computed from
//!   the analytic per-stage cycles instead of measured ones.

use crate::pipeline::plan_cuts;
use crate::plan::{InferencePlan, StagePlan};

/// The hardware parameters the cycle model depends on — a projection of
/// the simulator's full `TieConfig` (PE/MAC geometry and the per-pass
/// overhead knob; SRAM capacities gate *feasibility*, not cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Processing elements (columns of one output block).
    pub n_pe: usize,
    /// MAC units per PE (rows of one output block).
    pub n_mac: usize,
    /// Extra cycles charged per PE-array pass (pipeline fill/drain;
    /// 0 reproduces the paper's steady-state accounting).
    pub pass_overhead_cycles: u64,
}

impl Default for CostModel {
    /// The Table 5 prototype: 16 PEs × 16 MACs, no pass overhead.
    fn default() -> Self {
        CostModel {
            n_pe: 16,
            n_mac: 16,
            pass_overhead_cycles: 0,
        }
    }
}

impl CostModel {
    /// Cycles of one stage at batch width `b`:
    /// `ceil(R_h/N_MAC) · ceil(C_h·b/N_PE) · (W_h + overhead)` where
    /// `R_h × W_h` is the unfolded core and `C_h` the per-sample `V`
    /// column count.
    #[must_use]
    pub fn batched_stage_cycles(&self, stage: &StagePlan, b: usize) -> u64 {
        let passes = (stage.gtilde_rows.div_ceil(self.n_mac)
            * (stage.v_cols * b).div_ceil(self.n_pe)) as u64;
        passes * (stage.gtilde_cols as u64 + self.pass_overhead_cycles)
    }

    /// Per-stage cycles of a whole plan at batch width `b`, in execution
    /// order (`h = d` first).
    #[must_use]
    pub fn stage_cycles(&self, plan: &InferencePlan, b: usize) -> Vec<u64> {
        plan.stages()
            .iter()
            .map(|s| self.batched_stage_cycles(s, b))
            .collect()
    }

    /// Total sequential cycles of one batch-`b` pass (the
    /// `predict_cycles` figure; `b = 1` is the classic single-sample
    /// prediction).
    #[must_use]
    pub fn total_cycles(&self, plan: &InferencePlan, b: usize) -> u64 {
        self.stage_cycles(plan, b).iter().sum()
    }

    /// Cycles of one batch-`b` pass executed as a stage pipeline of the
    /// given `depth` (clamped to `[1, d]` by [`plan_cuts`]) streaming
    /// `chunks` micro-batch chunks: fill latency (one chunk crossing
    /// every pipeline stage) plus steady-state drain at the bottleneck
    /// segment's rate — the same closed form as
    /// `RunStats::pipelined_cycles`, evaluated analytically.
    #[must_use]
    pub fn pipelined_cycles(
        &self,
        plan: &InferencePlan,
        depth: usize,
        b: usize,
        chunks: u64,
    ) -> u64 {
        let total = self.total_cycles(plan, b);
        if chunks <= 1 || depth <= 1 {
            return total;
        }
        let stage_cycles = self.stage_cycles(plan, b);
        let cut = plan_cuts(plan, depth);
        let bottleneck = cut
            .runs()
            .iter()
            .map(|r| stage_cycles[r.lo..r.hi].iter().sum::<u64>())
            .max()
            .unwrap_or(0);
        (total + (chunks - 1) * bottleneck).div_ceil(chunks)
    }

    /// Modeled cycles **per sample** of the deployment knobs the
    /// autotuner searches: batch width `b`, pipeline `depth`, micro-batch
    /// chunk width `micro`. Fractional because a batch amortizes partial
    /// passes across samples.
    #[must_use]
    pub fn cycles_per_sample(
        &self,
        plan: &InferencePlan,
        b: usize,
        depth: usize,
        micro: usize,
    ) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let chunks = b.div_ceil(micro.max(1)) as u64;
        self.pipelined_cycles(plan, depth, b, chunks) as f64 / b as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_tt::TtShape;

    fn fc7_plan() -> InferencePlan {
        InferencePlan::new(&TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap()).unwrap()
    }

    #[test]
    fn single_sample_matches_hand_computation() {
        // FC7 at the Table 5 geometry: stage h=6 is 16×4 over 1024
        // columns → 64 passes × 4 cycles; h=5…2 are 16×16 over 1024 →
        // 64 × 16 each; h=1 is 4×16 over 1024 → 64 × 16.
        let m = CostModel::default();
        let cycles = m.stage_cycles(&fc7_plan(), 1);
        assert_eq!(cycles[0], 256);
        assert_eq!(&cycles[1..5], &[1024; 4]);
        assert_eq!(cycles[5], 1024);
        assert_eq!(m.total_cycles(&fc7_plan(), 1), 256 + 4 * 1024 + 1024);
    }

    #[test]
    fn batching_amortizes_partial_passes() {
        // A stage with v_cols = 3 wastes 13 of 16 PE columns per pass;
        // batching 16 samples fills the passes exactly.
        let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 1).unwrap();
        let plan = InferencePlan::new(&shape).unwrap();
        let m = CostModel::default();
        let one = m.total_cycles(&plan, 1) as f64;
        let sixteen = m.total_cycles(&plan, 16) as f64 / 16.0;
        assert!(
            sixteen < one,
            "batch-16 per-sample {sixteen} should beat single-sample {one}"
        );
    }

    #[test]
    fn pipelining_approaches_the_bottleneck_rate() {
        let plan = fc7_plan();
        let m = CostModel::default();
        let seq = m.total_cycles(&plan, 1);
        // Depth 1 or a single chunk degenerate to the sequential cost.
        assert_eq!(m.pipelined_cycles(&plan, 1, 1, 16), seq);
        assert_eq!(m.pipelined_cycles(&plan, 4, 1, 1), seq);
        // Real pipelining strictly beats sequential, and more chunks help.
        let p4 = m.pipelined_cycles(&plan, 4, 1, 4);
        let p16 = m.pipelined_cycles(&plan, 4, 1, 16);
        assert!(p4 < seq && p16 < p4, "{seq} -> {p4} -> {p16}");
        // Never below the bottleneck bound.
        let cut = plan_cuts(&plan, 4);
        let cycles = m.stage_cycles(&plan, 1);
        let bottleneck: u64 = cut
            .runs()
            .iter()
            .map(|r| cycles[r.lo..r.hi].iter().sum::<u64>())
            .max()
            .unwrap();
        assert!(p16 >= bottleneck);
    }

    #[test]
    fn cycles_per_sample_divides_the_batch_through() {
        let plan = fc7_plan();
        let m = CostModel::default();
        let direct = m.pipelined_cycles(&plan, 2, 8, 8) as f64 / 8.0;
        assert!((m.cycles_per_sample(&plan, 8, 2, 1) - direct).abs() < 1e-12);
        assert_eq!(m.cycles_per_sample(&plan, 0, 2, 1), 0.0);
    }
}
