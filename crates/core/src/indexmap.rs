//! Symbolic indexing-map compiler for the Eqn. 8/10 Transform chain.
//!
//! The inter-stage Transform of the compact scheme is a composition of
//! transpose / reshape / split / assemble steps, each of which is a
//! **strided affine map** over the stage's flat index space: a bijection
//! `i ↦ Σ_digit d·stride` where the digits are a mixed-radix decomposition
//! of the source index. This module represents those maps symbolically
//! ([`AffineMap`]), composes whole chains into a single map per TT stage
//! ([`AffineMap::then`], in the style of XLA's indexing analysis), and
//! lowers the result into the two forms the runtime wants:
//!
//! * **offset tables** ([`AffineMap::offset_tables`]) — the separable
//!   row/column form consumed by the fused GEMM write epilogues
//!   (`tie_tensor::linalg::DestMap`), which eliminate the permutation pass
//!   entirely by scattering stage outputs straight into the next stage's
//!   layout;
//! * **copy plans** ([`CopyPlan`]) — provably-minimal contiguous block
//!   copies for the remaining cold-path moves (input preparation), derived
//!   by inverting and simplifying the map rather than by ad-hoc gather
//!   tables.
//!
//! Enumeration never decodes indices with per-element division: the
//! [`Odometer`] walks a map's destination offsets incrementally
//! (increment-and-wrap per digit, O(1) amortized), and is verified against
//! the direct [`AffineMap::apply`] evaluation by the test suite.
//!
//! # Digit convention
//!
//! `digits[0]` is the **slowest** source digit (largest place value), the
//! last digit the fastest — row-major, matching every tensor in the
//! workspace. A map is applied to a flat source index by decomposing it
//! into digits and summing `digit · stride`. All maps built here are
//! bijections onto `[0, source_len)` and composition verifies that
//! property structurally (no carries between routed digits), so a composed
//! chain is exactly as trustworthy as its steps.

use tie_tensor::{linalg::DestMap, Result, TensorError};
use tie_tt::TtShape;

use crate::transform::TransformMap;

/// One mixed-radix digit of an [`AffineMap`]: `extent` values contributing
/// `value · stride` to the destination offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digit {
    /// Radix of this digit (number of values it takes, ≥ 1).
    pub extent: usize,
    /// Destination place value of this digit.
    pub stride: usize,
}

/// A strided affine indexing map: a bijection from flat source indices to
/// destination offsets, represented as mixed-radix digits with arbitrary
/// destination strides. See the [module docs](self) for the conventions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineMap {
    digits: Vec<Digit>,
}

fn invalid(msg: String) -> TensorError {
    TensorError::InvalidArgument { message: msg }
}

impl AffineMap {
    /// The identity map over a row-major index space of the given
    /// dimensions: digit `j` has stride `∏_{l>j} dims[l]`.
    #[must_use]
    pub fn identity(dims: &[usize]) -> Self {
        let mut digits: Vec<Digit> = dims
            .iter()
            .map(|&e| Digit {
                extent: e,
                stride: 0,
            })
            .collect();
        let mut place = 1usize;
        for d in digits.iter_mut().rev() {
            d.stride = place;
            place *= d.extent;
        }
        AffineMap { digits }
    }

    /// A transpose: the source is row-major over `dims`; destination
    /// position `j` (row-major over `dims[perm[0]], dims[perm[1]], …`)
    /// holds source digit `perm[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `perm` is not a
    /// permutation of `0..dims.len()`.
    pub fn transpose(dims: &[usize], perm: &[usize]) -> Result<Self> {
        let n = dims.len();
        let mut seen = vec![false; n];
        if perm.len() != n
            || perm
                .iter()
                .any(|&p| p >= n || std::mem::replace(&mut seen[p], true))
        {
            return Err(invalid(format!(
                "transpose: {perm:?} is not a permutation of 0..{n}"
            )));
        }
        let mut digits: Vec<Digit> = dims
            .iter()
            .map(|&e| Digit {
                extent: e,
                stride: 0,
            })
            .collect();
        let mut place = 1usize;
        for &src in perm.iter().rev() {
            digits[src].stride = place;
            place *= dims[src];
        }
        Ok(AffineMap { digits })
    }

    /// The map's digits, slowest first.
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.digits
    }

    /// Number of source indices (product of extents).
    #[must_use]
    pub fn source_len(&self) -> usize {
        self.digits.iter().map(|d| d.extent).product()
    }

    /// Destination offset of flat source index `i` by direct digit
    /// decomposition (div/mod per digit — the reference evaluation the
    /// [`Odometer`] is verified against).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `i` is out of range.
    #[must_use]
    pub fn apply(&self, i: usize) -> usize {
        debug_assert!(i < self.source_len().max(1));
        let mut rem = i;
        let mut off = 0usize;
        for d in self.digits.iter().rev() {
            let v = rem % d.extent;
            rem /= d.extent;
            off += v * d.stride;
        }
        off
    }

    /// Verifies the map is a bijection onto `[0, source_len)` by the
    /// strides-tile criterion: sorted by descending stride, the fastest
    /// digit has stride 1 and each stride equals the next digit's
    /// `extent · stride` (extent-1 digits are ignored). This is exactly
    /// the condition under which distinct digit values can never collide
    /// or leave gaps.
    #[must_use]
    pub fn is_bijection(&self) -> bool {
        let mut digs: Vec<Digit> = self
            .digits
            .iter()
            .copied()
            .filter(|d| d.extent > 1)
            .collect();
        digs.sort_by_key(|d| std::cmp::Reverse(d.stride));
        let mut place = 1usize;
        for d in digs.iter().rev() {
            if d.stride != place {
                return false;
            }
            place *= d.extent;
        }
        true
    }

    /// Drops extent-1 digits and merges adjacent digits that form one
    /// contiguous row-major group (`stride_slow == extent_fast ·
    /// stride_fast`). The result maps every index to the same offset with
    /// the fewest digits — what makes [`CopyPlan`] runs provably maximal.
    #[must_use]
    pub fn simplified(&self) -> AffineMap {
        let mut out: Vec<Digit> = Vec::with_capacity(self.digits.len());
        for &d in &self.digits {
            if d.extent == 1 {
                continue;
            }
            if let Some(last) = out.last_mut() {
                if last.stride == d.extent * d.stride {
                    last.extent *= d.extent;
                    last.stride = d.stride;
                    continue;
                }
            }
            out.push(d);
        }
        AffineMap { digits: out }
    }

    /// Composition `g ∘ self`: a single map sending each source index of
    /// `self` to `g.apply(self.apply(i))` — symbolically, with no index
    /// enumeration.
    ///
    /// Each digit of `self` is **routed** through `g`'s place values: a
    /// digit with stride `s = c · place_j` advances `g`'s digit `j` by `c`
    /// per step, so it lands at stride `c · g_stride_j`; a digit whose
    /// range overflows digit `j` is split at the radix boundary and its
    /// upper part recursively routed at the coarser place. Composition
    /// verifies structurally that routed digits can never carry into each
    /// other (per-destination-digit capacity `Σ (extent−1)·c ≤ extent_j −
    /// 1`), which makes the symbolic composition exact — the tests
    /// additionally confirm it index-for-index against the legacy tables.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if either map is not a
    /// bijection, extents disagree, or a digit cannot be routed without
    /// carries (never the case for the transpose/reshape chains built
    /// here).
    pub fn then(&self, g: &AffineMap) -> Result<AffineMap> {
        if !self.is_bijection() || !g.is_bijection() {
            return Err(invalid("then: both maps must be bijections".into()));
        }
        if self.source_len() != g.source_len() {
            return Err(invalid(format!(
                "then: intermediate space mismatch ({} vs {})",
                self.source_len(),
                g.source_len()
            )));
        }
        // Source place values of g's digits: `apply` decomposes g's source
        // index in digit-list order (digits[0] slowest), so digit j's place
        // is the product of the extents after it. Extent-1 digits
        // contribute a factor of 1 and are dropped up front.
        let g_digits: Vec<Digit> = g.digits.iter().copied().filter(|d| d.extent > 1).collect();
        let mut places = vec![0usize; g_digits.len()];
        {
            let mut place = 1usize;
            for j in (0..g_digits.len()).rev() {
                places[j] = place;
                place *= g_digits[j].extent;
            }
        }
        let mut routed: Vec<Digit> = Vec::new();
        // Capacity audit: how much of each g digit's range the routed
        // fractions consume. Any overflow would mean a carry — reject.
        let mut used = vec![0usize; g_digits.len()];
        for &d in &self.digits {
            route_digit(d, &g_digits, &places, &mut routed, &mut used)?;
        }
        for (j, gd) in g_digits.iter().enumerate() {
            if used[j] > gd.extent - 1 {
                return Err(invalid(format!(
                    "then: routed digits overflow destination digit {j} ({} > {})",
                    used[j],
                    gd.extent - 1
                )));
            }
        }
        Ok(AffineMap { digits: routed })
    }

    /// The inverse bijection: a map sending each *destination* offset of
    /// `self` back to its source index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the map is not a
    /// bijection.
    pub fn inverse(&self) -> Result<AffineMap> {
        if !self.is_bijection() {
            return Err(invalid("inverse: map is not a bijection".into()));
        }
        // Source place value of each digit (row-major over `digits`).
        let mut src_place = vec![1usize; self.digits.len()];
        let mut place = 1usize;
        for (j, d) in self.digits.iter().enumerate().rev() {
            src_place[j] = place;
            place *= d.extent;
        }
        // The destination decomposes row-major over the digits sorted by
        // descending stride; the inverse contributes each digit's source
        // place at that position.
        let mut order: Vec<usize> = (0..self.digits.len())
            .filter(|&j| self.digits[j].extent > 1)
            .collect();
        order.sort_by(|&a, &b| self.digits[b].stride.cmp(&self.digits[a].stride));
        let digits = order
            .iter()
            .map(|&j| Digit {
                extent: self.digits[j].extent,
                stride: src_place[j],
            })
            .collect();
        Ok(AffineMap { digits })
    }

    /// Splits the map of an `rows × cols` source space at the row/column
    /// boundary into separable offset tables: `R[p] = apply(p·cols)` and
    /// `C[q] = apply(q)`, so `apply(p·cols + q) = R[p] + C[q]` for every
    /// element. Both tables are enumerated with [`Odometer`] walks (no
    /// per-element division).
    ///
    /// This is the lowering the fused GEMM epilogue consumes: the pair
    /// plugs straight into `tie_tensor::linalg::DestMap::new`, whose
    /// constructor re-verifies the bijection numerically.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `rows·cols` is not the
    /// source length or the digit radices cannot be split at the `cols`
    /// boundary (cannot happen for maps over matrix index spaces built
    /// with matching extents).
    pub fn offset_tables(&self, rows: usize, cols: usize) -> Result<(Vec<usize>, Vec<usize>)> {
        if rows * cols != self.source_len() {
            return Err(invalid(format!(
                "offset_tables: {rows}x{cols} does not cover source length {}",
                self.source_len()
            )));
        }
        // Walk digits from fastest to slowest accumulating the trailing
        // extent product until it reaches `cols`, splitting a straddling
        // digit at the radix boundary when divisible.
        let mut row_digits: Vec<Digit> = Vec::new();
        let mut col_digits: Vec<Digit> = Vec::new();
        let mut trailing = 1usize;
        for &d in self.digits.iter().rev() {
            if trailing >= cols {
                row_digits.push(d);
                continue;
            }
            if trailing * d.extent <= cols {
                col_digits.push(d);
                trailing *= d.extent;
                continue;
            }
            // Straddling digit: the lower `f` values belong to the column
            // part, the upper `extent / f` to the row part.
            let f = cols / trailing;
            if !cols.is_multiple_of(trailing) || d.extent % f != 0 {
                return Err(invalid(format!(
                    "offset_tables: digit of extent {} straddles the column boundary {cols} \
                     indivisibly",
                    d.extent
                )));
            }
            col_digits.push(Digit {
                extent: f,
                stride: d.stride,
            });
            row_digits.push(Digit {
                extent: d.extent / f,
                stride: d.stride * f,
            });
            trailing *= d.extent;
        }
        row_digits.reverse();
        col_digits.reverse();
        let walk = |digits: Vec<Digit>, len: usize| -> Vec<usize> {
            let sub = AffineMap { digits };
            debug_assert_eq!(sub.source_len(), len);
            let mut odo = Odometer::new(&sub);
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                out.push(odo.offset());
                odo.advance();
            }
            out
        };
        Ok((walk(row_digits, rows), walk(col_digits, cols)))
    }
}

/// Routes one source digit of `f` through `g`'s radix decomposition (see
/// [`AffineMap::then`]): finds the destination digit whose place value
/// divides the stride, splits at radix boundaries as needed (upper part
/// first, preserving slowest-first digit order), and records per-digit
/// range consumption in `used` for the carry audit.
fn route_digit(
    d: Digit,
    g_digits: &[Digit],
    places: &[usize],
    out: &mut Vec<Digit>,
    used: &mut [usize],
) -> Result<()> {
    if d.extent <= 1 {
        out.push(Digit {
            extent: d.extent.max(1),
            stride: 0,
        });
        return Ok(());
    }
    // Find the g digit this stride addresses: places[j] | stride with a
    // multiplier below the radix.
    let Some(j) = (0..g_digits.len()).find(|&j| {
        d.stride.is_multiple_of(places[j])
            && (d.stride / places[j]) < g_digits[j].extent
            && d.stride >= places[j]
    }) else {
        return Err(invalid(format!(
            "then: no destination digit admits stride {}",
            d.stride
        )));
    };
    let c = d.stride / places[j];
    if c == 0 {
        return Err(invalid(format!(
            "then: zero stride on extent-{} digit",
            d.extent
        )));
    }
    if (d.extent - 1) * c < g_digits[j].extent {
        used[j] += (d.extent - 1) * c;
        out.push(Digit {
            extent: d.extent,
            stride: c * g_digits[j].stride,
        });
        return Ok(());
    }
    // The digit's range overflows g digit j: split. The low `e_lo` values
    // stay within digit j (requires c | extent_j so the boundary aligns),
    // the upper part advances at the next coarser place.
    let e_lo = g_digits[j].extent / c;
    if !g_digits[j].extent.is_multiple_of(c) || !d.extent.is_multiple_of(e_lo) {
        return Err(invalid(format!(
            "then: digit of extent {} (stride {}) cannot split at radix {} cleanly",
            d.extent, d.stride, g_digits[j].extent
        )));
    }
    route_digit(
        Digit {
            extent: d.extent / e_lo,
            stride: d.stride * e_lo,
        },
        g_digits,
        places,
        out,
        used,
    )?;
    used[j] += (e_lo - 1) * c;
    out.push(Digit {
        extent: e_lo,
        stride: c * g_digits[j].stride,
    });
    Ok(())
}

/// Incremental evaluator of an [`AffineMap`]: visits destination offsets
/// of source indices `0, 1, 2, …` with increment-and-wrap digit updates —
/// no per-element division (the property the fused write epilogues and
/// table builders rely on; verified against [`AffineMap::apply`] by the
/// test suite).
#[derive(Debug, Clone)]
pub struct Odometer<'a> {
    map: &'a AffineMap,
    vals: Vec<usize>,
    offset: usize,
}

impl<'a> Odometer<'a> {
    /// Starts at source index 0.
    #[must_use]
    pub fn new(map: &'a AffineMap) -> Self {
        Odometer {
            map,
            vals: vec![0; map.digits.len()],
            offset: 0,
        }
    }

    /// Destination offset of the current source index.
    #[must_use]
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Advances to the next source index (wrapping to 0 after the last).
    pub fn advance(&mut self) {
        for (v, d) in self.vals.iter_mut().zip(&self.map.digits).rev() {
            *v += 1;
            if *v < d.extent {
                self.offset += d.stride;
                return;
            }
            *v = 0;
            self.offset -= (d.extent - 1) * d.stride;
        }
    }
}

/// A provably-minimal contiguous block-copy plan, lowered from an affine
/// map: destination block `i` (of `run` consecutive logical elements) is
/// copied from source offset `src_starts[i]`.
///
/// The plan is built from the map's **inverse** (so the destination is
/// walked in order — unit-stride writes) after [`AffineMap::simplified`]
/// merges every mergeable digit; the trailing stride-1 digit of that
/// simplified inverse is then the *longest possible* contiguous run, which
/// is what makes the plan minimal in block count. For batched buffers
/// (logical element = `b`-wide sample block) multiply offsets by `b`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyPlan {
    /// Logical elements per contiguous block.
    pub run: usize,
    /// Source offset (in logical elements) of each destination block, in
    /// destination order.
    pub src_starts: Vec<usize>,
}

impl CopyPlan {
    /// Lowers a source→destination affine bijection into a copy plan.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the map is not a
    /// bijection.
    pub fn from_map(map: &AffineMap) -> Result<Self> {
        let inv = map.inverse()?.simplified();
        let mut digits = inv.digits.clone();
        let run = match digits.last() {
            Some(d) if d.stride == 1 => {
                let e = d.extent;
                digits.pop();
                e
            }
            _ => 1,
        };
        let heads = AffineMap { digits };
        let blocks = heads.source_len();
        let mut odo = Odometer::new(&heads);
        let mut src_starts = Vec::with_capacity(blocks);
        for _ in 0..blocks {
            src_starts.push(odo.offset());
            odo.advance();
        }
        Ok(CopyPlan { run, src_starts })
    }

    /// Total logical elements moved.
    #[must_use]
    pub fn len(&self) -> usize {
        self.run * self.src_starts.len()
    }

    /// True when the plan moves nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Executes the plan on batched buffers: destination block `i` (a
    /// `run·b` contiguous span) is copied from `src[src_starts[i]·b..]`.
    /// Allocation-free; `dst` beyond `len()·b` is untouched.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the buffers are too short.
    pub fn apply_batched<T: Copy>(&self, src: &[T], dst: &mut [T], b: usize) {
        let rb = self.run * b;
        debug_assert!(dst.len() >= self.len() * b);
        for (i, &s) in self.src_starts.iter().enumerate() {
            dst[i * rb..(i + 1) * rb].copy_from_slice(&src[s * b..s * b + rb]);
        }
    }
}

/// The composed affine map of the stage-`h` Transform `V_h → V'_h`
/// (Eqn. 10), `2 ≤ h ≤ d`: a transpose of the stage matrix chained with
/// the split/assemble regrouping, composed symbolically into one map.
/// Index-for-index equal to [`TransformMap::map`] (the proptest suite pins
/// this on every Table 4 stage and on degenerate shapes).
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] if `h` is out of `2..=d`.
pub fn stage_transform_map(shape: &TtShape, h: usize) -> Result<AffineMap> {
    let t = TransformMap::new(shape, h)?;
    let d = shape.ndim();
    let r = shape.ranks[h - 1];
    let n_prev = shape.col_modes[h - 2];
    debug_assert!(h >= 2 && h <= d);
    // Step 1: transpose the stage matrix (rows_in × cols_in → flat).
    let t1 = AffineMap::transpose(&[t.rows_in, t.cols_in], &[1, 0])?;
    // Step 2: regroup the flat transposed space [n_prev, cols_out, r] by
    // rotating the rank digit ahead of the chunk digit — the Eqn. 10
    // split/assemble collapses to exactly this 3-digit transpose (the
    // proptest suite certifies the claim against the legacy tables).
    let t2 = AffineMap::transpose(&[n_prev, t.cols_out, r], &[0, 2, 1])?;
    t1.then(&t2)
}

/// The affine map of the Eqn. 8 input preparation `x → X'`: a full
/// digit-reversal transpose of the column modes. Index-for-index equal to
/// the legacy scatter table.
#[must_use]
pub fn prepare_map(shape: &TtShape) -> AffineMap {
    let d = shape.ndim();
    let dims: Vec<usize> = shape.col_modes.clone();
    let perm: Vec<usize> = (0..d).rev().collect();
    AffineMap::transpose(&dims, &perm).expect("reversal is a permutation")
}

/// The affine map of the output assembly `V_1 → y`: row digit `i_1` stays
/// slowest, the column digits `i_d … i_2` (fastest-first in `V_1`) reverse
/// into row-major order in `y`. Index-for-index equal to the legacy gather
/// table; `d == 1` degenerates to the identity.
#[must_use]
pub fn assemble_map(shape: &TtShape) -> AffineMap {
    let d = shape.ndim();
    if d == 1 {
        return AffineMap::identity(&[shape.row_modes[0]]);
    }
    // Source digit order of V_1's flat index: i_1 (rows), then columns
    // with i_d slowest … i_2 fastest.
    let mut dims = Vec::with_capacity(d);
    dims.push(shape.row_modes[0]);
    for u in (1..d).rev() {
        dims.push(shape.row_modes[u]);
    }
    // y is row-major [m_1, m_2, …, m_d]: i_1 first, then i_2 (source
    // position d-1), i_3 (d-2), …, i_d (position 1).
    let mut perm = Vec::with_capacity(d);
    perm.push(0);
    for j in (1..d).rev() {
        perm.push(j);
    }
    AffineMap::transpose(&dims, &perm).expect("assembled order is a permutation")
}

/// Lowers the stage-`h` Transform into the separable [`DestMap`] the fused
/// GEMM epilogue consumes: `V_h` element `(p, q)` is written at
/// `row[p] + col[q]` of `V'_h`'s flat storage.
///
/// # Errors
///
/// Propagates map-construction errors; the final [`DestMap::new`]
/// re-verifies the bijection numerically.
pub fn stage_dest_map(shape: &TtShape, h: usize) -> Result<DestMap> {
    let t = TransformMap::new(shape, h)?;
    let map = stage_transform_map(shape, h)?;
    let (rows, cols) = map.offset_tables(t.rows_in, t.cols_in)?;
    DestMap::new(rows, cols)
}

/// Lowers the output assembly into the [`DestMap`] for the final stage's
/// fused write: `V_1` element `(p, q)` lands at `row[p] + col[q]` of `y`.
///
/// # Errors
///
/// Propagates table/bijection errors as [`stage_dest_map`].
pub fn assemble_dest_map(shape: &TtShape) -> Result<DestMap> {
    let m1 = shape.row_modes[0];
    let cols = shape.num_rows() / m1;
    let (r, c) = assemble_map(shape).offset_tables(m1, cols)?;
    DestMap::new(r, c)
}

/// The minimal copy plan of the Eqn. 8 input preparation (the one
/// remaining cold-path move after fusion): destination-ordered contiguous
/// blocks, derived from the composed map's inverse.
///
/// # Errors
///
/// Propagates inversion errors (never for a valid shape).
pub fn prepare_copy_plan(shape: &TtShape) -> Result<CopyPlan> {
    CopyPlan::from_map(&prepare_map(shape))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{assemble_output_gather, four_step_transform, prepare_input_scatter};
    use tie_tensor::Tensor;

    fn shape(rows: Vec<usize>, cols: Vec<usize>, rank: usize) -> TtShape {
        TtShape::uniform_rank(rows, cols, rank).unwrap()
    }

    #[test]
    fn identity_and_transpose_apply() {
        let id = AffineMap::identity(&[3, 4]);
        for i in 0..12 {
            assert_eq!(id.apply(i), i);
        }
        let t = AffineMap::transpose(&[3, 4], &[1, 0]).unwrap();
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(t.apply(r * 4 + c), c * 3 + r);
            }
        }
        assert!(AffineMap::transpose(&[3, 4], &[0, 0]).is_err());
        assert!(AffineMap::transpose(&[3, 4], &[0]).is_err());
    }

    #[test]
    fn odometer_matches_apply_on_every_index() {
        let maps = [
            AffineMap::identity(&[5]),
            AffineMap::transpose(&[2, 3, 4], &[2, 0, 1]).unwrap(),
            AffineMap::transpose(&[4, 1, 6], &[1, 2, 0]).unwrap(),
        ];
        for map in &maps {
            let mut odo = Odometer::new(map);
            for i in 0..map.source_len() {
                assert_eq!(odo.offset(), map.apply(i), "index {i}");
                odo.advance();
            }
            // Wraps back to the start.
            assert_eq!(odo.offset(), map.apply(0));
        }
    }

    #[test]
    fn composition_equals_pointwise_chain() {
        let f = AffineMap::transpose(&[2, 3, 4], &[1, 2, 0]).unwrap();
        let g = AffineMap::transpose(&[3, 4, 2], &[2, 1, 0]).unwrap();
        let fg = f.then(&g).unwrap();
        assert!(fg.is_bijection());
        for i in 0..24 {
            assert_eq!(fg.apply(i), g.apply(f.apply(i)), "index {i}");
        }
        // Mismatched spaces are rejected.
        let h = AffineMap::identity(&[5]);
        assert!(f.then(&h).is_err());
    }

    #[test]
    fn composition_splits_digits_across_radix_boundaries() {
        // f is the identity over a 4x6 space; g regroups it as [2,2,2,3]
        // transposed — composing forces digit splitting in the router.
        let f = AffineMap::transpose(&[4, 6], &[1, 0]).unwrap();
        let g = AffineMap::transpose(&[6, 2, 2], &[1, 0, 2]).unwrap();
        let fg = f.then(&g).unwrap();
        for i in 0..24 {
            assert_eq!(fg.apply(i), g.apply(f.apply(i)), "index {i}");
        }
    }

    #[test]
    fn inverse_round_trips() {
        let maps = [
            AffineMap::transpose(&[2, 3, 4], &[2, 0, 1]).unwrap(),
            AffineMap::identity(&[7]),
            AffineMap::transpose(&[5, 1, 2], &[1, 0, 2]).unwrap(),
        ];
        for map in &maps {
            let inv = map.inverse().unwrap();
            for i in 0..map.source_len() {
                assert_eq!(inv.apply(map.apply(i)), i, "index {i}");
            }
        }
    }

    #[test]
    fn simplified_preserves_the_map_and_merges_runs() {
        let id = AffineMap::identity(&[2, 3, 4]);
        let s = id.simplified();
        assert_eq!(s.digits().len(), 1, "row-major identity merges fully");
        for i in 0..24 {
            assert_eq!(s.apply(i), id.apply(i));
        }
    }

    #[test]
    fn stage_map_matches_legacy_transform_on_table4_stages() {
        for sh in [
            shape(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4),
            shape(vec![4; 6], vec![4; 6], 4),
            shape(vec![4; 4], vec![8, 20, 20, 18], 4),
            shape(vec![4; 4], vec![4, 20, 20, 36], 4),
        ] {
            for h in 2..=sh.ndim() {
                let t = TransformMap::new(&sh, h).unwrap();
                let map = stage_transform_map(&sh, h).unwrap();
                assert_eq!(map.source_len(), t.rows_in * t.cols_in);
                for p in 0..t.rows_in {
                    for q in 0..t.cols_in {
                        let (pp, qq) = t.map(p, q);
                        assert_eq!(
                            map.apply(p * t.cols_in + q),
                            pp * t.cols_out + qq,
                            "h={h} p={p} q={q}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn stage_map_agrees_with_four_step_reference() {
        let sh = shape(vec![3, 2, 4], vec![2, 3, 2], 2);
        for h in 2..=3 {
            let t = TransformMap::new(&sh, h).unwrap();
            let v = Tensor::<f64>::from_fn(vec![t.rows_in, t.cols_in], |i| {
                (i[0] * t.cols_in + i[1]) as f64
            })
            .unwrap();
            let want = four_step_transform(&v, &sh, h).unwrap();
            let map = stage_transform_map(&sh, h).unwrap();
            let mut got = vec![0.0; t.rows_out * t.cols_out];
            for (i, &x) in v.data().iter().enumerate() {
                got[map.apply(i)] = x;
            }
            assert_eq!(got, want.data(), "h={h}");
        }
    }

    #[test]
    fn prepare_map_matches_legacy_scatter() {
        for sh in [
            shape(vec![4, 4], vec![3, 5], 2),
            shape(vec![2; 3], vec![2, 3, 4], 2),
            shape(vec![6], vec![7], 1),
        ] {
            let scatter = prepare_input_scatter(&sh);
            let map = prepare_map(&sh);
            assert_eq!(map.source_len(), scatter.len());
            for (j, &dst) in scatter.iter().enumerate() {
                assert_eq!(map.apply(j), dst, "j={j}");
            }
        }
    }

    #[test]
    fn assemble_map_matches_legacy_gather() {
        for sh in [
            shape(vec![3, 5], vec![4, 4], 2),
            shape(vec![2, 3, 4], vec![2; 3], 2),
            shape(vec![7], vec![6], 1),
        ] {
            let gather = assemble_output_gather(&sh);
            let map = assemble_map(&sh);
            assert_eq!(map.source_len(), gather.len());
            // gather is dest-indexed: y[i] <- v1[gather[i]]; the map is
            // source-indexed: v1[s] -> y[map(s)].
            for (i, &src) in gather.iter().enumerate() {
                assert_eq!(map.apply(src), i, "i={i}");
            }
        }
    }

    #[test]
    fn copy_plan_is_minimal_and_correct() {
        // d == 1: the reversal is the identity — one maximal run.
        let sh1 = shape(vec![6], vec![8], 1);
        let plan = prepare_copy_plan(&sh1).unwrap();
        assert_eq!(plan.run, 8);
        assert_eq!(plan.src_starts, vec![0]);

        // Generic shape: blocks reproduce the legacy scatter exactly.
        let sh = shape(vec![2; 3], vec![2, 3, 4], 2);
        let plan = prepare_copy_plan(&sh).unwrap();
        let scatter = prepare_input_scatter(&sh);
        let n = scatter.len();
        for b in [1usize, 3] {
            let src: Vec<u32> = (0..n * b).map(|v| v as u32).collect();
            let mut dst = vec![u32::MAX; n * b];
            plan.apply_batched(&src, &mut dst, b);
            for (j, &d) in scatter.iter().enumerate() {
                for c in 0..b {
                    assert_eq!(dst[d * b + c], src[j * b + c], "j={j} c={c} b={b}");
                }
            }
        }
        assert_eq!(plan.len(), n);
    }

    #[test]
    fn dest_maps_cover_degenerate_shapes() {
        // Rank-1, singleton modes, single-stage: every lowering must still
        // produce validated bijections.
        for sh in [
            shape(vec![1, 4], vec![3, 1], 1),
            shape(vec![2, 1, 3], vec![1, 2, 1], 2),
            shape(vec![5], vec![4], 1),
            shape(vec![1], vec![1], 1),
        ] {
            for h in 2..=sh.ndim() {
                let dm = stage_dest_map(&sh, h).unwrap();
                let t = TransformMap::new(&sh, h).unwrap();
                for p in 0..t.rows_in {
                    for q in 0..t.cols_in {
                        let (pp, qq) = t.map(p, q);
                        assert_eq!(dm.offset(p, q), pp * t.cols_out + qq);
                    }
                }
            }
            let am = assemble_dest_map(&sh).unwrap();
            assert_eq!(am.rows() * am.cols(), sh.num_rows());
        }
    }
}
