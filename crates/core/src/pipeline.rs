//! Pipeline-parallel execution of one layer's TT stage chain.
//!
//! The compact scheme (PAPER.md, Algorithm 2 / Fig. 9) is already shaped
//! like a hardware pipeline: one core group per TT stage, streaming the
//! `V'_h` intermediate to the next stage. This module realizes that
//! pipeline in software so a *single layer's* latency scales with worker
//! count, not only with batch size:
//!
//! * [`plan_cuts`] — the **cut-point planner**: splits the plan's stage
//!   sequence into `depth` contiguous runs, balancing each run's share of
//!   the cycle model's per-stage MAC and SRAM costs ([`stage_costs`]).
//!   Because every stage's GEMM already scatters its output through the
//!   *composed* inter-stage `AffineMap` (the fused [`DestMap`] write
//!   epilogue spans the cut), a run boundary needs **no permutation
//!   pass**: the producer's last GEMM writes `V'_h` in exactly the layout
//!   the consumer's first GEMM reads.
//! * [`StagePipeline`] — the executor: each pipeline stage owns its run
//!   of TT stages plus a double-buffered ping-pong slab, and streams
//!   micro-batched `V'_h` chunks downstream through bounded SPSC channels
//!   (two recycled slabs per boundary, so the steady state is
//!   allocation-free). Stage drivers are the dedicated persistent threads
//!   of a [`PipelineHost`] — never the shared work-stealing pool, whose
//!   job-adoption and inline-nesting rules could deadlock against a
//!   bounded channel — while the GEMMs *inside* a stage still parallelize
//!   on the shared pool.
//!
//! Chunking the batch never changes numerics: each output column's
//! arithmetic is independent of its neighbors (the batched kernels are
//! bitwise equal to per-column runs — property-tested), and the chunk
//! boundaries only decide *when* a column is computed. A pipelined pass is
//! therefore **bit-identical** to the sequential engine at any cut count,
//! micro-batch size, and pool size.
//!
//! The executor is generic over a [`StageChain`] — [`FloatChain`] wraps
//! the float [`CompactEngine`] here; the quantized chain lives in
//! `tie-sim` next to its engine.

use std::collections::VecDeque;
use std::mem;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use tie_tensor::linalg::{gemm_into_mapped, gemm_into_mapped_fused, DestMap};
use tie_tensor::pipeline::PipelineHost;
use tie_tensor::tile::Activation;
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::inference::OpCount;

use crate::indexmap::{assemble_dest_map, prepare_copy_plan, stage_dest_map, CopyPlan};
use crate::plan::InferencePlan;
use crate::scheme::CompactEngine;

/// Recycled slabs per cut boundary: the double-buffered ping-pong of the
/// paper's working SRAMs — one slab in flight downstream while the
/// producer fills the other.
const CHANNEL_SLOTS: usize = 2;

fn invalid(message: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument {
        message: message.into(),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Cut-point planner
// ---------------------------------------------------------------------------

/// Per-stage cost terms of the cycle model, in scalar units.
///
/// These are the two axes of the paper's Fig. 7 per-stage cycle
/// accounting: the MAC-array term (one multiply-accumulate per scalar
/// product) and the SRAM-traffic term (weight reads plus working-SRAM
/// activation reads and writes). A pipeline stage's latency is governed by
/// whichever sum dominates, so the planner balances their total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Multiply-accumulates: `StagePlan::muls()` per sample.
    pub macs: u64,
    /// SRAM traffic in scalar elements per sample: weight reads
    /// (`core_elems`) + activation reads (`input_elems`) + activation
    /// writes (`output_elems`).
    pub sram: u64,
}

impl StageCost {
    /// Combined balance weight.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.macs + self.sram
    }
}

/// The per-stage [`StageCost`]s of a plan, in execution order (`h = d`
/// first) — the planner's input, exposed for diagnostics and benches.
#[must_use]
pub fn stage_costs(plan: &InferencePlan) -> Vec<StageCost> {
    plan.stages()
        .iter()
        .map(|s| StageCost {
            macs: s.muls(),
            sram: (s.core_elems() + s.input_elems() + s.output_elems()) as u64,
        })
        .collect()
}

/// One pipeline stage's contiguous run of TT stages: plan indices
/// `[lo, hi)` in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRun {
    /// First plan-stage index of the run (inclusive, execution order).
    pub lo: usize,
    /// One past the last plan-stage index of the run.
    pub hi: usize,
    /// Summed [`StageCost::total`] of the run's stages.
    pub cost: u64,
}

impl StageRun {
    /// Number of TT stages in the run.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// True for an empty run (never produced by [`plan_cuts`]).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hi == self.lo
    }
}

/// The planner's output: contiguous stage runs covering the whole plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutPlan {
    runs: Vec<StageRun>,
}

impl CutPlan {
    /// The pipeline stages, upstream first.
    #[must_use]
    pub fn runs(&self) -> &[StageRun] {
        &self.runs
    }

    /// Number of pipeline stages (`min(requested depth, d)`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.runs.len()
    }

    /// The interior cut points: plan-stage indices where a new pipeline
    /// stage begins (length `depth() - 1`).
    #[must_use]
    pub fn cuts(&self) -> Vec<usize> {
        self.runs[1..].iter().map(|r| r.lo).collect()
    }

    /// Cost of the most expensive run — the pipeline's steady-state
    /// bottleneck.
    #[must_use]
    pub fn bottleneck_cost(&self) -> u64 {
        self.runs.iter().map(|r| r.cost).max().unwrap_or(0)
    }

    /// Summed cost of all runs (the sequential cost).
    #[must_use]
    pub fn total_cost(&self) -> u64 {
        self.runs.iter().map(|r| r.cost).sum()
    }
}

/// Chooses cut points for `depth` pipeline stages over `plan`'s TT
/// stages: the contiguous partition minimizing the maximum per-run
/// [`StageCost::total`] (the classic linear-partition DP). `depth` is
/// clamped to `[1, d]`. Deterministic: among equal-bottleneck partitions
/// the earliest cut sequence wins.
#[must_use]
pub fn plan_cuts(plan: &InferencePlan, depth: usize) -> CutPlan {
    let costs = stage_costs(plan);
    let n = costs.len();
    let k = depth.clamp(1, n);
    // Prefix sums: run cost of [i, j) is prefix[j] - prefix[i].
    let mut prefix = vec![0u64; n + 1];
    for (i, c) in costs.iter().enumerate() {
        prefix[i + 1] = prefix[i] + c.total();
    }
    let run_cost = |i: usize, j: usize| prefix[j] - prefix[i];

    // dp[t][j]: minimal achievable bottleneck splitting stages [0, j)
    // into t runs; choice[t][j]: the earliest split point attaining it.
    let mut dp = vec![vec![u64::MAX; n + 1]; k + 1];
    let mut choice = vec![vec![0usize; n + 1]; k + 1];
    for (j, cell) in dp[1].iter_mut().enumerate().take(n + 1).skip(1) {
        *cell = run_cost(0, j);
    }
    for t in 2..=k {
        for j in t..=n {
            for i in t - 1..j {
                let candidate = dp[t - 1][i].max(run_cost(i, j));
                // Strict `<` keeps the earliest split on ties.
                if candidate < dp[t][j] {
                    dp[t][j] = candidate;
                    choice[t][j] = i;
                }
            }
        }
    }

    let mut bounds = vec![n];
    let mut j = n;
    for t in (2..=k).rev() {
        j = choice[t][j];
        bounds.push(j);
    }
    bounds.push(0);
    bounds.reverse();
    let runs = bounds
        .windows(2)
        .map(|win| StageRun {
            lo: win[0],
            hi: win[1],
            cost: run_cost(win[0], win[1]),
        })
        .collect();
    CutPlan { runs }
}

// ---------------------------------------------------------------------------
// Stage chain abstraction
// ---------------------------------------------------------------------------

/// A backend's view of one layer's TT stage chain, as the pipeline
/// executor consumes it: encode a column slice of the batch into the
/// prepared layout, run one plan stage (GEMM + fused scatter epilogue),
/// decode the assembled output columns.
///
/// All methods use the engines' batch-inner-most layout with the *chunk
/// width* `w` as the batch dimension: element `e`, chunk column `j` sits
/// at `e * w + j`. Because every output column's arithmetic is independent
/// of its neighbors, chunked execution is bit-identical to the
/// full-batch sequential pass.
pub trait StageChain: Send + Sync + 'static {
    /// Element type flowing between stages (`f64` float, `i16` codes).
    type Code: Copy + Default + Send + Sync + 'static;
    /// Per-run accounting folded across stages and chunks.
    type Report: Default + Clone + Send + 'static;

    /// The stage plan (execution order, `h = d` first).
    fn plan(&self) -> &InferencePlan;
    /// Output length `M` of the layer.
    fn num_rows(&self) -> usize;
    /// Input length `N` of the layer.
    fn num_cols(&self) -> usize;

    /// Encodes columns `[c0, c0 + w)` of the `N × b` batch `xs` into the
    /// prepared Eqn. (8) input layout at chunk width `w`.
    fn prepare(&self, xs: &[f64], b: usize, c0: usize, w: usize, dst: &mut [Self::Code]);

    /// Runs plan stage `idx` at chunk width `w`: reads the stage input
    /// from `input`, scatters through the stage's fused [`DestMap`] into
    /// `output`, folds arithmetic accounting into `report`.
    ///
    /// # Errors
    ///
    /// Dimension mismatches only — unreachable for buffers sized from the
    /// plan (the executor validates once at construction).
    fn run_stage(
        &self,
        idx: usize,
        input: &[Self::Code],
        output: &mut [Self::Code],
        w: usize,
        report: &mut Self::Report,
    ) -> Result<()>;

    /// Decodes the assembled `M × w` final-stage output `codes` into
    /// columns `[c0, c0 + w)` of the `M × b` batch output `ys`.
    fn finish(&self, codes: &[Self::Code], ys: &mut [f64], b: usize, c0: usize, w: usize);

    /// Folds one segment's report into the run total (commutative).
    fn merge(into: &mut Self::Report, other: &Self::Report);
}

// ---------------------------------------------------------------------------
// Bounded SPSC chunk channel
// ---------------------------------------------------------------------------

/// One streamed chunk: an owned boundary slab holding `elems × w` codes.
struct ChunkMsg<T> {
    slab: Vec<T>,
    w: usize,
}

/// Bounded single-producer/single-consumer channel for one cut boundary.
///
/// Capacity is enforced by slab recycling: [`CHANNEL_SLOTS`] slabs are
/// allocated up front and circulate producer → consumer → producer, so a
/// send can only stall waiting for a *free* slab (backpressure) and a
/// receive only for a *filled* one (starvation). Steady state moves owned
/// `Vec`s between preallocated deques — no allocation.
struct ChunkChannel<T> {
    data: Mutex<VecDeque<ChunkMsg<T>>>,
    avail: Condvar,
    free: Mutex<Vec<Vec<T>>>,
    space: Condvar,
    /// Set when a peer branch panicked; waiters bail out instead of
    /// blocking on a producer/consumer that no longer exists.
    poisoned: AtomicBool,
}

impl<T: Copy + Default> ChunkChannel<T> {
    fn new(slab_len: usize, slots: usize) -> Self {
        let mut free = Vec::with_capacity(slots);
        for _ in 0..slots {
            free.push(vec![T::default(); slab_len]);
        }
        ChunkChannel {
            data: Mutex::new(VecDeque::with_capacity(slots + 1)),
            avail: Condvar::new(),
            free: Mutex::new(free),
            space: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Takes a free slab to fill; `true` if the producer had to stall for
    /// downstream backpressure.
    fn acquire(&self) -> (Vec<T>, bool) {
        let mut free = lock(&self.free);
        let stalled = free.is_empty();
        while free.is_empty() {
            assert!(
                !self.poisoned.load(Ordering::Acquire),
                "stage pipeline poisoned by a peer panic"
            );
            free = self
                .space
                .wait(free)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        (free.pop().expect("non-empty free list"), stalled)
    }

    /// Publishes a filled slab downstream. Never blocks: occupancy is
    /// bounded by the recycled slab count.
    fn send(&self, msg: ChunkMsg<T>) {
        let mut data = lock(&self.data);
        data.push_back(msg);
        drop(data);
        self.avail.notify_all();
    }

    /// Takes the next chunk; `true` if the consumer had to stall for the
    /// producer (starvation).
    fn recv(&self) -> (ChunkMsg<T>, bool) {
        let mut data = lock(&self.data);
        let stalled = data.is_empty();
        while data.is_empty() {
            assert!(
                !self.poisoned.load(Ordering::Acquire),
                "stage pipeline poisoned by a peer panic"
            );
            data = self
                .avail
                .wait(data)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        (data.pop_front().expect("non-empty data queue"), stalled)
    }

    /// Returns a consumed slab to the producer's free list.
    fn release(&self, slab: Vec<T>) {
        let mut free = lock(&self.free);
        free.push(slab);
        drop(free);
        self.space.notify_all();
    }

    /// Wakes every waiter into a panic (peer branch died mid-run).
    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
        drop(lock(&self.data));
        self.avail.notify_all();
        drop(lock(&self.free));
        self.space.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

/// Cumulative per-pipeline-stage counters (see
/// [`StagePipeline::stage_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounterSnapshot {
    /// Chunks this stage processed (its occupancy, in chunk units).
    pub chunks: u64,
    /// Chunks this stage handed to the next one (0 for the last stage).
    pub handoffs: u64,
    /// Sends that had to wait for a recycled slab (downstream
    /// backpressure).
    pub send_stalls: u64,
    /// Receives that had to wait for the producer (upstream starvation).
    pub recv_stalls: u64,
}

#[derive(Debug, Default)]
struct SegCounters {
    chunks: AtomicU64,
    handoffs: AtomicU64,
    send_stalls: AtomicU64,
    recv_stalls: AtomicU64,
}

impl SegCounters {
    fn snapshot(&self) -> StageCounterSnapshot {
        StageCounterSnapshot {
            chunks: self.chunks.load(Ordering::Relaxed),
            handoffs: self.handoffs.load(Ordering::Relaxed),
            send_stalls: self.send_stalls.load(Ordering::Relaxed),
            recv_stalls: self.recv_stalls.load(Ordering::Relaxed),
        }
    }
}

/// One pipelined run's scheduling telemetry, summed over all pipeline
/// stages. Exact reconciliation invariants (asserted by the differential
/// suite and the serving stats):
///
/// * `handoffs == chunks_streamed × (depth − 1)` — every chunk crosses
///   every boundary exactly once;
/// * `send_stalls ≤ handoffs` and `recv_stalls ≤ handoffs` — a stall is
///   always resolved by the matching handoff.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeRunStats {
    /// Pipeline stages the layer ran with.
    pub depth: u64,
    /// Micro-batch chunks streamed through the pipeline (per stage).
    pub chunks: u64,
    /// Chunk handoffs across all cut boundaries.
    pub handoffs: u64,
    /// Producer stalls (waiting for a recycled slab) across all stages.
    pub send_stalls: u64,
    /// Consumer stalls (waiting for the upstream producer) across all
    /// stages.
    pub recv_stalls: u64,
}

/// Per-segment reusable buffers: the stage's internal ping-pong slab pair
/// plus the first stage's prepared-input buffer and the final stage's
/// assembled-output park.
struct SegWs<T> {
    inbuf: Vec<T>,
    scratch_a: Vec<T>,
    scratch_b: Vec<T>,
    park: Vec<T>,
}

/// Pipeline-parallel executor for one layer's stage chain (module docs).
///
/// Construction plans the cuts, allocates every channel slab and
/// workspace, and spawns `depth − 1` dedicated stage threads; after the
/// first call, [`StagePipeline::matvec_batch_into`] is allocation-free on
/// every participating thread. One run executes at a time (concurrent
/// callers serialize on an internal lock, like the sequential engines'
/// workspace mutex).
pub struct StagePipeline<C: StageChain> {
    chain: Arc<C>,
    cut: CutPlan,
    micro: usize,
    host: PipelineHost,
    channels: Vec<ChunkChannel<C::Code>>,
    segs: Vec<Mutex<SegWs<C::Code>>>,
    counters: Vec<SegCounters>,
    reports: Vec<Mutex<C::Report>>,
    call_lock: Mutex<()>,
}

impl<C: StageChain> std::fmt::Debug for StagePipeline<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StagePipeline")
            .field("depth", &self.cut.depth())
            .field("micro_batch", &self.micro)
            .field("cuts", &self.cut.cuts())
            .finish()
    }
}

/// Configuration for a [`StagePipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineConfig {
    /// Requested pipeline stages (cut count); clamped to the layer's `d`.
    pub depth: usize,
    /// Batch columns per streamed chunk. `1` streams sample by sample —
    /// the paper's per-sample `V'_h` streaming — which maximizes overlap;
    /// larger chunks amortize handoffs for very small stages.
    pub micro_batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            depth: 2,
            micro_batch: 1,
        }
    }
}

impl<C: StageChain> StagePipeline<C> {
    /// Plans the cuts and builds the executor (see the type docs).
    ///
    /// # Errors
    ///
    /// [`TensorError::InvalidArgument`] on a zero `depth`/`micro_batch` or
    /// a plan/chain dimension inconsistency.
    pub fn new(chain: C, config: PipelineConfig) -> Result<Self> {
        Self::from_arc(Arc::new(chain), config)
    }

    /// [`StagePipeline::new`] over an already-shared chain (cloning an
    /// executor shares the chain, never the channels or workspaces).
    ///
    /// # Errors
    ///
    /// See [`StagePipeline::new`].
    pub fn from_arc(chain: Arc<C>, config: PipelineConfig) -> Result<Self> {
        if config.depth == 0 {
            return Err(invalid("pipeline depth must be at least 1"));
        }
        if config.micro_batch == 0 {
            return Err(invalid("pipeline micro_batch must be at least 1"));
        }
        let cut = plan_cuts(chain.plan(), config.depth);
        let depth = cut.depth();
        let micro = config.micro_batch;
        let stages = chain.plan().stages().to_vec();
        if stages.is_empty() {
            return Err(invalid("pipeline needs at least one plan stage"));
        }
        for win in stages.windows(2) {
            if win[0].output_elems() != win[1].input_elems() {
                return Err(invalid("plan stage chain is not size-consistent"));
            }
        }

        let channels = cut.runs()[..depth - 1]
            .iter()
            .map(|run| ChunkChannel::new(stages[run.hi].input_elems() * micro, CHANNEL_SLOTS))
            .collect();
        let segs = cut
            .runs()
            .iter()
            .enumerate()
            .map(|(s, run)| {
                let inbuf = if s == 0 {
                    stages[0].input_elems() * micro
                } else {
                    0
                };
                let interior = (run.lo + 1..run.hi)
                    .map(|idx| stages[idx].input_elems())
                    .max()
                    .unwrap_or(0);
                let scratch_a = if run.len() >= 2 { interior * micro } else { 0 };
                let scratch_b = if run.len() >= 3 { interior * micro } else { 0 };
                let park = if s + 1 == depth {
                    stages.last().expect("non-empty plan").output_elems() * micro
                } else {
                    0
                };
                Mutex::new(SegWs {
                    inbuf: vec![C::Code::default(); inbuf],
                    scratch_a: vec![C::Code::default(); scratch_a],
                    scratch_b: vec![C::Code::default(); scratch_b],
                    park: vec![C::Code::default(); park],
                })
            })
            .collect();
        let counters = (0..depth).map(|_| SegCounters::default()).collect();
        let reports = (0..depth)
            .map(|_| Mutex::new(C::Report::default()))
            .collect();
        Ok(StagePipeline {
            chain,
            cut,
            micro,
            host: PipelineHost::new(depth - 1),
            channels,
            segs,
            counters,
            reports,
            call_lock: Mutex::new(()),
        })
    }

    /// The planned cut points.
    #[must_use]
    pub fn cut_plan(&self) -> &CutPlan {
        &self.cut
    }

    /// Number of pipeline stages actually running.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.cut.depth()
    }

    /// Columns per streamed chunk.
    #[must_use]
    pub fn micro_batch(&self) -> usize {
        self.micro
    }

    /// The wrapped stage chain.
    #[must_use]
    pub fn chain(&self) -> &C {
        &self.chain
    }

    /// Cumulative per-stage occupancy/handoff/stall counters since
    /// construction, upstream stage first.
    #[must_use]
    pub fn stage_counters(&self) -> Vec<StageCounterSnapshot> {
        self.counters.iter().map(SegCounters::snapshot).collect()
    }

    fn totals(&self) -> StageCounterSnapshot {
        let mut total = StageCounterSnapshot::default();
        for c in &self.counters {
            let s = c.snapshot();
            total.chunks += s.chunks;
            total.handoffs += s.handoffs;
            total.send_stalls += s.send_stalls;
            total.recv_stalls += s.recv_stalls;
        }
        total
    }

    /// Pipelined batched matvec: streams the `N × b` batch `xs` through
    /// the stage runs in micro-batch chunks and assembles the `M × b`
    /// output into `ys`. Bit-identical to the sequential engine the chain
    /// wraps, at any depth, micro-batch size, and pool size.
    ///
    /// # Errors
    ///
    /// [`TensorError::ElementCountMismatch`] on wrong buffer lengths,
    /// [`TensorError::InvalidArgument`] on `b == 0`.
    pub fn matvec_batch_into(
        &self,
        xs: &[f64],
        b: usize,
        ys: &mut [f64],
    ) -> Result<(C::Report, PipeRunStats)> {
        let n = self.chain.num_cols();
        let m = self.chain.num_rows();
        if b == 0 {
            return Err(invalid("batch size must be at least 1"));
        }
        if xs.len() != n * b {
            return Err(TensorError::ElementCountMismatch {
                expected: n * b,
                got: xs.len(),
            });
        }
        if ys.len() != m * b {
            return Err(TensorError::ElementCountMismatch {
                expected: m * b,
                got: ys.len(),
            });
        }

        let _call = lock(&self.call_lock);
        let chunks = b.div_ceil(self.micro);
        let before = self.totals();
        for slot in &self.reports {
            *lock(slot) = C::Report::default();
        }

        let ys_cell = Mutex::new(ys);
        self.host.run(|branch| {
            let body = catch_unwind(AssertUnwindSafe(|| {
                self.segment_body(branch, xs, b, chunks, &ys_cell);
            }));
            if let Err(payload) = body {
                for ch in &self.channels {
                    ch.poison();
                }
                resume_unwind(payload);
            }
        });

        let mut report = C::Report::default();
        for slot in &self.reports {
            C::merge(&mut report, &lock(slot));
        }
        let after = self.totals();
        let stats = PipeRunStats {
            depth: self.depth() as u64,
            chunks: chunks as u64,
            handoffs: after.handoffs - before.handoffs,
            send_stalls: after.send_stalls - before.send_stalls,
            recv_stalls: after.recv_stalls - before.recv_stalls,
        };
        Ok((report, stats))
    }

    /// One pipeline stage's whole run: consume `chunks` chunks from
    /// upstream (or prepare them from `xs`), execute the owned TT stage
    /// run through the ping-pong slabs, ship downstream (or decode into
    /// `ys`).
    fn segment_body(
        &self,
        s: usize,
        xs: &[f64],
        b: usize,
        chunks: usize,
        ys_cell: &Mutex<&mut [f64]>,
    ) {
        let depth = self.cut.depth();
        let seg = self.cut.runs()[s];
        let counters = &self.counters[s];
        let mut report = C::Report::default();
        let mut ws_guard = lock(&self.segs[s]);
        let ws = &mut *ws_guard;
        let mut ys_guard = if s + 1 == depth {
            Some(lock(ys_cell))
        } else {
            None
        };

        for c in 0..chunks {
            let c0 = c * self.micro;
            let w = self.micro.min(b - c0);

            let cur: Vec<C::Code> = if s == 0 {
                let mut buf = mem::take(&mut ws.inbuf);
                self.chain.prepare(xs, b, c0, w, &mut buf);
                buf
            } else {
                let (msg, stalled) = self.channels[s - 1].recv();
                if stalled {
                    counters.recv_stalls.fetch_add(1, Ordering::Relaxed);
                }
                debug_assert_eq!(msg.w, w, "chunk stream out of order");
                msg.slab
            };

            let mut out: Vec<C::Code> = if s + 1 < depth {
                let (slab, stalled) = self.channels[s].acquire();
                if stalled {
                    counters.send_stalls.fetch_add(1, Ordering::Relaxed);
                }
                slab
            } else {
                mem::take(&mut ws.park)
            };

            // Dimensions are validated at construction; a failure here is
            // a bug, and panicking poisons the channels (see the caller).
            let run_ok = "stage dimensions validated at construction";
            if seg.len() == 1 {
                self.chain
                    .run_stage(seg.lo, &cur, &mut out, w, &mut report)
                    .expect(run_ok);
            } else {
                let mut ping = mem::take(&mut ws.scratch_a);
                let mut pong = mem::take(&mut ws.scratch_b);
                self.chain
                    .run_stage(seg.lo, &cur, &mut ping, w, &mut report)
                    .expect(run_ok);
                let mut src_is_ping = true;
                for idx in seg.lo + 1..seg.hi - 1 {
                    if src_is_ping {
                        self.chain
                            .run_stage(idx, &ping, &mut pong, w, &mut report)
                            .expect(run_ok);
                    } else {
                        self.chain
                            .run_stage(idx, &pong, &mut ping, w, &mut report)
                            .expect(run_ok);
                    }
                    src_is_ping = !src_is_ping;
                }
                let last = seg.hi - 1;
                if src_is_ping {
                    self.chain
                        .run_stage(last, &ping, &mut out, w, &mut report)
                        .expect(run_ok);
                } else {
                    self.chain
                        .run_stage(last, &pong, &mut out, w, &mut report)
                        .expect(run_ok);
                }
                ws.scratch_a = ping;
                ws.scratch_b = pong;
            }

            if s == 0 {
                ws.inbuf = cur;
            } else {
                self.channels[s - 1].release(cur);
            }

            if s + 1 < depth {
                counters.handoffs.fetch_add(1, Ordering::Relaxed);
                self.channels[s].send(ChunkMsg { slab: out, w });
            } else {
                let ys = ys_guard
                    .as_mut()
                    .expect("final segment holds the output lock");
                self.chain.finish(&out, ys, b, c0, w);
                ws.park = out;
            }
            counters.chunks.fetch_add(1, Ordering::Relaxed);
        }

        *lock(&self.reports[s]) = report;
    }
}

impl<C: StageChain> Clone for StagePipeline<C> {
    /// A clone shares the (immutable) chain but gets its own stage
    /// threads, channels, workspaces, and counters — the same contract as
    /// cloning a sequential engine.
    fn clone(&self) -> Self {
        Self::from_arc(
            Arc::clone(&self.chain),
            PipelineConfig {
                depth: self.cut.depth(),
                micro_batch: self.micro,
            },
        )
        .expect("cloning a validated pipeline cannot fail")
    }
}

// ---------------------------------------------------------------------------
// Float chain
// ---------------------------------------------------------------------------

/// [`StageChain`] over the float compact scheme: the same unfolded cores,
/// fused [`DestMap`] write epilogues, and preparation copy plan as
/// [`CompactEngine`], re-derived from the layer's [`TtShape`] so the
/// pipelined pass runs the identical arithmetic.
///
/// [`TtShape`]: tie_tt::TtShape
#[derive(Debug, Clone)]
pub struct FloatChain {
    plan: InferencePlan,
    gtildes: Vec<Tensor<f64>>,
    dest_maps: Vec<DestMap>,
    prep: CopyPlan,
    rows: usize,
    cols: usize,
    /// Final-stage fused epilogue, copied from the engine: the pipelined
    /// pass applies bias + activation inside the last stage's GEMM store,
    /// exactly like the sequential engine (bit-identical at any cut).
    bias: Option<Vec<f64>>,
    activation: Activation,
}

impl FloatChain {
    /// Builds the chain from a prepared engine (shares no state with it).
    ///
    /// # Errors
    ///
    /// Propagates shape errors (cannot occur for a valid engine).
    pub fn new(engine: &CompactEngine<f64>) -> Result<Self> {
        let shape = engine.matrix().shape();
        let plan = engine.plan().clone();
        let d = plan.stages().len();
        let mut dest_maps = Vec::with_capacity(d);
        for h in (2..=d).rev() {
            dest_maps.push(stage_dest_map(shape, h)?);
        }
        dest_maps.push(assemble_dest_map(shape)?);
        Ok(FloatChain {
            plan,
            gtildes: engine.unfolded_cores().to_vec(),
            dest_maps,
            prep: prepare_copy_plan(shape)?,
            rows: shape.num_rows(),
            cols: shape.num_cols(),
            bias: engine.bias().map(<[f64]>::to_vec),
            activation: engine.activation(),
        })
    }
}

impl StageChain for FloatChain {
    type Code = f64;
    type Report = OpCount;

    fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    fn num_rows(&self) -> usize {
        self.rows
    }

    fn num_cols(&self) -> usize {
        self.cols
    }

    fn prepare(&self, xs: &[f64], b: usize, c0: usize, w: usize, dst: &mut [f64]) {
        // The batched copy plan, restricted to a column slice: each
        // logical element's `w` columns are contiguous in both layouts.
        let run = self.prep.run;
        for (i, &src) in self.prep.src_starts.iter().enumerate() {
            for e in 0..run {
                let d0 = (i * run + e) * w;
                let s0 = (src + e) * b + c0;
                dst[d0..d0 + w].copy_from_slice(&xs[s0..s0 + w]);
            }
        }
    }

    fn run_stage(
        &self,
        idx: usize,
        input: &[f64],
        output: &mut [f64],
        w: usize,
        report: &mut OpCount,
    ) -> Result<()> {
        let stage = &self.plan.stages()[idx];
        let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
        if idx + 1 == self.plan.stages().len() {
            // Final stage: the bias/activation epilogue fuses into the
            // same store that assembles the output. The epilogue indexes
            // the logical destination element, so chunking the batch
            // cannot perturb it.
            gemm_into_mapped_fused(
                self.gtildes[stage.h - 1].data(),
                &input[..k * cols * w],
                &mut output[..rows * cols * w],
                rows,
                k,
                cols,
                w,
                &self.dest_maps[idx],
                self.bias.as_deref(),
                self.activation,
            )?;
        } else {
            gemm_into_mapped(
                self.gtildes[stage.h - 1].data(),
                &input[..k * cols * w],
                &mut output[..rows * cols * w],
                rows,
                k,
                cols,
                w,
                &self.dest_maps[idx],
            )?;
        }
        report.mults += stage.muls() * w as u64;
        report.adds += stage.muls() * w as u64;
        // Unlike the one-GEMM-per-batch sequential pass, a pipelined stage
        // re-reads its core once per streamed chunk — that is the traffic
        // pipelining trades for overlap, and the counter reports it
        // honestly.
        report.core_reads += stage.core_elems() as u64;
        Ok(())
    }

    fn finish(&self, codes: &[f64], ys: &mut [f64], b: usize, c0: usize, w: usize) {
        for o in 0..self.rows {
            ys[o * b + c0..o * b + c0 + w].copy_from_slice(&codes[o * w..o * w + w]);
        }
    }

    fn merge(into: &mut OpCount, other: &OpCount) {
        *into = into.merge(*other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tt::{TtMatrix, TtShape};

    fn engine(seed: u64, m: Vec<usize>, n: Vec<usize>, r: usize) -> CompactEngine<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(m, n, r).unwrap();
        CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.6).unwrap()).unwrap()
    }

    #[test]
    fn planner_covers_all_stages_contiguously() {
        let e = engine(1, vec![2, 3, 4], vec![4, 3, 2], 3);
        for depth in 1..=5 {
            let cut = plan_cuts(e.plan(), depth);
            assert_eq!(cut.depth(), depth.min(3));
            assert_eq!(cut.runs()[0].lo, 0);
            assert_eq!(cut.runs().last().unwrap().hi, 3);
            for win in cut.runs().windows(2) {
                assert_eq!(win[0].hi, win[1].lo, "runs must tile the plan");
            }
            assert!(cut.bottleneck_cost() <= cut.total_cost());
        }
    }

    #[test]
    fn planner_minimizes_the_bottleneck() {
        let e = engine(2, vec![4, 2, 2], vec![8, 2, 2], 3);
        let costs = stage_costs(e.plan());
        let cut = plan_cuts(e.plan(), 2);
        // Exhaustive check over the 2 possible cut points.
        let best = (1..3)
            .map(|c| {
                let left: u64 = costs[..c].iter().map(StageCost::total).sum();
                let right: u64 = costs[c..].iter().map(StageCost::total).sum();
                left.max(right)
            })
            .min()
            .unwrap();
        assert_eq!(cut.bottleneck_cost(), best);
    }

    #[test]
    fn planner_is_deterministic() {
        let e = engine(3, vec![2, 2, 2, 2], vec![2, 2, 2, 2], 2);
        let a = plan_cuts(e.plan(), 3);
        let b = plan_cuts(e.plan(), 3);
        assert_eq!(a, b);
    }

    fn assert_pipeline_matches(e: &CompactEngine<f64>, depth: usize, micro: usize, b: usize) {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let shape = e.matrix().shape();
        let (n, m) = (shape.num_cols(), shape.num_rows());
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
        let mut want = vec![0.0f64; m * b];
        e.matvec_batch_into(xs.data(), b, &mut want).unwrap();

        let chain = FloatChain::new(e).unwrap();
        let pipe = StagePipeline::new(
            chain,
            PipelineConfig {
                depth,
                micro_batch: micro,
            },
        )
        .unwrap();
        let mut got = vec![0.0f64; m * b];
        let (ops, stats) = pipe.matvec_batch_into(xs.data(), b, &mut got).unwrap();
        for (i, (&g, &w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.to_bits(),
                w.to_bits(),
                "depth {depth} micro {micro} b {b}: output {i} drifted"
            );
        }
        assert_eq!(stats.depth, pipe.depth() as u64);
        assert_eq!(stats.chunks, b.div_ceil(micro) as u64);
        assert_eq!(stats.handoffs, stats.chunks * (stats.depth - 1));
        assert!(stats.send_stalls <= stats.handoffs);
        assert!(stats.recv_stalls <= stats.handoffs);
        // Arithmetic counters are chunk-invariant.
        let seq = e.matvec_batch_into(xs.data(), b, &mut want).unwrap();
        assert_eq!(ops.mults, seq.mults);
        assert_eq!(ops.adds, seq.adds);
    }

    #[test]
    fn pipelined_outputs_are_bit_identical_across_depths_and_chunks() {
        let e = engine(4, vec![2, 3, 4], vec![4, 3, 2], 3);
        for depth in [1, 2, 3, 4] {
            for micro in [1, 3, 8] {
                for b in [1, 5, 8] {
                    assert_pipeline_matches(&e, depth, micro, b);
                }
            }
        }
    }

    #[test]
    fn fused_epilogue_survives_pipelining_bitwise() {
        // The final-stage bias+ReLU epilogue must not perturb pipelined
        // execution: every depth/micro/batch combination stays bitwise
        // equal to the sequential fused engine.
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let base = engine(9, vec![2, 3, 4], vec![4, 3, 2], 3);
        let m = base.matrix().shape().num_rows();
        let bias: Tensor<f64> = init::uniform(&mut rng, vec![m], 0.5);
        let e = base
            .with_activation(Activation::Relu)
            .with_bias(bias.data().to_vec())
            .unwrap();
        for depth in [1, 2, 3] {
            for micro in [1, 3] {
                assert_pipeline_matches(&e, depth, micro, 5);
            }
        }
    }

    #[test]
    fn single_stage_layer_degenerates_cleanly() {
        let e = engine(5, vec![5], vec![7], 1);
        assert_pipeline_matches(&e, 4, 2, 3);
    }

    #[test]
    fn per_stage_counters_reconcile_exactly() {
        let e = engine(6, vec![2, 3, 4], vec![4, 3, 2], 3);
        let pipe = StagePipeline::new(
            FloatChain::new(&e).unwrap(),
            PipelineConfig {
                depth: 3,
                micro_batch: 1,
            },
        )
        .unwrap();
        let (n, m) = (e.matrix().shape().num_cols(), e.matrix().shape().num_rows());
        let b = 6;
        let xs = vec![0.25f64; n * b];
        let mut ys = vec![0.0f64; m * b];
        for _ in 0..3 {
            pipe.matvec_batch_into(&xs, b, &mut ys).unwrap();
        }
        let counters = pipe.stage_counters();
        assert_eq!(counters.len(), 3);
        for (s, c) in counters.iter().enumerate() {
            assert_eq!(c.chunks, 18, "stage {s} occupancy");
            if s + 1 < counters.len() {
                // Every handoff is received by the next stage as one chunk.
                assert_eq!(c.handoffs, counters[s + 1].chunks, "boundary {s}");
            } else {
                assert_eq!(c.handoffs, 0);
            }
            assert!(c.send_stalls <= c.handoffs);
        }
    }

    #[test]
    fn rejects_bad_arguments() {
        let e = engine(7, vec![2, 3], vec![3, 2], 2);
        let pipe =
            StagePipeline::new(FloatChain::new(&e).unwrap(), PipelineConfig::default()).unwrap();
        let mut ys = vec![0.0f64; 6];
        assert!(pipe.matvec_batch_into(&[0.0; 6], 0, &mut ys).is_err());
        assert!(pipe.matvec_batch_into(&[0.0; 5], 1, &mut ys).is_err());
        assert!(pipe.matvec_batch_into(&[0.0; 6], 1, &mut ys[..5]).is_err());
        assert!(StagePipeline::new(
            FloatChain::new(&e).unwrap(),
            PipelineConfig {
                depth: 0,
                micro_batch: 1
            }
        )
        .is_err());
        assert!(StagePipeline::new(
            FloatChain::new(&e).unwrap(),
            PipelineConfig {
                depth: 2,
                micro_batch: 0
            }
        )
        .is_err());
    }

    #[test]
    fn clones_share_results_not_state() {
        let e = engine(8, vec![2, 3], vec![3, 2], 2);
        let pipe = StagePipeline::new(
            FloatChain::new(&e).unwrap(),
            PipelineConfig {
                depth: 2,
                micro_batch: 1,
            },
        )
        .unwrap();
        let clone = pipe.clone();
        let xs = vec![0.5f64; 6 * 2];
        let (mut a, mut b) = (vec![0.0f64; 6 * 2], vec![0.0f64; 6 * 2]);
        pipe.matvec_batch_into(&xs, 2, &mut a).unwrap();
        clone.matvec_batch_into(&xs, 2, &mut b).unwrap();
        assert_eq!(a, b);
        // The clone's counters started fresh.
        assert_eq!(clone.stage_counters()[0].chunks, 2);
    }

    /// The engine must stay shareable across serving threads.
    const _: () = {
        const fn assert_send_sync<T: Send + Sync>() {}
        let _ = assert_send_sync::<StagePipeline<FloatChain>>;
    };
}
