//! The index bijections of the compact inference scheme.
//!
//! The compact scheme threads a matrix `V` through `d` multiply stages; in
//! between, the data must be re-laid-out so that the next stage's matrix
//! multiply contracts the right indices. The paper expresses these layouts
//! with explicit index formulas (Eqns. (8) and (10)); in TIE hardware the
//! re-layout is free (the working-SRAM read scheme of Algorithm 2 reads in
//! permuted order), and in this software reference it is an explicit
//! permutation so it can be tested and counted.
//!
//! ## Conventions (fixed across the whole workspace)
//!
//! With `h ∈ 1..=d` (1-based, matching the paper), the intermediate
//! matrices have these layouts:
//!
//! * `V'_{h}` (input to the stage that multiplies `G̃_{h-1}`), for
//!   `h ∈ 2..=d+1`: rows `p' = j_{h-1}·r_{h-1} + t_{h-1}`, columns
//!   `q' = J_{h-2} · MP_h + I_h` where
//!   - `J_{h-2} = Σ_{l=1}^{h-2} j_l ∏_{i<l} n_i` (`j_1` fastest),
//!   - `I_h = Σ_{u=h}^{d} i_u ∏_{t=h}^{u-1} m_t` (`i_h` fastest),
//!   - `MP_h = ∏_{t=h}^{d} m_t`.
//! * `V_h` (output of the stage that multiplies `G̃_h`), `h ∈ 1..=d`: rows
//!   `p = i_h·r_{h-1} + t_{h-1}`, columns `q = J_{h-1} · MP_{h+1} + I_{h+1}`.
//!
//! `V'_{d+1}` is the prepared input `X'` (Eqn. (8)), and `V_1` holds the
//! output, gathered by [`assemble_output`].
//!
//! These are exactly the paper's Eqn. (10) strides. The inter-stage map
//! collapses to a closed form that needs no digit-by-digit decoding:
//!
//! ```text
//! i_h = p / r,  t = p % r,   J = q / MP_{h+1},  I = q % MP_{h+1}
//! j_{h-1} = J / NP_{h-1},    J' = J % NP_{h-1}      (NP_{h-1} = ∏_{l<h-1} n_l)
//! p' = j_{h-1}·r + t
//! q' = J'·(m_h · MP_{h+1}) + (i_h + m_h · I)
//! ```

use tie_tensor::{parallel, Result, Scalar, Tensor, TensorError};
use tie_tt::TtShape;

/// Batched destination-indexed permutation copy, the one memory-movement
/// primitive behind every transform application: row `o` of `dst` (a
/// contiguous `b`-element batch block) is copied from row `gather[o]` of
/// `src`.
///
/// Large moves split the **destination** rows across the persistent pool
/// (`tie_tensor::pool` via `for_each_row_slab`); each output block is
/// written by exactly one slab and reads are side-effect-free, so the
/// result is bit-identical at any thread count. Small moves (below the
/// [`parallel::threads_for`] spawn threshold) stay on the calling thread.
/// Allocation-free: everything lives in caller buffers.
///
/// Since the fused write epilogue took over the steady-state inter-stage
/// traffic this runs only on cold paths (traced runs, the gather-table
/// oracle), so it shares the kernels' work threshold instead of carrying
/// its own copy-specific tuning constant.
pub(crate) fn copy_gather_batched<T: Scalar>(gather: &[usize], src: &[T], dst: &mut [T], b: usize) {
    let rows = gather.len();
    debug_assert!(dst.len() >= rows * b);
    let threads = parallel::threads_for(rows * b, rows);
    parallel::for_each_row_slab(&mut dst[..rows * b], rows, b, threads, |o0, slab| {
        for (r, out) in slab.chunks_mut(b).enumerate() {
            let s = gather[o0 + r];
            out.copy_from_slice(&src[s * b..(s + 1) * b]);
        }
    });
}

/// One inter-stage transform `V_h → V'_h` as a reusable index map.
///
/// Stage numbering is 1-based as in the paper: `h ∈ 2..=d` (the `h = 1`
/// output is handled by [`assemble_output`], the `h = d + 1` input by
/// [`prepare_input`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformMap {
    /// 1-based stage index `h`.
    pub h: usize,
    /// Rows of `V_h` (`m_h · r_{h-1}`).
    pub rows_in: usize,
    /// Columns of `V_h` (`∏_{l<h} n_l · ∏_{t>h} m_t`).
    pub cols_in: usize,
    /// Rows of `V'_h` (`n_{h-1} · r_{h-1}`).
    pub rows_out: usize,
    /// Columns of `V'_h` (`∏_{l<h-1} n_l · ∏_{t≥h} m_t`).
    pub cols_out: usize,
    r: usize,
    m_h: usize,
    mp: usize, // ∏_{t>h} m_t
    np: usize, // ∏_{l<h-1} n_l
}

impl TransformMap {
    /// Builds the transform for stage `h` (1-based, `2 ≤ h ≤ d`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if `h` is out of range.
    pub fn new(shape: &TtShape, h: usize) -> Result<Self> {
        let d = shape.ndim();
        if h < 2 || h > d {
            return Err(TensorError::InvalidArgument {
                message: format!("transform stage h={h} out of 2..={d}"),
            });
        }
        let r = shape.ranks[h - 1];
        let m_h = shape.row_modes[h - 1];
        let mp: usize = shape.row_modes[h..].iter().product();
        let np: usize = shape.col_modes[..h - 2].iter().product();
        let n_prev = shape.col_modes[h - 2];
        let rows_in = m_h * r;
        let cols_in = shape.col_modes[..h - 1].iter().product::<usize>() * mp;
        let rows_out = n_prev * r;
        let cols_out = np * m_h * mp;
        Ok(TransformMap {
            h,
            rows_in,
            cols_in,
            rows_out,
            cols_out,
            r,
            m_h,
            mp,
            np,
        })
    }

    /// Maps a `(row, col)` position of `V_h` to its position in `V'_h`.
    ///
    /// This is the paper's Eqn. (10). Total element count is preserved; the
    /// map is a bijection (tested property).
    pub fn map(&self, p: usize, q: usize) -> (usize, usize) {
        debug_assert!(p < self.rows_in && q < self.cols_in);
        let i_h = p / self.r;
        let t = p % self.r;
        let j_big = q / self.mp;
        let i_rest = q % self.mp;
        let j_prev = j_big / self.np;
        let j_small = j_big % self.np;
        let p_out = j_prev * self.r + t;
        let q_out = j_small * (self.m_h * self.mp) + (i_h + self.m_h * i_rest);
        (p_out, q_out)
    }

    /// Inverse of [`TransformMap::map`]: the `V_h` position holding the
    /// element that appears at `(p', q')` of `V'_h`.
    ///
    /// This is what TIE's working-SRAM read scheme evaluates in hardware:
    /// the Transform is never materialized; reads of `V'_h` are issued at
    /// these source addresses (paper §4.4, Fig. 10).
    pub fn map_inverse(&self, p_out: usize, q_out: usize) -> (usize, usize) {
        debug_assert!(p_out < self.rows_out && q_out < self.cols_out);
        let j_prev = p_out / self.r;
        let t = p_out % self.r;
        let mm = self.m_h * self.mp;
        let j_small = q_out / mm;
        let rem = q_out % mm;
        let i_h = rem % self.m_h;
        let i_rest = rem / self.m_h;
        let p = i_h * self.r + t;
        let q = (j_prev * self.np + j_small) * self.mp + i_rest;
        (p, q)
    }

    /// Destination-indexed gather vector: entry `o` (flat offset into
    /// `V'_h`) holds the flat source offset into `V_h` whose element lands
    /// at `o`.
    ///
    /// This is [`TransformMap::map`] materialized once so the hot path can
    /// re-lay-out a stage output with plain sequential block copies — the
    /// software analogue of TIE's working-SRAM read scheme, where the
    /// permuted addresses are generated instead of the data being moved.
    /// [`crate::CompactEngine`] precomputes these at construction.
    #[must_use]
    pub fn gather(&self) -> Vec<usize> {
        let mut g = vec![0usize; self.rows_out * self.cols_out];
        for p in 0..self.rows_in {
            for q in 0..self.cols_in {
                let (po, qo) = self.map(p, q);
                g[po * self.cols_out + qo] = p * self.cols_in + q;
            }
        }
        g
    }

    /// Inverse of [`TransformMap::gather`]: entry `s` (flat offset into
    /// `V_h`) holds the flat destination offset into `V'_h` where the
    /// element at `s` lands. Since the transform is a bijection, this is
    /// the gather vector's permutation inverse; it lets the adjoint
    /// ([`TransformMap::apply_inverse_batched`]) run as a
    /// destination-indexed — hence parallelizable — copy too.
    #[must_use]
    pub fn gather_inverse(&self) -> Vec<usize> {
        let g = self.gather();
        let mut inv = vec![0usize; g.len()];
        for (o, &src) in g.iter().enumerate() {
            inv[src] = o;
        }
        inv
    }

    /// Applies the transform to a materialized `V_h`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v` has the wrong shape.
    pub fn apply<T: Scalar>(&self, v: &Tensor<T>) -> Result<Tensor<T>> {
        if v.dims() != [self.rows_in, self.cols_in] {
            return Err(TensorError::ShapeMismatch {
                left: v.dims().to_vec(),
                right: vec![self.rows_in, self.cols_in],
            });
        }
        let mut out = Tensor::zeros(vec![self.rows_out, self.cols_out]);
        for p in 0..self.rows_in {
            for q in 0..self.cols_in {
                let (po, qo) = self.map(p, q);
                out.data_mut()[po * self.cols_out + qo] = v.data()[p * self.cols_in + q];
            }
        }
        Ok(out)
    }

    /// Applies the transform to a **batched** `V_h` stored as
    /// `rows_in × (cols_in · b)` with the batch index inner-most (matrix
    /// element `(p, q)` of sample `c` at flat `(p·cols_in + q)·b + c`).
    ///
    /// Because the batch rides inner-most, the whole permutation becomes
    /// `rows·cols` contiguous `b`-element block copies — one gather walk
    /// re-lays-out every sample at once. This is how the batched TT-layer
    /// in `tie-nn` moves a full minibatch through one transform.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v` has the wrong shape.
    pub fn apply_batched<T: Scalar>(&self, v: &Tensor<T>, b: usize) -> Result<Tensor<T>> {
        if v.dims() != [self.rows_in, self.cols_in * b] {
            return Err(TensorError::ShapeMismatch {
                left: v.dims().to_vec(),
                right: vec![self.rows_in, self.cols_in * b],
            });
        }
        let gather = self.gather();
        let mut out = Tensor::zeros(vec![self.rows_out, self.cols_out * b]);
        copy_gather_batched(&gather, v.data(), out.data_mut(), b);
        Ok(out)
    }

    /// Adjoint of [`TransformMap::apply_batched`]: routes a batched
    /// `V'_h`-layout matrix back to the `V_h` layout (the permutation's
    /// transpose), batch inner-most.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v` has the wrong shape.
    pub fn apply_inverse_batched<T: Scalar>(&self, v: &Tensor<T>, b: usize) -> Result<Tensor<T>> {
        if v.dims() != [self.rows_out, self.cols_out * b] {
            return Err(TensorError::ShapeMismatch {
                left: v.dims().to_vec(),
                right: vec![self.rows_out, self.cols_out * b],
            });
        }
        // The adjoint's natural loop is a scatter (destination rows written
        // in source order); routing it through the inverse permutation
        // turns it into a destination-indexed gather so the same parallel
        // primitive applies.
        let gather_inv = self.gather_inverse();
        let mut out = Tensor::zeros(vec![self.rows_in, self.cols_in * b]);
        copy_gather_batched(&gather_inv, v.data(), out.data_mut(), b);
        Ok(out)
    }

    /// Applies the inverse transform (`V'_h → V_h`).
    ///
    /// Because the transform is a permutation, its inverse is its
    /// transpose; backpropagation through the compact scheme (TT-layer
    /// training in `tie-nn`) routes gradients through this.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `v` has the wrong shape.
    pub fn apply_inverse<T: Scalar>(&self, v: &Tensor<T>) -> Result<Tensor<T>> {
        if v.dims() != [self.rows_out, self.cols_out] {
            return Err(TensorError::ShapeMismatch {
                left: v.dims().to_vec(),
                right: vec![self.rows_out, self.cols_out],
            });
        }
        let mut out = Tensor::zeros(vec![self.rows_in, self.cols_in]);
        for p in 0..self.rows_in {
            for q in 0..self.cols_in {
                let (po, qo) = self.map(p, q);
                out.data_mut()[p * self.cols_in + q] = v.data()[po * self.cols_out + qo];
            }
        }
        Ok(out)
    }
}

/// Prepares the input: dense `x` (length `N`, row-major mode order with
/// `j_1` most significant) → `X' (n_d × N/n_d)` per Eqn. (8):
/// `X'(j_d, Σ_{l<d} j_l ∏_{i<l} n_i)`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
pub fn prepare_input<T: Scalar>(x: &Tensor<T>, shape: &TtShape) -> Result<Tensor<T>> {
    let n_total = shape.num_cols();
    if x.ndim() != 1 || x.num_elements() != n_total {
        return Err(TensorError::ShapeMismatch {
            left: x.dims().to_vec(),
            right: vec![n_total],
        });
    }
    let d = shape.ndim();
    let n_d = shape.col_modes[d - 1];
    let cols = n_total / n_d;
    let scatter = prepare_input_scatter(shape);
    let mut out = Tensor::zeros(vec![n_d, cols]);
    for (j, &val) in x.data().iter().enumerate() {
        out.data_mut()[scatter[j]] = val;
    }
    Ok(out)
}

/// Source-indexed scatter vector for [`prepare_input`]: entry `j` is the
/// flat destination offset inside `X' (n_d × N/n_d)` where `x[j]` lands.
///
/// `x` is row-major with `j_d` fastest; `X'` rows are `j_d` and columns
/// `Σ_{l<d} j_l ∏_{i<l} n_i` (`j_1` fastest), per Eqn. (8). Precomputed by
/// [`crate::CompactEngine`] so the batched pipeline prepares inputs with
/// pure block copies.
#[must_use]
pub fn prepare_input_scatter(shape: &TtShape) -> Vec<usize> {
    let d = shape.ndim();
    let n_total = shape.num_cols();
    let n_d = shape.col_modes[d - 1];
    let cols = n_total / n_d;
    // Target stride of digit j_l inside the column index is ∏_{i<l} n_i.
    let mut strides = vec![1usize; d];
    for l in 1..d {
        strides[l] = strides[l - 1] * shape.col_modes[l - 1];
    }
    let mut scatter = vec![0usize; n_total];
    for (j, s) in scatter.iter_mut().enumerate() {
        // Row-major digits: j = Σ j_l ∏_{t>l} n_t (j_d fastest).
        let p = j % n_d;
        let mut rest = j / n_d; // digits j_{d-1} … j_1, j_{d-1} fastest
        let mut q = 0usize;
        for l in (1..d).rev() {
            let digit = rest % shape.col_modes[l - 1];
            rest /= shape.col_modes[l - 1];
            q += digit * strides[l - 1];
        }
        *s = p * cols + q;
    }
    scatter
}

/// Gathers the output: `V_1 (m_1 × M/m_1)` with columns
/// `I_2 = Σ_{u≥2} i_u ∏_{t=2}^{u-1} m_t` → dense `y` (length `M`,
/// row-major with `i_1` most significant).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `v1` has the wrong shape.
pub fn assemble_output<T: Scalar>(v1: &Tensor<T>, shape: &TtShape) -> Result<Tensor<T>> {
    let m_total = shape.num_rows();
    let m_1 = shape.row_modes[0];
    let cols = m_total / m_1;
    if v1.dims() != [m_1, cols] {
        return Err(TensorError::ShapeMismatch {
            left: v1.dims().to_vec(),
            right: vec![m_1, cols],
        });
    }
    let gather = assemble_output_gather(shape);
    let mut y = Tensor::zeros(vec![m_total]);
    for (i, out) in y.data_mut().iter_mut().enumerate() {
        *out = v1.data()[gather[i]];
    }
    Ok(y)
}

/// Destination-indexed gather vector for [`assemble_output`]: entry `i` is
/// the flat source offset inside `V_1 (m_1 × M/m_1)` holding `y[i]`.
///
/// `y` is row-major with `i_d` fastest; `V_1` rows are `i_1` and columns
/// `Σ_{u≥2} i_u ∏_{t=2}^{u-1} m_t` (`i_2` fastest). Precomputed by
/// [`crate::CompactEngine`] so the batched pipeline assembles outputs with
/// pure block copies.
#[must_use]
pub fn assemble_output_gather(shape: &TtShape) -> Vec<usize> {
    let d = shape.ndim();
    let m_total = shape.num_rows();
    let m_1 = shape.row_modes[0];
    let cols = m_total / m_1;
    // Strides of i_u inside the V_1 column index: i_2 fastest.
    let mut strides = vec![0usize; d + 1];
    if d >= 2 {
        strides[2] = 1;
        for u in 3..=d {
            strides[u] = strides[u - 1] * shape.row_modes[u - 2];
        }
    }
    let mut gather = vec![0usize; m_total];
    for (i, g) in gather.iter_mut().enumerate() {
        // Row-major digits of i (i_d fastest).
        let mut rest = i;
        let mut digits = vec![0usize; d + 1]; // 1-based
        for u in (1..=d).rev() {
            digits[u] = rest % shape.row_modes[u - 1];
            rest /= shape.row_modes[u - 1];
        }
        let col: usize = (2..=d).map(|u| digits[u] * strides[u]).sum();
        *g = digits[1] * cols + col;
    }
    gather
}

/// The paper's **literal 4-step Transform** (Algorithm 1's `Transform`
/// subroutine / Fig. 6(b)): transpose → reshape → split → assemble,
/// executed with actual matrix operations.
///
/// ```text
/// V'  = Transpose(V_h)                       # (m_h r) × C  →  C × (m_h r)
/// V'  = Reshape(V', [n_{h-1}, -1])
/// T'[j] = Reshape(V'[:, (j-1)·r .. j·r], [n_{h-1}·r])   # j = 1 .. ∏_{k≤h-2} n_k · ∏_{k≥h} m_k
/// V'_h[:, j] = T'[j]
/// ```
///
/// It is proven equivalent to the closed-form [`TransformMap::map`] by
/// the test suite (unit + property tests) — the fidelity check that the
/// paper's pseudocode and the index algebra describe the same
/// permutation. Production code uses the map (and the simulator performs
/// it for free in its SRAM access scheme); this exists as the executable
/// form of the paper's own description.
///
/// # Errors
///
/// Returns shape errors for a `v` that does not match stage `h` of
/// `shape`.
pub fn four_step_transform<T: Scalar>(
    v: &Tensor<T>,
    shape: &TtShape,
    h: usize,
) -> Result<Tensor<T>> {
    let t = TransformMap::new(shape, h)?;
    if v.dims() != [t.rows_in, t.cols_in] {
        return Err(TensorError::ShapeMismatch {
            left: v.dims().to_vec(),
            right: vec![t.rows_in, t.cols_in],
        });
    }
    let r = shape.ranks[h - 1];
    let n_prev = shape.col_modes[h - 2];
    // Step 1: transpose.
    let vt = v.transposed()?;
    // Step 2: reshape to [n_{h-1}, -1]. The transpose has rows indexed by
    // the old columns q (j_{h-1} most significant), so the leading n_{h-1}
    // factor splits off j_{h-1} exactly.
    let total = vt.num_elements();
    let wide = vt.reshaped(vec![n_prev, total / n_prev])?;
    // Steps 3+4: split into r-wide chunks, flatten each chunk row-major,
    // and assemble the chunks as columns.
    let chunks = (total / n_prev) / r;
    let mut out = Tensor::<T>::zeros(vec![n_prev * r, chunks]);
    for j in 0..chunks {
        let chunk = wide.cols(j * r, (j + 1) * r)?; // n_{h-1} × r
        let flat = chunk.reshaped(vec![n_prev * r])?;
        for (row, &val) in flat.data().iter().enumerate() {
            out.data_mut()[row * chunks + j] = val;
        }
    }
    Ok(out)
}

/// Inverse of [`prepare_input`]: scatters an `X'`-layout matrix back into
/// the dense row-major vector `x`. Gradients of the compact scheme flow
/// through this (permutation transpose).
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `xp` has the wrong shape.
pub fn prepare_input_inverse<T: Scalar>(xp: &Tensor<T>, shape: &TtShape) -> Result<Tensor<T>> {
    let n_total = shape.num_cols();
    let d = shape.ndim();
    let n_d = shape.col_modes[d - 1];
    let cols = n_total / n_d;
    if xp.dims() != [n_d, cols] {
        return Err(TensorError::ShapeMismatch {
            left: xp.dims().to_vec(),
            right: vec![n_d, cols],
        });
    }
    // Reuse the forward scatter: position of x[j] inside X' is fixed.
    let scatter = prepare_input_scatter(shape);
    let mut out = Tensor::zeros(vec![n_total]);
    for (j, val) in out.data_mut().iter_mut().enumerate() {
        *val = xp.data()[scatter[j]];
    }
    Ok(out)
}

/// Inverse of [`assemble_output`]: scatters a dense row-major `y` back into
/// the `V_1` layout. Backpropagation entry point for the compact scheme.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if `y` has the wrong length.
pub fn assemble_output_inverse<T: Scalar>(y: &Tensor<T>, shape: &TtShape) -> Result<Tensor<T>> {
    let m_total = shape.num_rows();
    if y.ndim() != 1 || y.num_elements() != m_total {
        return Err(TensorError::ShapeMismatch {
            left: y.dims().to_vec(),
            right: vec![m_total],
        });
    }
    let m_1 = shape.row_modes[0];
    let cols = m_total / m_1;
    // Reuse the forward gather: y[i] lives at gather[i] inside V_1.
    let gather = assemble_output_gather(shape);
    let mut v1 = Tensor::zeros(vec![m_1, cols]);
    for (i, &val) in y.data().iter().enumerate() {
        v1.data_mut()[gather[i]] = val;
    }
    Ok(v1)
}

/// Inverse of [`unfold_core`]: folds a stage matrix
/// `G̃_h ((m_h r_{h-1}) × (n_h r_h))` back into the 4-D core layout
/// `(r_{h-1} × m_h × n_h × r_h)`. Used to map stage-matrix gradients back
/// onto core parameters.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] if the matrix does not factor as
/// `(m·r0) × (n·r1)` for the given dims.
pub fn fold_core<T: Scalar>(
    gtilde: &Tensor<T>,
    r0: usize,
    m: usize,
    n: usize,
    r1: usize,
) -> Result<Tensor<T>> {
    if gtilde.dims() != [m * r0, n * r1] {
        return Err(TensorError::ShapeMismatch {
            left: gtilde.dims().to_vec(),
            right: vec![m * r0, n * r1],
        });
    }
    // reshape (m r0 n r1) then permute [1,0,2,3] back to (r0 m n r1)
    gtilde.reshaped(vec![m, r0, n, r1])?.permuted(&[1, 0, 2, 3])
}

/// Unfolds a 4-D core `G_h (r_{h-1} × m_h × n_h × r_h)` into the stage
/// matrix `G̃_h ((m_h r_{h-1}) × (n_h r_h))` with rows `(i_h, t_{h-1})`
/// (`i_h` major) and columns `(j_h, t_h)` (`j_h` major), matching the
/// `V` layouts above.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] for a non-4-D core.
pub fn unfold_core<T: Scalar>(core: &Tensor<T>) -> Result<Tensor<T>> {
    if core.ndim() != 4 {
        return Err(TensorError::InvalidArgument {
            message: format!("core must be 4-d, has {} dims", core.ndim()),
        });
    }
    // [r0, m, n, r1] -> [m, r0, n, r1] -> reshape (m r0) × (n r1)
    let permuted = core.permuted(&[1, 0, 2, 3])?;
    let [m, r0, n, r1] = [
        permuted.dims()[0],
        permuted.dims()[1],
        permuted.dims()[2],
        permuted.dims()[3],
    ];
    permuted.reshaped(vec![m * r0, n * r1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_tt::TtShape;

    fn shape_3d() -> TtShape {
        TtShape::new(vec![2, 3, 2], vec![3, 2, 3], vec![1, 2, 2, 1]).unwrap()
    }

    #[test]
    fn transform_map_shapes() {
        let s = shape_3d();
        // h = 3 (last stage's output): V_3 is (m3 r2) × (n1 n2 · 1)
        let t3 = TransformMap::new(&s, 3).unwrap();
        assert_eq!((t3.rows_in, t3.cols_in), (2 * 2, 3 * 2));
        assert_eq!((t3.rows_out, t3.cols_out), (2 * 2, 3 * 2));
        // h = 2: V_2 is (m2 r1) × (n1 · m3)
        let t2 = TransformMap::new(&s, 2).unwrap();
        assert_eq!((t2.rows_in, t2.cols_in), (3 * 2, 3 * 2));
        assert_eq!((t2.rows_out, t2.cols_out), (3 * 2, 3 * 2));
        assert!(TransformMap::new(&s, 1).is_err());
        assert!(TransformMap::new(&s, 4).is_err());
    }

    #[test]
    fn transform_map_is_bijection() {
        let s = TtShape::new(vec![2, 4, 3], vec![3, 2, 2], vec![1, 3, 2, 1]).unwrap();
        for h in 2..=3 {
            let t = TransformMap::new(&s, h).unwrap();
            assert_eq!(t.rows_in * t.cols_in, t.rows_out * t.cols_out);
            let mut seen = vec![false; t.rows_out * t.cols_out];
            for p in 0..t.rows_in {
                for q in 0..t.cols_in {
                    let (po, qo) = t.map(p, q);
                    assert!(
                        po < t.rows_out && qo < t.cols_out,
                        "h={h} maps out of range"
                    );
                    let off = po * t.cols_out + qo;
                    assert!(!seen[off], "h={h} collision at ({p},{q})");
                    seen[off] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "h={h} map not surjective");
        }
    }

    #[test]
    fn transform_preserves_multiset_of_values() {
        let s = shape_3d();
        let t = TransformMap::new(&s, 3).unwrap();
        let v = Tensor::<f64>::from_fn(vec![t.rows_in, t.cols_in], |i| (i[0] * 100 + i[1]) as f64)
            .unwrap();
        let out = t.apply(&v).unwrap();
        let mut a: Vec<i64> = v.data().iter().map(|&x| x as i64).collect();
        let mut b: Vec<i64> = out.data().iter().map(|&x| x as i64).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn apply_rejects_wrong_shape() {
        let s = shape_3d();
        let t = TransformMap::new(&s, 2).unwrap();
        let v = Tensor::<f64>::zeros(vec![1, 1]);
        assert!(t.apply(&v).is_err());
    }

    #[test]
    fn prepare_input_matches_eqn8() {
        // d=2, n=[2,3]: x index j = j1*3 + j2; X'(j2, j1) expected.
        let s = TtShape::new(vec![2, 2], vec![2, 3], vec![1, 2, 1]).unwrap();
        let x = Tensor::<f64>::from_fn(vec![6], |i| i[0] as f64).unwrap();
        let xp = prepare_input(&x, &s).unwrap();
        assert_eq!(xp.dims(), &[3, 2]);
        for j1 in 0..2 {
            for j2 in 0..3 {
                assert_eq!(
                    xp.get(&[j2, j1]).unwrap(),
                    (j1 * 3 + j2) as f64,
                    "X'({j2},{j1})"
                );
            }
        }
    }

    #[test]
    fn prepare_input_3d_digit_reversal() {
        // d=3, n=[2,2,2]: x index j = j1*4 + j2*2 + j3.
        // X'(j3, q) with q = j1 + j2*2?? No: q = j1*1 + j2*n1 = j1 + 2*j2.
        let s = TtShape::new(vec![1, 1, 1], vec![2, 2, 2], vec![1, 1, 1, 1]).unwrap();
        let x = Tensor::<f64>::from_fn(vec![8], |i| i[0] as f64).unwrap();
        let xp = prepare_input(&x, &s).unwrap();
        for j1 in 0..2 {
            for j2 in 0..2 {
                for j3 in 0..2 {
                    let q = j1 + 2 * j2;
                    assert_eq!(xp.get(&[j3, q]).unwrap(), (j1 * 4 + j2 * 2 + j3) as f64);
                }
            }
        }
    }

    #[test]
    fn assemble_output_gathers_row_major() {
        // d=2, m=[2,3]: V_1 is 2×3 with columns indexed by i_2 (stride 1);
        // y[i1*3+i2] = V_1(i1, i2).
        let s = TtShape::new(vec![2, 3], vec![2, 2], vec![1, 2, 1]).unwrap();
        let v1 = Tensor::<f64>::from_fn(vec![2, 3], |i| (i[0] * 10 + i[1]) as f64).unwrap();
        let y = assemble_output(&v1, &s).unwrap();
        for i1 in 0..2 {
            for i2 in 0..3 {
                assert_eq!(y.data()[i1 * 3 + i2], (i1 * 10 + i2) as f64);
            }
        }
    }

    #[test]
    fn assemble_output_3d_uses_reversed_significance() {
        // d=3, m=[2,2,2]: column of V_1 is i_2 + 2*i_3... no: i_2 stride 1,
        // i_3 stride m_2 = 2. y[i1*4 + i2*2 + i3] = V_1(i1, i2 + 2*i3).
        let s = TtShape::new(vec![2, 2, 2], vec![1, 1, 1], vec![1, 1, 1, 1]).unwrap();
        let v1 = Tensor::<f64>::from_fn(vec![2, 4], |i| (i[0] * 100 + i[1]) as f64).unwrap();
        let y = assemble_output(&v1, &s).unwrap();
        for i1 in 0..2 {
            for i2 in 0..2 {
                for i3 in 0..2 {
                    assert_eq!(
                        y.data()[i1 * 4 + i2 * 2 + i3],
                        (i1 * 100 + i2 + 2 * i3) as f64
                    );
                }
            }
        }
    }

    #[test]
    fn four_step_transform_equals_closed_form_map() {
        // The paper's Algorithm-1 Transform pseudocode (transpose,
        // reshape, split, assemble) and the Eqn. (10) index map describe
        // the same permutation — the key fidelity check.
        for (m, n, r) in [
            (
                vec![2usize, 3, 2],
                vec![3usize, 2, 3],
                vec![1usize, 2, 2, 1],
            ),
            (vec![4, 4], vec![4, 4], vec![1, 3, 1]),
            (vec![2, 4, 3, 2], vec![3, 2, 2, 4], vec![1, 3, 2, 2, 1]),
        ] {
            let s = TtShape::new(m, n, r).unwrap();
            for h in 2..=s.ndim() {
                let t = TransformMap::new(&s, h).unwrap();
                let v = Tensor::<f64>::from_fn(vec![t.rows_in, t.cols_in], |i| {
                    (i[0] * 10_000 + i[1]) as f64
                })
                .unwrap();
                let by_map = t.apply(&v).unwrap();
                let by_steps = four_step_transform(&v, &s, h).unwrap();
                assert_eq!(by_steps, by_map, "h={h} of {s}");
            }
        }
    }

    #[test]
    fn four_step_transform_validates_shape() {
        let s = TtShape::new(vec![2, 2], vec![3, 3], vec![1, 2, 1]).unwrap();
        let bad = Tensor::<f64>::zeros(vec![2, 2]);
        assert!(four_step_transform(&bad, &s, 2).is_err());
        assert!(four_step_transform(&bad, &s, 1).is_err());
    }

    #[test]
    fn map_inverse_roundtrips_everywhere() {
        let s = TtShape::new(vec![2, 4, 3], vec![3, 2, 2], vec![1, 3, 2, 1]).unwrap();
        for h in 2..=3 {
            let t = TransformMap::new(&s, h).unwrap();
            for p in 0..t.rows_in {
                for q in 0..t.cols_in {
                    let (po, qo) = t.map(p, q);
                    assert_eq!(t.map_inverse(po, qo), (p, q), "h={h} at ({p},{q})");
                }
            }
        }
    }

    #[test]
    fn apply_batched_matches_per_sample_apply() {
        let s = TtShape::new(vec![2, 4, 3], vec![3, 2, 2], vec![1, 3, 2, 1]).unwrap();
        let b = 3usize;
        for h in 2..=3 {
            let t = TransformMap::new(&s, h).unwrap();
            // Build b independent samples, interleave them batch-inner-most.
            let samples: Vec<Tensor<f64>> = (0..b)
                .map(|c| {
                    Tensor::<f64>::from_fn(vec![t.rows_in, t.cols_in], |i| {
                        (c * 100_000 + i[0] * 100 + i[1]) as f64
                    })
                    .unwrap()
                })
                .collect();
            let mut batched = Tensor::<f64>::zeros(vec![t.rows_in, t.cols_in * b]);
            for (c, sample) in samples.iter().enumerate() {
                for (e, &val) in sample.data().iter().enumerate() {
                    batched.data_mut()[e * b + c] = val;
                }
            }
            let out = t.apply_batched(&batched, b).unwrap();
            for (c, sample) in samples.iter().enumerate() {
                let want = t.apply(sample).unwrap();
                for (e, &val) in want.data().iter().enumerate() {
                    assert_eq!(out.data()[e * b + c], val, "h={h} sample {c} elem {e}");
                }
            }
            // And the adjoint routes everything back.
            let back = t.apply_inverse_batched(&out, b).unwrap();
            assert_eq!(back, batched, "h={h}");
            assert!(t
                .apply_batched(&Tensor::<f64>::zeros(vec![1, 1]), b)
                .is_err());
        }
    }

    #[test]
    fn apply_inverse_roundtrips() {
        let s = TtShape::new(vec![2, 4, 3], vec![3, 2, 2], vec![1, 3, 2, 1]).unwrap();
        for h in 2..=3 {
            let t = TransformMap::new(&s, h).unwrap();
            let v =
                Tensor::<f64>::from_fn(vec![t.rows_in, t.cols_in], |i| (i[0] * 1000 + i[1]) as f64)
                    .unwrap();
            let there = t.apply(&v).unwrap();
            let back = t.apply_inverse(&there).unwrap();
            assert_eq!(back, v, "h={h}");
        }
    }

    #[test]
    fn prepare_input_inverse_roundtrips() {
        let s = TtShape::new(vec![2, 2, 2], vec![3, 2, 4], vec![1, 2, 2, 1]).unwrap();
        let x = Tensor::<f64>::from_fn(vec![24], |i| i[0] as f64 + 0.5).unwrap();
        let xp = prepare_input(&x, &s).unwrap();
        let back = prepare_input_inverse(&xp, &s).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn assemble_output_inverse_roundtrips() {
        let s = TtShape::new(vec![3, 2, 2], vec![2, 2, 2], vec![1, 2, 2, 1]).unwrap();
        let y = Tensor::<f64>::from_fn(vec![12], |i| (i[0] * 7 % 13) as f64).unwrap();
        let v1 = assemble_output_inverse(&y, &s).unwrap();
        let back = assemble_output(&v1, &s).unwrap();
        assert_eq!(back, y);
    }

    #[test]
    fn fold_core_inverts_unfold() {
        let core = Tensor::<f64>::from_fn(vec![3, 2, 4, 2], |i| {
            (i[0] * 1000 + i[1] * 100 + i[2] * 10 + i[3]) as f64
        })
        .unwrap();
        let g = unfold_core(&core).unwrap();
        let back = fold_core(&g, 3, 2, 4, 2).unwrap();
        assert_eq!(back, core);
        assert!(
            fold_core(&g, 3, 2, 4, 3).is_err(),
            "element count mismatch must be rejected"
        );
    }

    #[test]
    fn unfold_core_layout() {
        // core [r0=2, m=2, n=3, r1=2]: G̃[(i*2+t), (j*2+u)] = G(t,i,j,u)
        let core = Tensor::<f64>::from_fn(vec![2, 2, 3, 2], |i| {
            (i[0] * 1000 + i[1] * 100 + i[2] * 10 + i[3]) as f64
        })
        .unwrap();
        let g = unfold_core(&core).unwrap();
        assert_eq!(g.dims(), &[4, 6]);
        for t in 0..2 {
            for i in 0..2 {
                for j in 0..3 {
                    for u in 0..2 {
                        assert_eq!(
                            g.get(&[i * 2 + t, j * 2 + u]).unwrap(),
                            (t * 1000 + i * 100 + j * 10 + u) as f64
                        );
                    }
                }
            }
        }
        assert!(unfold_core(&Tensor::<f64>::zeros(vec![2, 2])).is_err());
    }
}
