//! The paper's analytical multiplication counts (§3.1) and the compact
//! scheme's actual count.
//!
//! Three formulas coexist:
//!
//! * [`mul_naive`] — Eqn. (3): the naive per-element scheme,
//!   `M · N · Σ_k r_k r_{k-1}`.
//! * [`mul_compact`] — the exact cost of Algorithm 1 as implemented:
//!   `Σ_h r_{h-1} r_h m_h n_h (∏_{l<h} n_l)(∏_{t>h} m_t)`.
//! * [`mul_theoretical_eqn7`] — Eqn. (7) **as printed in the paper**.
//!
//! ### A documented discrepancy
//!
//! Eqn. (7) as printed is inconsistent with its own derivation: at `d = 1`
//! it yields `(m_1 − 1) · n_1` multiplications for a dense `m_1 × n_1`
//! matrix-vector product, which actually needs `m_1 · n_1` (Eqn. (4) of the
//! same derivation gives the correct `m_d Σ_i …` leading term). The printed
//! formula therefore undercounts slightly (`m_l − 1` vs `m_l` factors).
//! Both counts are provided; the reproduction asserts the *relationship*
//! (`eqn7 ≤ compact ≤ naive`, with `compact/eqn7 → 1` as modes grow) and
//! reproduces the §3.1 headline (naive/compact is three orders of magnitude
//! for VGG-FC6; the paper quotes 1073×, see `analysis_redundancy`).

use tie_tt::TtShape;

/// Eqn. (3): multiplications of the naive per-element scheme,
/// `M · N · Σ_{i=1}^{d} r_i r_{i-1}`.
pub fn mul_naive(shape: &TtShape) -> u64 {
    let m = shape.num_rows() as u64;
    let n = shape.num_cols() as u64;
    let rr: u64 = (1..=shape.ndim())
        .map(|i| (shape.ranks[i] * shape.ranks[i - 1]) as u64)
        .sum();
    m * n * rr
}

/// Exact multiplication count of the compact scheme (Algorithm 1):
/// `Σ_{h=1}^{d} (m_h r_{h-1}) (n_h r_h) (∏_{l<h} n_l)(∏_{t>h} m_t)`.
///
/// This equals [`crate::plan::InferencePlan::total_muls`] and the counter
/// measured by [`crate::scheme::CompactEngine`] (both tested).
pub fn mul_compact(shape: &TtShape) -> u64 {
    let d = shape.ndim();
    (1..=d)
        .map(|h| {
            let n_left: u64 = shape.col_modes[..h - 1].iter().map(|&v| v as u64).product();
            let m_right: u64 = shape.row_modes[h..].iter().map(|&v| v as u64).product();
            (shape.row_modes[h - 1] * shape.ranks[h - 1]) as u64
                * (shape.col_modes[h - 1] * shape.ranks[h]) as u64
                * n_left
                * m_right
        })
        .sum()
}

/// Eqn. (7) as printed:
/// `Σ_{l=1}^{d} (m_l − 1) (∏_{j>l} m_j) Σ_{i=1}^{l} r_i r_{i-1} ∏_{t≤i} n_t`.
///
/// See the module docs for why this differs (slightly) from
/// [`mul_compact`].
pub fn mul_theoretical_eqn7(shape: &TtShape) -> u64 {
    let d = shape.ndim();
    (1..=d)
        .map(|l| {
            let m_right: u64 = shape.row_modes[l..].iter().map(|&v| v as u64).product();
            let inner: u64 = (1..=l)
                .map(|i| {
                    let n_prefix: u64 = shape.col_modes[..i].iter().map(|&v| v as u64).product();
                    (shape.ranks[i] * shape.ranks[i - 1]) as u64 * n_prefix
                })
                .sum();
            (shape.row_modes[l - 1] as u64 - 1) * m_right * inner
        })
        .sum()
}

/// Redundancy factor of the naive scheme: `mul_naive / mul_compact`
/// (the paper's §3.1 "1073×" style headline).
pub fn redundancy_ratio(shape: &TtShape) -> f64 {
    mul_naive(shape) as f64 / mul_compact(shape) as f64
}

/// Multiplications of an uncompressed dense matrix-vector product (`M·N`) —
/// the reference point for the compact scheme's *compute* saving (the
/// compression saving is [`TtShape::compression_ratio`]).
pub fn mul_dense(shape: &TtShape) -> u64 {
    shape.num_rows() as u64 * shape.num_cols() as u64
}

/// Fig. 5's partially-parallel scheme: stage 1 (core `d`) is one matrix
/// product, the remaining dimensions stay per-element:
/// `r_{d-1}·N·m_d + M·(N/n_d)·Σ_{k<d} r_k r_{k-1}` — strictly between
/// [`mul_naive`] and [`mul_compact`] (tested; the executable counterpart
/// is `tie_tt::inference::partial_parallel_matvec`).
pub fn mul_partial(shape: &TtShape) -> u64 {
    let d = shape.ndim();
    let (m, n) = (shape.num_rows() as u64, shape.num_cols() as u64);
    let stage1 = shape.ranks[d - 1] as u64 * n * shape.row_modes[d - 1] as u64;
    let chain: u64 = (1..d)
        .map(|k| (shape.ranks[k] * shape.ranks[k - 1]) as u64)
        .sum();
    stage1 + m * (n / shape.col_modes[d - 1] as u64) * chain
}

/// Tensor-core weight reads (scalar elements) of the naive scheme: every
/// output element's index chain touches `r_{k-1}·r_k` elements of every
/// core for every input index — `M·N·Σ_k r_k r_{k-1}`, one read per
/// multiply. This is the paper's memory-energy argument (§1: "the tensor
/// cores need to be frequently accessed when calculating each element of
/// output tensor").
pub fn core_reads_naive(shape: &TtShape) -> u64 {
    // Identical to the multiply count: each multiply consumes one fresh
    // core element in the per-element chain.
    mul_naive(shape)
}

/// Tensor-core weight reads of the compact scheme at the functional
/// level: each stage streams its core exactly once — `Σ_k r_{k-1} m_k
/// n_k r_k` total (the layer's parameter count).
pub fn core_reads_compact(shape: &TtShape) -> u64 {
    shape.num_params() as u64
}

/// Intermediate-value traffic of the compact scheme (elements read +
/// written across all stages): the price paid for eliminating the core
/// re-reads. `Σ_h (|V'_{h+1}| + |V_h|)`.
pub fn intermediate_traffic_compact(shape: &TtShape) -> u64 {
    let d = shape.ndim();
    (1..=d)
        .map(|h| {
            let n_left: u64 = shape.col_modes[..h - 1].iter().map(|&v| v as u64).product();
            let m_right: u64 = shape.row_modes[h..].iter().map(|&v| v as u64).product();
            let v_cols = n_left * m_right;
            let input = (shape.col_modes[h - 1] * shape.ranks[h]) as u64 * v_cols;
            let output = (shape.row_modes[h - 1] * shape.ranks[h - 1]) as u64 * v_cols;
            input + output
        })
        .sum()
}

/// Per-stage multiplication breakdown of the compact scheme, stage `h = d`
/// first (execution order).
pub fn mul_compact_per_stage(shape: &TtShape) -> Vec<(usize, u64)> {
    let d = shape.ndim();
    (1..=d)
        .rev()
        .map(|h| {
            let n_left: u64 = shape.col_modes[..h - 1].iter().map(|&v| v as u64).product();
            let m_right: u64 = shape.row_modes[h..].iter().map(|&v| v as u64).product();
            let muls = (shape.row_modes[h - 1] * shape.ranks[h - 1]) as u64
                * (shape.col_modes[h - 1] * shape.ranks[h]) as u64
                * n_left
                * m_right;
            (h, muls)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::InferencePlan;

    fn fc6() -> TtShape {
        TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap()
    }

    #[test]
    fn naive_count_fc6_matches_eqn3_hand_computation() {
        // M=4096, N=25088, Σ r_i r_{i-1} = 4+16+16+16+16+4 = 72
        assert_eq!(mul_naive(&fc6()), 4096 * 25088 * 72);
    }

    #[test]
    fn compact_equals_plan_total() {
        for shape in [
            fc6(),
            TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(),
            TtShape::new(vec![2, 3], vec![4, 5], vec![1, 3, 1]).unwrap(),
            TtShape::new(vec![7], vec![5], vec![1, 1]).unwrap(),
        ] {
            let plan = InferencePlan::new(&shape).unwrap();
            assert_eq!(mul_compact(&shape), plan.total_muls(), "shape {shape}");
        }
    }

    #[test]
    fn d1_compact_is_dense_and_eqn7_undercounts() {
        let s = TtShape::new(vec![8], vec![5], vec![1, 1]).unwrap();
        assert_eq!(mul_compact(&s), 40, "d=1 compact == dense matvec");
        assert_eq!(mul_naive(&s), 40);
        assert_eq!(mul_theoretical_eqn7(&s), 35, "printed Eqn.(7) = (m-1)n");
    }

    #[test]
    fn ordering_eqn7_le_compact_le_naive() {
        for shape in [
            fc6(),
            TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(),
            TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4).unwrap(),
            TtShape::new(vec![2, 3, 2], vec![3, 2, 3], vec![1, 2, 2, 1]).unwrap(),
        ] {
            let e7 = mul_theoretical_eqn7(&shape);
            let c = mul_compact(&shape);
            let n = mul_naive(&shape);
            assert!(e7 <= c, "{shape}: eqn7 {e7} > compact {c}");
            assert!(c <= n, "{shape}: compact {c} > naive {n}");
        }
    }

    #[test]
    fn fc6_redundancy_is_three_orders_of_magnitude() {
        // §3.1: the paper quotes 1073x naive/minimum for VGG-FC6. With the
        // printed formulas the exact ratio differs (documented in module
        // docs); the reproduced claim is the magnitude.
        let ratio = redundancy_ratio(&fc6());
        assert!(
            (1000.0..4000.0).contains(&ratio),
            "naive/compact should be ~10^3, got {ratio:.0}"
        );
    }

    #[test]
    fn compact_beats_dense_for_paper_workloads() {
        // TT inference should also need far fewer multiplications than the
        // dense mat-vec, not just fewer than naive TT.
        for shape in [
            fc6(),
            TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(),
            TtShape::uniform_rank(vec![4; 4], vec![8, 20, 20, 18], 4).unwrap(),
        ] {
            assert!(
                mul_compact(&shape) < mul_dense(&shape),
                "{shape}: compact {} >= dense {}",
                mul_compact(&shape),
                mul_dense(&shape)
            );
        }
    }

    #[test]
    fn partial_sits_strictly_between_naive_and_compact() {
        for shape in [
            fc6(),
            TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(),
            TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4).unwrap(),
        ] {
            let p = mul_partial(&shape);
            assert!(p < mul_naive(&shape), "{shape}");
            assert!(p > mul_compact(&shape), "{shape}");
        }
    }

    #[test]
    fn core_reads_drop_by_orders_of_magnitude() {
        // The paper's memory-energy claim: the naive scheme re-reads all
        // cores per output element; the compact scheme streams each core
        // once. FC6: 7.4e9 reads vs 2016.
        let s = fc6();
        assert_eq!(core_reads_naive(&s), mul_naive(&s));
        assert_eq!(core_reads_compact(&s), 2016);
        assert!(core_reads_naive(&s) / core_reads_compact(&s) > 1_000_000);
    }

    #[test]
    fn intermediate_traffic_matches_plan_sizes() {
        let s = fc6();
        let plan = InferencePlan::new(&s).unwrap();
        let want: u64 = plan
            .stages()
            .iter()
            .map(|st| (st.input_elems() + st.output_elems()) as u64)
            .sum();
        assert_eq!(intermediate_traffic_compact(&s), want);
        // The traffic trade: intermediates cost far less than the core
        // re-reads they eliminate.
        assert!(intermediate_traffic_compact(&s) * 100 < core_reads_naive(&s));
    }

    #[test]
    fn per_stage_breakdown_sums_to_total() {
        let s = fc6();
        let per: u64 = mul_compact_per_stage(&s).iter().map(|&(_, m)| m).sum();
        assert_eq!(per, mul_compact(&s));
        let hs: Vec<usize> = mul_compact_per_stage(&s).iter().map(|&(h, _)| h).collect();
        assert_eq!(hs, vec![6, 5, 4, 3, 2, 1]);
    }
}
