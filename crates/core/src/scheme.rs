//! The executable compact inference scheme ([`CompactEngine`]).

use crate::plan::InferencePlan;
use crate::transform::{
    assemble_output_gather, copy_gather_batched, prepare_input_scatter, unfold_core, TransformMap,
};
use std::sync::Mutex;
use tie_tensor::linalg::gemm_into;
use tie_tensor::{Result, Scalar, Tensor, TensorError};
use tie_tt::inference::OpCount;
use tie_tt::TtMatrix;

/// A prepared compact-scheme executor for one TT-compressed layer.
///
/// Construction unfolds every core into its stage matrix `G̃_h`, builds the
/// inter-stage [`TransformMap`]s, and materializes all index bijections
/// (input scatter, per-stage gathers, output gather) **once**;
/// [`CompactEngine::matvec`] then runs the `d` multiply stages against a
/// ping-pong scratch workspace held inside the engine. This mirrors TIE
/// hardware, where the unfolded cores sit in the weight SRAM, the working
/// SRAMs are ping-ponged between stages, and the transforms are absorbed
/// into the working-SRAM read scheme (the precomputed index vectors are the
/// software analogue of the hardware address generators).
///
/// After the first call has grown the workspace, steady-state
/// [`CompactEngine::matvec_into`] performs **no heap allocation**.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::{matvec, Truncation}};
/// use tie_tt::TtMatrix;
/// use tie_core::CompactEngine;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let w = Tensor::<f64>::from_fn(vec![6, 4], |i| (i[0] * 4 + i[1]) as f64)?;
/// let tt = TtMatrix::from_dense(&w, &[3, 2], &[2, 2], Truncation::none())?;
/// let engine = CompactEngine::new(tt)?;
/// let x = Tensor::<f64>::from_fn(vec![4], |i| 1.0 - i[0] as f64)?;
/// let (y, _) = engine.matvec(&x)?;
/// assert!(y.approx_eq(&matvec(&w, &x)?, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompactEngine<T: Scalar> {
    matrix: TtMatrix<T>,
    plan: InferencePlan,
    /// Unfolded stage matrices, indexed by 0-based core index `k = h-1`.
    gtildes: Vec<Tensor<T>>,
    /// Transform maps for `h = d, d-1, …, 2` (applied after stages d..2).
    transforms: Vec<TransformMap>,
    /// Destination-indexed gather vectors, one per transform (same order):
    /// entry `o` is the flat `V_h` offset whose element lands at flat
    /// `V'_h` offset `o`.
    stage_gathers: Vec<Vec<usize>>,
    /// Destination-indexed gather for the input layout (Eqn. (8)): entry
    /// `dst` is the dense-input index whose element lands at flat `X'`
    /// offset `dst`. Inverted from [`prepare_input_scatter`] at
    /// construction so the hot path's copy is destination-contiguous and
    /// can split across the pool like the stage gathers.
    prep_gather: Vec<usize>,
    /// Destination-indexed gather for the output layout.
    out_gather: Vec<usize>,
    /// Ping-pong scratch buffers, grown on demand and reused across calls.
    workspace: Mutex<Workspace<T>>,
}

/// Reusable scratch for the stage pipeline. Both buffers are sized to the
/// plan's peak intermediate (× batch width) — the software analogue of the
/// two working SRAMs in TIE (§3.2 storage bound `2 · max_h |V_h|`).
#[derive(Debug)]
struct Workspace<T> {
    ping: Vec<T>,
    pong: Vec<T>,
}

impl<T> Default for Workspace<T> {
    fn default() -> Self {
        Workspace {
            ping: Vec::new(),
            pong: Vec::new(),
        }
    }
}

impl<T: Scalar> Clone for CompactEngine<T> {
    fn clone(&self) -> Self {
        CompactEngine {
            matrix: self.matrix.clone(),
            plan: self.plan.clone(),
            gtildes: self.gtildes.clone(),
            transforms: self.transforms.clone(),
            stage_gathers: self.stage_gathers.clone(),
            prep_gather: self.prep_gather.clone(),
            out_gather: self.out_gather.clone(),
            // Scratch is per-engine state, not semantic state: the clone
            // starts with an empty workspace and grows it on first use.
            workspace: Mutex::new(Workspace::default()),
        }
    }
}

/// Compile-time audit: the engine is shared across the serving layer's
/// threads behind `Arc`, so it must stay `Send + Sync`. Every field is
/// immutable after construction except the scratch workspace, which is
/// `Mutex`-guarded; adding interior mutability outside that `Mutex` (a
/// `Cell`, an `Rc`, a raw pointer) breaks this assertion at compile time
/// rather than at a data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<CompactEngine<f64>>;
    let _ = assert_send_sync::<CompactEngine<f32>>;
};

/// Intermediate matrices captured by [`CompactEngine::matvec_traced`]:
/// the prepared input `X'` followed by each stage's output `V_h`
/// (pre-transform), `h = d … 1`.
#[derive(Debug, Clone)]
pub struct StageTrace<T: Scalar> {
    /// `X' = V'_{d+1}` (Eqn. (8) layout).
    pub prepared_input: Tensor<T>,
    /// `V_h` for `h = d, d-1, …, 1`, in execution order.
    pub stage_outputs: Vec<Tensor<T>>,
}

impl<T: Scalar> CompactEngine<T> {
    /// Prepares the engine: builds the plan, unfolds all cores, constructs
    /// the transform maps, and precomputes every index vector the hot path
    /// needs.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (cannot occur for a valid [`TtMatrix`]).
    pub fn new(matrix: TtMatrix<T>) -> Result<Self> {
        let plan = InferencePlan::new(matrix.shape())?;
        let gtildes = matrix
            .cores()
            .iter()
            .map(unfold_core)
            .collect::<Result<Vec<_>>>()?;
        let d = matrix.ndim();
        let transforms = (2..=d)
            .rev()
            .map(|h| TransformMap::new(matrix.shape(), h))
            .collect::<Result<Vec<_>>>()?;
        let stage_gathers = transforms.iter().map(TransformMap::gather).collect();
        // The input-layout bijection is published source-indexed (entry j =
        // destination of dense element j); invert it once so the hot path
        // writes destination-contiguous blocks (parallelizable gather).
        let prep_scatter = prepare_input_scatter(matrix.shape());
        let mut prep_gather = vec![0usize; prep_scatter.len()];
        for (j, &dst) in prep_scatter.iter().enumerate() {
            prep_gather[dst] = j;
        }
        let out_gather = assemble_output_gather(matrix.shape());
        Ok(CompactEngine {
            matrix,
            plan,
            gtildes,
            transforms,
            stage_gathers,
            prep_gather,
            out_gather,
            workspace: Mutex::new(Workspace::default()),
        })
    }

    /// The underlying TT matrix.
    pub fn matrix(&self) -> &TtMatrix<T> {
        &self.matrix
    }

    /// The execution plan (per-stage dimensions and analytic costs).
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The unfolded stage matrices `G̃_1 … G̃_d` (0-based indexing).
    pub fn unfolded_cores(&self) -> &[Tensor<T>] {
        &self.gtildes
    }

    /// Compact matrix-vector product `y = W x` with operation counters.
    ///
    /// Allocates the output vector; use [`CompactEngine::matvec_into`] to
    /// reuse a caller-owned buffer and stay allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec(&self, x: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let n = self.matrix.shape().num_cols();
        if x.ndim() != 1 || x.num_elements() != n {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![n],
            });
        }
        let mut y = Tensor::zeros(vec![self.matrix.shape().num_rows()]);
        let (_, count) = self.run_batched(x.data(), 1, y.data_mut(), false)?;
        Ok((y, count))
    }

    /// Compact matrix-vector product into a caller-owned buffer.
    ///
    /// Steady-state this performs **no heap allocation**: the prepared
    /// input, every stage product, and every transform run inside the
    /// engine's ping-pong workspace (grown once, on the first call), and
    /// the result is gathered straight into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `N` elements
    /// or `y` is not `M` elements.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) -> Result<OpCount> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if x.len() != n {
            return Err(TensorError::ShapeMismatch {
                left: vec![x.len()],
                right: vec![n],
            });
        }
        if y.len() != m {
            return Err(TensorError::ShapeMismatch {
                left: vec![y.len()],
                right: vec![m],
            });
        }
        let (_, count) = self.run_batched(x, 1, y, false)?;
        Ok(count)
    }

    /// Like [`CompactEngine::matvec`] but also returns every intermediate
    /// matrix — used by the cycle-accurate simulator's functional
    /// cross-checks. The intermediates are cloned out of the workspace
    /// (the only path that clones; the untraced paths never do).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec_traced(&self, x: &Tensor<T>) -> Result<(Tensor<T>, StageTrace<T>)> {
        let n = self.matrix.shape().num_cols();
        if x.ndim() != 1 || x.num_elements() != n {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![n],
            });
        }
        let mut y = Tensor::zeros(vec![self.matrix.shape().num_rows()]);
        let (trace, _) = self.run_batched(x.data(), 1, y.data_mut(), true)?;
        Ok((y, trace.expect("trace requested")))
    }

    /// Batched product `Y = W X` for `X (N × B)`: **one batch-wide compact
    /// pass**, not `B` independent passes.
    ///
    /// Each of the `d` stages executes as a *single* GEMM
    /// `G̃_h · [V'_{h+1} for all B columns]` — the batch rides along as an
    /// inner-most index, so inter-stage transforms and the input/output
    /// layouts become contiguous `B`-element block copies. Arithmetic
    /// (`mults`, `adds`) therefore scales by `B`, but `core_reads` is
    /// counted **once per stage** regardless of `B`: each unfolded core is
    /// streamed from weight memory a single time and reused across the
    /// whole batch. This is TIE's working-SRAM amortization argument — the
    /// larger the batch, the further each weight read is amortized.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a row-count mismatch.
    pub fn matvec_batch(&self, xs: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.ndim() != 2 || xs.nrows()? != n {
            return Err(TensorError::ShapeMismatch {
                left: xs.dims().to_vec(),
                right: vec![n, 0],
            });
        }
        let b = xs.ncols()?; // ≥ 1: zero-sized tensors are unrepresentable
        let mut out = Tensor::zeros(vec![m, b]);
        let (_, count) = self.run_batched(xs.data(), b, out.data_mut(), false)?;
        Ok((out, count))
    }

    /// Slice-level batched product: `xs` is row-major `N × b`, `ys`
    /// receives row-major `M × b`. Same single-pass semantics and counter
    /// conventions as [`CompactEngine::matvec_batch`], but zero-alloc in
    /// steady state and accepting of the degenerate `b == 0` batch (which
    /// runs no stages and streams no weights).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `xs` is not `N·b` elements
    /// or `ys` is not `M·b` elements.
    pub fn matvec_batch_into(&self, xs: &[T], b: usize, ys: &mut [T]) -> Result<OpCount> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.len() != n * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![xs.len()],
                right: vec![n * b],
            });
        }
        if ys.len() != m * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![ys.len()],
                right: vec![m * b],
            });
        }
        if b == 0 {
            // No columns: no stages run, no weights streamed.
            return Ok(OpCount::default());
        }
        let (_, count) = self.run_batched(xs, b, ys, false)?;
        Ok(count)
    }

    /// The shared stage pipeline: `xs` is `N` rows of `b` contiguous batch
    /// elements (row-major `N × b`), `ys` receives the `M × b` result.
    ///
    /// All intermediates live in the ping-pong workspace with the batch
    /// index inner-most: the element at matrix offset `e`, batch column
    /// `c`, sits at flat `e·b + c`. A stage GEMM then *is* the batched
    /// stage — `G̃_h (rows × k)` times the intermediate viewed as
    /// `k × (v_cols·b)` — and every index bijection becomes a contiguous
    /// `b`-element block copy driven by the precomputed vectors.
    fn run_batched(
        &self,
        xs: &[T],
        b: usize,
        ys: &mut [T],
        capture: bool,
    ) -> Result<(Option<StageTrace<T>>, OpCount)> {
        debug_assert!(b > 0);
        debug_assert!(!capture || b == 1, "tracing is a B=1 path");
        let shape = self.matrix.shape();
        let d = shape.ndim();
        let mut count = OpCount::default();
        let mut guard = self
            .workspace
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ws = &mut *guard;
        let peak = self.plan.max_intermediate_elems() * b;
        if ws.ping.len() < peak {
            ws.ping.resize(peak, T::ZERO);
        }
        if ws.pong.len() < peak {
            ws.pong.resize(peak, T::ZERO);
        }
        let (mut cur, mut nxt) = (&mut ws.ping, &mut ws.pong);
        // Prepare the input (Eqn. (8)): pure block copies via the inverted
        // gather, destination rows split across the pool for large layers.
        copy_gather_batched(&self.prep_gather, xs, cur, b);
        let prepared_input = if capture {
            let n = shape.num_cols();
            let n_d = shape.col_modes[d - 1];
            Some(Tensor::from_vec(vec![n_d, n / n_d], cur[..n].to_vec())?)
        } else {
            None
        };
        let mut stage_outputs = Vec::new();
        // Execution order h = d..1; transform after every stage except the
        // last (whose output is gathered straight into `ys`).
        for (idx, h) in (1..=d).rev().enumerate() {
            let stage = &self.plan.stages()[idx];
            let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
            gemm_into(
                self.gtildes[h - 1].data(),
                &cur[..k * cols * b],
                &mut nxt[..rows * cols * b],
                rows,
                k,
                cols * b,
            )?;
            // Arithmetic scales with the batch; each core is streamed from
            // weight memory once per stage and reused across all B columns
            // (the paper's working-SRAM amortization).
            count.mults += stage.muls() * b as u64;
            count.adds += stage.muls() * b as u64;
            count.core_reads += stage.core_elems() as u64;
            std::mem::swap(&mut cur, &mut nxt);
            if capture {
                stage_outputs.push(Tensor::from_vec(
                    vec![rows, cols],
                    cur[..rows * cols].to_vec(),
                )?);
            }
            if h >= 2 {
                let gather = &self.stage_gathers[idx];
                debug_assert_eq!(self.transforms[idx].h, h);
                copy_gather_batched(gather, cur, nxt, b);
                std::mem::swap(&mut cur, &mut nxt);
            }
        }
        // Gather the output rows straight into the caller's buffer.
        copy_gather_batched(&self.out_gather, cur, ys, b);
        let trace = capture.then(|| StageTrace {
            prepared_input: prepared_input.expect("captured above"),
            stage_outputs,
        });
        Ok((trace, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tensor::linalg::{matvec, Truncation};
    use tie_tt::inference::naive_matvec;
    use tie_tt::TtShape;

    fn random_case(
        seed: u64,
        m: Vec<usize>,
        n: Vec<usize>,
        r: usize,
    ) -> (CompactEngine<f64>, Tensor<f64>, Tensor<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(m, n, r).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let dense = tt.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        (CompactEngine::new(tt).unwrap(), dense, x)
    }

    #[test]
    fn shared_engine_is_thread_safe_and_deterministic() {
        // The serving layer shares one engine behind `Arc` across worker
        // threads. Concurrent matvecs through the shared workspace Mutex
        // must produce bit-identical results to a lone sequential call.
        let (engine, _dense, x) = random_case(77, vec![3, 3], vec![3, 3], 2);
        let mut want = vec![0.0f64; engine.matrix().shape().num_rows()];
        engine.matvec_into(x.data(), &mut want).unwrap();

        let engine = std::sync::Arc::new(engine);
        let x = std::sync::Arc::new(x.data().to_vec());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let x = std::sync::Arc::clone(&x);
                std::thread::spawn(move || {
                    let mut y = vec![0.0f64; engine.matrix().shape().num_rows()];
                    for _ in 0..16 {
                        engine.matvec_into(&x, &mut y).unwrap();
                    }
                    y
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), want);
        }
    }

    #[test]
    fn compact_equals_dense_various_shapes() {
        for (seed, m, n, r) in [
            (60, vec![2, 3], vec![3, 2], 2),
            (61, vec![4, 4, 4], vec![2, 3, 4], 3),
            (62, vec![2, 2, 2, 2], vec![3, 2, 2, 3], 2),
            (63, vec![5], vec![7], 1),
            (64, vec![3, 4], vec![4, 3], 5),
        ] {
            let (engine, dense, x) = random_case(seed, m, n, r);
            let (y, _) = engine.matvec(&x).unwrap();
            let want = matvec(&dense, &x).unwrap();
            assert!(
                y.approx_eq(&want, 1e-9),
                "compact != dense for shape {} (seed {seed}): max diff {}",
                engine.matrix().shape(),
                y.sub(&want).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn compact_equals_naive_scheme() {
        let (engine, _, x) = random_case(65, vec![2, 3, 2], vec![3, 2, 2], 2);
        let (y_c, _) = engine.matvec(&x).unwrap();
        let (y_n, _) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(y_c.approx_eq(&y_n, 1e-10));
    }

    #[test]
    fn measured_mults_match_plan_and_formula() {
        let (engine, _, x) = random_case(66, vec![3, 2, 4], vec![2, 4, 3], 3);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(count.mults, engine.plan().total_muls());
        assert_eq!(count.mults, crate::counts::mul_compact(engine.matrix().shape()));
    }

    #[test]
    fn core_reads_are_once_per_stage() {
        let (engine, _, x) = random_case(67, vec![2, 2], vec![3, 3], 2);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(
            count.core_reads as usize,
            engine.matrix().shape().num_params(),
            "each core element read exactly once across the pass"
        );
    }

    #[test]
    fn compact_uses_fewer_mults_than_naive_measured() {
        let (engine, _, x) = random_case(68, vec![4, 4], vec![4, 4], 4);
        let (_, c_compact) = engine.matvec(&x).unwrap();
        let (_, c_naive) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(
            c_compact.mults * 2 < c_naive.mults,
            "compact {} vs naive {}",
            c_compact.mults,
            c_naive.mults
        );
    }

    #[test]
    fn traced_run_exposes_all_stages() {
        let (engine, _, x) = random_case(69, vec![2, 3, 2], vec![2, 2, 3], 2);
        let (y, trace) = engine.matvec_traced(&x).unwrap();
        assert_eq!(trace.stage_outputs.len(), 3);
        // Shapes follow the plan.
        for (out, stage) in trace.stage_outputs.iter().zip(engine.plan().stages()) {
            assert_eq!(out.dims(), &[stage.gtilde_rows, stage.v_cols]);
        }
        // Trace is consistent with the untraced result.
        let (y2, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&y2, 0.0));
    }

    #[test]
    fn batch_matches_per_column() {
        let (engine, dense, _) = random_case(70, vec![2, 3], vec![3, 2], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![6, 4], 1.0);
        let (ys, _) = engine.matvec_batch(&xs).unwrap();
        for c in 0..4 {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            let want = matvec(&dense, &x).unwrap();
            let got = ys.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "column {c}");
        }
        assert!(engine.matvec_batch(&Tensor::<f64>::zeros(vec![5, 2])).is_err());
    }

    #[test]
    fn batch_is_bitwise_equal_to_single_column_runs() {
        // The batched pass and the B=1 pass execute the same per-column
        // arithmetic (the batch only rides along as an inner index), so
        // they must agree bitwise, not just approximately.
        let (engine, _, _) = random_case(80, vec![2, 3, 2], vec![3, 2, 2], 2);
        let n = engine.matrix().shape().num_cols();
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, 3], 1.0);
        let (ys, _) = engine.matvec_batch(&xs).unwrap();
        let b = 3;
        for c in 0..b {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![n]).unwrap();
            let (y, _) = engine.matvec(&x).unwrap();
            for r in 0..y.num_elements() {
                assert_eq!(
                    ys.data()[r * b + c].to_bits(),
                    y.data()[r].to_bits(),
                    "row {r}, column {c}"
                );
            }
        }
    }

    #[test]
    fn batched_pass_runs_d_gemms_not_d_times_b() {
        // The acceptance criterion of the batched engine: arithmetic scales
        // with B but each stage streams its core exactly once — so
        // core_reads stays at num_params for ANY batch width, while a
        // per-column loop would report B × num_params.
        let (engine, _, _) = random_case(82, vec![3, 2, 4], vec![2, 4, 3], 3);
        let shape = engine.matrix().shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(83);
        for b in [1usize, 2, 7] {
            let xs: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols(), b], 1.0);
            let (_, count) = engine.matvec_batch(&xs).unwrap();
            assert_eq!(
                count.mults,
                engine.plan().total_muls() * b as u64,
                "mults scale with B={b}"
            );
            assert_eq!(count.adds, count.mults, "one MAC per multiply (B={b})");
            assert_eq!(
                count.core_reads as usize,
                shape.num_params(),
                "weights streamed once per stage regardless of B={b}"
            );
        }
    }

    #[test]
    fn empty_batch_is_no_work() {
        // Zero-sized tensors are unrepresentable, so the degenerate batch
        // goes through the slice API: it must succeed and do nothing.
        let (engine, _, _) = random_case(84, vec![2, 2], vec![3, 2], 2);
        let count = engine.matvec_batch_into(&[], 0, &mut []).unwrap();
        assert_eq!(count, OpCount::default(), "no columns → no stages run");
    }

    #[test]
    fn batch_into_matches_tensor_batch() {
        let (engine, _, _) = random_case(87, vec![2, 3], vec![3, 2], 2);
        let n = engine.matrix().shape().num_cols();
        let m = engine.matrix().shape().num_rows();
        let mut rng = ChaCha8Rng::seed_from_u64(88);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, 5], 1.0);
        let (ys, count) = engine.matvec_batch(&xs).unwrap();
        let mut buf = vec![0.0f64; m * 5];
        let count2 = engine.matvec_batch_into(xs.data(), 5, &mut buf).unwrap();
        assert_eq!(count, count2);
        assert_eq!(buf, ys.data());
        // Length validation.
        assert!(engine.matvec_batch_into(xs.data(), 4, &mut buf).is_err());
        assert!(engine.matvec_batch_into(xs.data(), 5, &mut buf[1..]).is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_and_is_reusable() {
        let (engine, _, x) = random_case(85, vec![2, 3, 2], vec![2, 2, 3], 2);
        let m = engine.matrix().shape().num_rows();
        let (y, count) = engine.matvec(&x).unwrap();
        let mut buf = vec![0.0f64; m];
        let count2 = engine.matvec_into(x.data(), &mut buf).unwrap();
        assert_eq!(count, count2);
        assert_eq!(buf, y.data(), "buffer path bitwise equals allocating path");
        // Second call reuses the warm workspace and must agree again.
        buf.fill(-1.0);
        engine.matvec_into(x.data(), &mut buf).unwrap();
        assert_eq!(buf, y.data());
        // Length validation on both sides.
        assert!(engine.matvec_into(&x.data()[1..], &mut buf).is_err());
        let mut short = vec![0.0f64; m - 1];
        assert!(engine.matvec_into(x.data(), &mut short).is_err());
    }

    #[test]
    fn cloned_engine_gets_fresh_workspace_and_same_results() {
        let (engine, _, x) = random_case(86, vec![3, 2], vec![2, 3], 2);
        let (y1, _) = engine.matvec(&x).unwrap(); // warm the workspace
        let clone = engine.clone();
        let (y2, _) = clone.matvec(&x).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn rejects_wrong_input_length() {
        let (engine, _, _) = random_case(72, vec![2, 2], vec![2, 2], 2);
        assert!(engine.matvec(&Tensor::<f64>::zeros(vec![3])).is_err());
        assert!(engine.matvec_traced(&Tensor::<f64>::zeros(vec![3])).is_err());
    }

    #[test]
    fn works_after_from_dense_decomposition() {
        // End-to-end: dense -> TT (truncation-free) -> compact inference.
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let w: Tensor<f64> = init::uniform(&mut rng, vec![12, 8], 1.0);
        let tt = TtMatrix::from_dense(&w, &[3, 4], &[2, 4], Truncation::none()).unwrap();
        let engine = CompactEngine::new(tt).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![8], 1.0);
        let (y, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&matvec(&w, &x).unwrap(), 1e-9));
    }
}
