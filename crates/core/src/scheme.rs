//! The executable compact inference scheme ([`CompactEngine`]).

use crate::indexmap::{assemble_dest_map, prepare_copy_plan, stage_dest_map, CopyPlan};
use crate::plan::InferencePlan;
use crate::transform::{
    assemble_output_gather, copy_gather_batched, prepare_input_scatter, unfold_core, TransformMap,
};
use std::sync::Mutex;
use tie_tensor::linalg::{gemm_into, gemm_into_mapped, gemm_into_mapped_fused, DestMap};
use tie_tensor::tile::Activation;
use tie_tensor::{Result, Scalar, Tensor, TensorError};
use tie_tt::inference::OpCount;
use tie_tt::TtMatrix;

/// A prepared compact-scheme executor for one TT-compressed layer.
///
/// Construction unfolds every core into its stage matrix `G̃_h` and compiles
/// every index bijection of the scheme **symbolically**
/// ([`crate::indexmap`]): the inter-stage Transform of each stage composes
/// into a single affine map, lowered into a [`DestMap`] that the blocked
/// GEMM evaluates inside its write loop. [`CompactEngine::matvec`] then
/// runs the `d` multiply stages against a ping-pong scratch workspace held
/// inside the engine, each stage scattering its output **directly into the
/// next stage's layout** — the separate permutation pass (and its
/// intermediate buffer) no longer exists. This mirrors TIE hardware, where
/// the unfolded cores sit in the weight SRAM, the working SRAMs are
/// ping-ponged between stages, and the transforms are absorbed into the
/// working-SRAM access scheme rather than moving data.
///
/// The input preparation (Eqn. 8) — the one bijection that cannot fuse
/// into a GEMM because no GEMM precedes it — runs as the provably-minimal
/// block-copy [`CopyPlan`] derived from the same composed map.
///
/// After the first call has grown the workspace, steady-state
/// [`CompactEngine::matvec_into`] performs **no heap allocation**.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::{matvec, Truncation}};
/// use tie_tt::TtMatrix;
/// use tie_core::CompactEngine;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let w = Tensor::<f64>::from_fn(vec![6, 4], |i| (i[0] * 4 + i[1]) as f64)?;
/// let tt = TtMatrix::from_dense(&w, &[3, 2], &[2, 2], Truncation::none())?;
/// let engine = CompactEngine::new(tt)?;
/// let x = Tensor::<f64>::from_fn(vec![4], |i| 1.0 - i[0] as f64)?;
/// let (y, _) = engine.matvec(&x)?;
/// assert!(y.approx_eq(&matvec(&w, &x)?, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompactEngine<T: Scalar> {
    matrix: TtMatrix<T>,
    plan: InferencePlan,
    /// Unfolded stage matrices, indexed by 0-based core index `k = h-1`.
    gtildes: Vec<Tensor<T>>,
    /// Transform maps for `h = d, d-1, …, 2` — kept for the traced run and
    /// the gather-table differential oracle
    /// ([`CompactEngine::matvec_batch_into_gather`]); the hot path never
    /// touches them.
    transforms: Vec<TransformMap>,
    /// Fused write epilogues, one per stage in execution order: the
    /// composed Transform map for `h = d … 2`, the output-assembly map for
    /// the final `h = 1` stage (which scatters straight into the caller's
    /// buffer).
    dest_maps: Vec<DestMap>,
    /// Minimal block-copy plan of the input preparation (Eqn. (8)),
    /// compiled from the inverted affine map.
    prep_plan: CopyPlan,
    /// Optional per-output-neuron bias (`M` elements), fused into the
    /// final stage's write epilogue.
    bias: Option<Vec<T>>,
    /// Activation fused into the final stage's write epilogue.
    activation: Activation,
    /// Ping-pong scratch buffers, grown on demand and reused across calls.
    workspace: Mutex<Workspace<T>>,
}

/// Reusable scratch for the stage pipeline. With fused writes each buffer
/// only ever holds a stage *input* (`max_stage_input_elems × batch`) — the
/// Transform intermediate of the legacy pipeline no longer exists, and the
/// final stage bypasses the workspace entirely. `pong` stays empty for
/// single-stage layers.
#[derive(Debug)]
struct Workspace<T> {
    ping: Vec<T>,
    pong: Vec<T>,
}

impl<T> Default for Workspace<T> {
    fn default() -> Self {
        Workspace {
            ping: Vec::new(),
            pong: Vec::new(),
        }
    }
}

impl<T: Scalar> Clone for CompactEngine<T> {
    fn clone(&self) -> Self {
        CompactEngine {
            matrix: self.matrix.clone(),
            plan: self.plan.clone(),
            gtildes: self.gtildes.clone(),
            transforms: self.transforms.clone(),
            dest_maps: self.dest_maps.clone(),
            prep_plan: self.prep_plan.clone(),
            bias: self.bias.clone(),
            activation: self.activation,
            // Scratch is per-engine state, not semantic state: the clone
            // starts with an empty workspace and grows it on first use.
            workspace: Mutex::new(Workspace::default()),
        }
    }
}

/// Compile-time audit: the engine is shared across the serving layer's
/// threads behind `Arc`, so it must stay `Send + Sync`. Every field is
/// immutable after construction except the scratch workspace, which is
/// `Mutex`-guarded; adding interior mutability outside that `Mutex` (a
/// `Cell`, an `Rc`, a raw pointer) breaks this assertion at compile time
/// rather than at a data race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<CompactEngine<f64>>;
    let _ = assert_send_sync::<CompactEngine<f32>>;
};

/// Intermediate matrices captured by [`CompactEngine::matvec_traced`]:
/// the prepared input `X'` followed by each stage's output `V_h`
/// (pre-transform), `h = d … 1`.
#[derive(Debug, Clone)]
pub struct StageTrace<T: Scalar> {
    /// `X' = V'_{d+1}` (Eqn. (8) layout).
    pub prepared_input: Tensor<T>,
    /// `V_h` for `h = d, d-1, …, 1`, in execution order.
    pub stage_outputs: Vec<Tensor<T>>,
}

impl<T: Scalar> CompactEngine<T> {
    /// Prepares the engine: builds the plan, unfolds all cores, and
    /// compiles every index bijection symbolically — the per-stage fused
    /// write epilogues and the minimal input-preparation copy plan.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (cannot occur for a valid [`TtMatrix`]).
    pub fn new(matrix: TtMatrix<T>) -> Result<Self> {
        let plan = InferencePlan::new(matrix.shape())?;
        let gtildes = matrix
            .cores()
            .iter()
            .map(unfold_core)
            .collect::<Result<Vec<_>>>()?;
        let d = matrix.ndim();
        let transforms = (2..=d)
            .rev()
            .map(|h| TransformMap::new(matrix.shape(), h))
            .collect::<Result<Vec<_>>>()?;
        // Fused epilogues in execution order: composed Transform maps for
        // h = d … 2, then the output-assembly map for the final stage.
        let mut dest_maps = Vec::with_capacity(d);
        for h in (2..=d).rev() {
            dest_maps.push(stage_dest_map(matrix.shape(), h)?);
        }
        dest_maps.push(assemble_dest_map(matrix.shape())?);
        let prep_plan = prepare_copy_plan(matrix.shape())?;
        Ok(CompactEngine {
            matrix,
            plan,
            gtildes,
            transforms,
            dest_maps,
            prep_plan,
            bias: None,
            activation: Activation::Identity,
            workspace: Mutex::new(Workspace::default()),
        })
    }

    /// Attaches a per-output-neuron bias (`M` elements), fused into the
    /// final stage's GEMM write epilogue — the output gets `y + bias`
    /// without a second pass over `y` (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `bias` is not `M`
    /// elements.
    pub fn with_bias(mut self, bias: Vec<T>) -> Result<Self> {
        let m = self.matrix.shape().num_rows();
        if bias.len() != m {
            return Err(TensorError::ShapeMismatch {
                left: vec![bias.len()],
                right: vec![m],
            });
        }
        self.bias = Some(bias);
        Ok(self)
    }

    /// Selects the activation fused into the final stage's write epilogue
    /// (builder style). Applied after the bias, inside the GEMM store —
    /// never as a separate pass.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self.plan = self.plan.clone().with_activation(activation);
        self
    }

    /// The fused per-output bias, if any.
    pub fn bias(&self) -> Option<&[T]> {
        self.bias.as_deref()
    }

    /// The fused final-stage activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The underlying TT matrix.
    pub fn matrix(&self) -> &TtMatrix<T> {
        &self.matrix
    }

    /// The execution plan (per-stage dimensions and analytic costs).
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The unfolded stage matrices `G̃_1 … G̃_d` (0-based indexing).
    pub fn unfolded_cores(&self) -> &[Tensor<T>] {
        &self.gtildes
    }

    /// Compact matrix-vector product `y = W x` with operation counters.
    ///
    /// Allocates the output vector; use [`CompactEngine::matvec_into`] to
    /// reuse a caller-owned buffer and stay allocation-free.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec(&self, x: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let n = self.matrix.shape().num_cols();
        if x.ndim() != 1 || x.num_elements() != n {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![n],
            });
        }
        let mut y = Tensor::zeros(vec![self.matrix.shape().num_rows()]);
        let count = self.run_batched(x.data(), 1, y.data_mut())?;
        Ok((y, count))
    }

    /// Compact matrix-vector product into a caller-owned buffer.
    ///
    /// Steady-state this performs **no heap allocation**: the prepared
    /// input, every stage product, and every transform run inside the
    /// engine's ping-pong workspace (grown once, on the first call), and
    /// the result is gathered straight into `y`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` is not `N` elements
    /// or `y` is not `M` elements.
    pub fn matvec_into(&self, x: &[T], y: &mut [T]) -> Result<OpCount> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if x.len() != n {
            return Err(TensorError::ShapeMismatch {
                left: vec![x.len()],
                right: vec![n],
            });
        }
        if y.len() != m {
            return Err(TensorError::ShapeMismatch {
                left: vec![y.len()],
                right: vec![m],
            });
        }
        self.run_batched(x, 1, y)
    }

    /// Like [`CompactEngine::matvec`] but also returns every intermediate
    /// matrix — used by the cycle-accurate simulator's functional
    /// cross-checks. The intermediates are cloned out of the workspace
    /// (the only path that clones; the untraced paths never do).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec_traced(&self, x: &Tensor<T>) -> Result<(Tensor<T>, StageTrace<T>)> {
        let n = self.matrix.shape().num_cols();
        if x.ndim() != 1 || x.num_elements() != n {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![n],
            });
        }
        let mut y = Tensor::zeros(vec![self.matrix.shape().num_rows()]);
        let (trace, _) = self.run_batched_gather(x.data(), 1, y.data_mut(), true)?;
        Ok((y, trace.expect("trace requested")))
    }

    /// Batched product `Y = W X` for `X (N × B)`: **one batch-wide compact
    /// pass**, not `B` independent passes.
    ///
    /// Each of the `d` stages executes as a *single* GEMM
    /// `G̃_h · [V'_{h+1} for all B columns]` — the batch rides along as an
    /// inner-most index, so inter-stage transforms and the input/output
    /// layouts become contiguous `B`-element block copies. Arithmetic
    /// (`mults`, `adds`) therefore scales by `B`, but `core_reads` is
    /// counted **once per stage** regardless of `B`: each unfolded core is
    /// streamed from weight memory a single time and reused across the
    /// whole batch. This is TIE's working-SRAM amortization argument — the
    /// larger the batch, the further each weight read is amortized.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a row-count mismatch.
    pub fn matvec_batch(&self, xs: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.ndim() != 2 || xs.nrows()? != n {
            return Err(TensorError::ShapeMismatch {
                left: xs.dims().to_vec(),
                right: vec![n, 0],
            });
        }
        let b = xs.ncols()?; // ≥ 1: zero-sized tensors are unrepresentable
        let mut out = Tensor::zeros(vec![m, b]);
        let count = self.run_batched(xs.data(), b, out.data_mut())?;
        Ok((out, count))
    }

    /// Slice-level batched product: `xs` is row-major `N × b`, `ys`
    /// receives row-major `M × b`. Same single-pass semantics and counter
    /// conventions as [`CompactEngine::matvec_batch`], but zero-alloc in
    /// steady state and accepting of the degenerate `b == 0` batch (which
    /// runs no stages and streams no weights).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `xs` is not `N·b` elements
    /// or `ys` is not `M·b` elements.
    pub fn matvec_batch_into(&self, xs: &[T], b: usize, ys: &mut [T]) -> Result<OpCount> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.len() != n * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![xs.len()],
                right: vec![n * b],
            });
        }
        if ys.len() != m * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![ys.len()],
                right: vec![m * b],
            });
        }
        if b == 0 {
            // No columns: no stages run, no weights streamed.
            return Ok(OpCount::default());
        }
        self.run_batched(xs, b, ys)
    }

    /// The legacy gather-table pipeline, kept as the **differential
    /// oracle** for the fused path: every stage GEMM writes plainly and a
    /// separate permutation pass re-lays the output out via gather tables
    /// materialized from the [`TransformMap`]s. Bit-identical to
    /// [`CompactEngine::matvec_batch_into`] (tested — it runs the same
    /// GEMM arithmetic, only the writes differ), but allocates its
    /// buffers and tables per call: a cold path by design.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `xs` is not `N·b`
    /// elements or `ys` is not `M·b` elements.
    pub fn matvec_batch_into_gather(&self, xs: &[T], b: usize, ys: &mut [T]) -> Result<OpCount> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.len() != n * b || ys.len() != m * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![xs.len(), ys.len()],
                right: vec![n * b, m * b],
            });
        }
        if b == 0 {
            return Ok(OpCount::default());
        }
        let (_, count) = self.run_batched_gather(xs, b, ys, false)?;
        Ok(count)
    }

    /// Bytes of inter-stage and output-assembly traffic the fused write
    /// epilogues eliminate per sample: the legacy pipeline re-wrote every
    /// post-GEMM intermediate (`V_h`, `h ≥ 2`) plus the assembled output
    /// through a separate permutation pass; the fused pipeline writes each
    /// element exactly once.
    pub fn transform_elided_bytes_per_sample(&self) -> u64 {
        let elem = std::mem::size_of::<T>() as u64;
        let stage_elems: u64 = self
            .plan
            .stages()
            .iter()
            .filter(|s| s.h >= 2)
            .map(|s| s.output_elems() as u64)
            .sum();
        (stage_elems + self.matrix.shape().num_rows() as u64) * elem
    }

    /// Bytes still moved per sample by pure copying — the Eqn. (8) input
    /// preparation, the one bijection with no producing GEMM to fuse into.
    pub fn bytes_moved_per_sample(&self) -> u64 {
        self.matrix.shape().num_cols() as u64 * std::mem::size_of::<T>() as u64
    }

    /// The fused stage pipeline: `xs` is `N` rows of `b` contiguous batch
    /// elements (row-major `N × b`), `ys` receives the `M × b` result.
    ///
    /// All intermediates live in the ping-pong workspace with the batch
    /// index inner-most: the element at matrix offset `e`, batch column
    /// `c`, sits at flat `e·b + c`. A stage GEMM then *is* the batched
    /// stage — `G̃_h (rows × k)` times the intermediate viewed as
    /// `k × (v_cols·b)` — and its write loop evaluates the stage's
    /// composed Transform map, scattering each output straight into
    /// `V'_h` layout (or, for the final stage, straight into `ys` in
    /// assembled order). No permutation pass, no transform intermediate.
    fn run_batched(&self, xs: &[T], b: usize, ys: &mut [T]) -> Result<OpCount> {
        debug_assert!(b > 0);
        let shape = self.matrix.shape();
        let d = shape.ndim();
        let mut count = OpCount::default();
        let mut guard = self
            .workspace
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ws = &mut *guard;
        // Each buffer only ever holds a stage input; the final stage
        // writes into `ys`, so `pong` is needed only when d ≥ 2.
        let per_buf = self.plan.max_stage_input_elems() * b;
        if ws.ping.len() < per_buf {
            ws.ping.resize(per_buf, T::ZERO);
        }
        if d >= 2 && ws.pong.len() < per_buf {
            ws.pong.resize(per_buf, T::ZERO);
        }
        let (mut cur, mut nxt) = (&mut ws.ping, &mut ws.pong);
        // Prepare the input (Eqn. (8)): minimal contiguous block copies.
        self.prep_plan.apply_batched(xs, cur, b);
        for (idx, h) in (1..=d).rev().enumerate() {
            let stage = &self.plan.stages()[idx];
            let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
            let a = self.gtildes[h - 1].data();
            let map = &self.dest_maps[idx];
            if h >= 2 {
                gemm_into_mapped(
                    a,
                    &cur[..k * cols * b],
                    &mut nxt[..rows * cols * b],
                    rows,
                    k,
                    cols,
                    b,
                    map,
                )?;
                std::mem::swap(&mut cur, &mut nxt);
            } else {
                // Final stage: bias + activation fuse into the same write
                // loop that assembles the output — one store per element.
                gemm_into_mapped_fused(
                    a,
                    &cur[..k * cols * b],
                    ys,
                    rows,
                    k,
                    cols,
                    b,
                    map,
                    self.bias.as_deref(),
                    self.activation,
                )?;
            }
            // Arithmetic scales with the batch; each core is streamed from
            // weight memory once per stage and reused across all B columns
            // (the paper's working-SRAM amortization).
            count.mults += stage.muls() * b as u64;
            count.adds += stage.muls() * b as u64;
            count.core_reads += stage.core_elems() as u64;
        }
        Ok(count)
    }

    /// The legacy pipeline body (see
    /// [`CompactEngine::matvec_batch_into_gather`]): GEMM into a scratch
    /// buffer, then a separate gather-table permutation pass per stage.
    /// Also the only path that can capture pre-transform intermediates
    /// (`capture` ⇒ `b == 1`), which the fused path never materializes.
    fn run_batched_gather(
        &self,
        xs: &[T],
        b: usize,
        ys: &mut [T],
        capture: bool,
    ) -> Result<(Option<StageTrace<T>>, OpCount)> {
        debug_assert!(b > 0);
        debug_assert!(!capture || b == 1, "tracing is a B=1 path");
        let shape = self.matrix.shape();
        let d = shape.ndim();
        let mut count = OpCount::default();
        // Cold path: local buffers and gather tables, materialized per
        // call (the engine no longer stores any index tables).
        let peak = self.plan.max_intermediate_elems() * b;
        let mut ping = vec![T::ZERO; peak];
        let mut pong = vec![T::ZERO; peak];
        let (mut cur, mut nxt) = (&mut ping, &mut pong);
        let prep_scatter = prepare_input_scatter(shape);
        let mut prep_gather = vec![0usize; prep_scatter.len()];
        for (j, &dst) in prep_scatter.iter().enumerate() {
            prep_gather[dst] = j;
        }
        copy_gather_batched(&prep_gather, xs, cur, b);
        let prepared_input = if capture {
            let n = shape.num_cols();
            let n_d = shape.col_modes[d - 1];
            Some(Tensor::from_vec(vec![n_d, n / n_d], cur[..n].to_vec())?)
        } else {
            None
        };
        let mut stage_outputs = Vec::new();
        // Execution order h = d..1; transform after every stage except the
        // last (whose output is gathered straight into `ys`).
        for (idx, h) in (1..=d).rev().enumerate() {
            let stage = &self.plan.stages()[idx];
            let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
            gemm_into(
                self.gtildes[h - 1].data(),
                &cur[..k * cols * b],
                &mut nxt[..rows * cols * b],
                rows,
                k,
                cols * b,
            )?;
            count.mults += stage.muls() * b as u64;
            count.adds += stage.muls() * b as u64;
            count.core_reads += stage.core_elems() as u64;
            std::mem::swap(&mut cur, &mut nxt);
            if capture {
                stage_outputs.push(Tensor::from_vec(
                    vec![rows, cols],
                    cur[..rows * cols].to_vec(),
                )?);
            }
            if h >= 2 {
                debug_assert_eq!(self.transforms[idx].h, h);
                let gather = self.transforms[idx].gather();
                copy_gather_batched(&gather, cur, nxt, b);
                std::mem::swap(&mut cur, &mut nxt);
            }
        }
        // Gather the output rows straight into the caller's buffer.
        let out_gather = assemble_output_gather(shape);
        copy_gather_batched(&out_gather, cur, ys, b);
        // The oracle applies bias + activation as the *separate* output
        // pass the fused epilogue eliminates — same scalar operations in
        // the same order, so the comparison stays bitwise.
        if self.bias.is_some() || self.activation == Activation::Relu {
            let m = shape.num_rows();
            for o in 0..m {
                for cb in 0..b {
                    let mut v = ys[o * b + cb];
                    if let Some(bias) = &self.bias {
                        v += bias[o];
                    }
                    if self.activation == Activation::Relu {
                        v = if v > T::ZERO { v } else { T::ZERO };
                    }
                    ys[o * b + cb] = v;
                }
            }
        }
        let trace = capture.then(|| StageTrace {
            prepared_input: prepared_input.expect("captured above"),
            stage_outputs,
        });
        Ok((trace, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tensor::linalg::{matvec, Truncation};
    use tie_tt::inference::naive_matvec;
    use tie_tt::TtShape;

    fn random_case(
        seed: u64,
        m: Vec<usize>,
        n: Vec<usize>,
        r: usize,
    ) -> (CompactEngine<f64>, Tensor<f64>, Tensor<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(m, n, r).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let dense = tt.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        (CompactEngine::new(tt).unwrap(), dense, x)
    }

    #[test]
    fn shared_engine_is_thread_safe_and_deterministic() {
        // The serving layer shares one engine behind `Arc` across worker
        // threads. Concurrent matvecs through the shared workspace Mutex
        // must produce bit-identical results to a lone sequential call.
        let (engine, _dense, x) = random_case(77, vec![3, 3], vec![3, 3], 2);
        let mut want = vec![0.0f64; engine.matrix().shape().num_rows()];
        engine.matvec_into(x.data(), &mut want).unwrap();

        let engine = std::sync::Arc::new(engine);
        let x = std::sync::Arc::new(x.data().to_vec());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let engine = std::sync::Arc::clone(&engine);
                let x = std::sync::Arc::clone(&x);
                std::thread::spawn(move || {
                    let mut y = vec![0.0f64; engine.matrix().shape().num_rows()];
                    for _ in 0..16 {
                        engine.matvec_into(&x, &mut y).unwrap();
                    }
                    y
                })
            })
            .collect();
        for handle in handles {
            assert_eq!(handle.join().unwrap(), want);
        }
    }

    #[test]
    fn compact_equals_dense_various_shapes() {
        for (seed, m, n, r) in [
            (60, vec![2, 3], vec![3, 2], 2),
            (61, vec![4, 4, 4], vec![2, 3, 4], 3),
            (62, vec![2, 2, 2, 2], vec![3, 2, 2, 3], 2),
            (63, vec![5], vec![7], 1),
            (64, vec![3, 4], vec![4, 3], 5),
        ] {
            let (engine, dense, x) = random_case(seed, m, n, r);
            let (y, _) = engine.matvec(&x).unwrap();
            let want = matvec(&dense, &x).unwrap();
            assert!(
                y.approx_eq(&want, 1e-9),
                "compact != dense for shape {} (seed {seed}): max diff {}",
                engine.matrix().shape(),
                y.sub(&want).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn compact_equals_naive_scheme() {
        let (engine, _, x) = random_case(65, vec![2, 3, 2], vec![3, 2, 2], 2);
        let (y_c, _) = engine.matvec(&x).unwrap();
        let (y_n, _) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(y_c.approx_eq(&y_n, 1e-10));
    }

    #[test]
    fn measured_mults_match_plan_and_formula() {
        let (engine, _, x) = random_case(66, vec![3, 2, 4], vec![2, 4, 3], 3);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(count.mults, engine.plan().total_muls());
        assert_eq!(
            count.mults,
            crate::counts::mul_compact(engine.matrix().shape())
        );
    }

    #[test]
    fn core_reads_are_once_per_stage() {
        let (engine, _, x) = random_case(67, vec![2, 2], vec![3, 3], 2);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(
            count.core_reads as usize,
            engine.matrix().shape().num_params(),
            "each core element read exactly once across the pass"
        );
    }

    #[test]
    fn compact_uses_fewer_mults_than_naive_measured() {
        let (engine, _, x) = random_case(68, vec![4, 4], vec![4, 4], 4);
        let (_, c_compact) = engine.matvec(&x).unwrap();
        let (_, c_naive) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(
            c_compact.mults * 2 < c_naive.mults,
            "compact {} vs naive {}",
            c_compact.mults,
            c_naive.mults
        );
    }

    #[test]
    fn traced_run_exposes_all_stages() {
        let (engine, _, x) = random_case(69, vec![2, 3, 2], vec![2, 2, 3], 2);
        let (y, trace) = engine.matvec_traced(&x).unwrap();
        assert_eq!(trace.stage_outputs.len(), 3);
        // Shapes follow the plan.
        for (out, stage) in trace.stage_outputs.iter().zip(engine.plan().stages()) {
            assert_eq!(out.dims(), &[stage.gtilde_rows, stage.v_cols]);
        }
        // Trace is consistent with the untraced result.
        let (y2, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&y2, 0.0));
    }

    #[test]
    fn batch_matches_per_column() {
        let (engine, dense, _) = random_case(70, vec![2, 3], vec![3, 2], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![6, 4], 1.0);
        let (ys, _) = engine.matvec_batch(&xs).unwrap();
        for c in 0..4 {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            let want = matvec(&dense, &x).unwrap();
            let got = ys.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "column {c}");
        }
        assert!(engine
            .matvec_batch(&Tensor::<f64>::zeros(vec![5, 2]))
            .is_err());
    }

    #[test]
    fn batch_is_bitwise_equal_to_single_column_runs() {
        // The batched pass and the B=1 pass execute the same per-column
        // arithmetic (the batch only rides along as an inner index), so
        // they must agree bitwise, not just approximately.
        let (engine, _, _) = random_case(80, vec![2, 3, 2], vec![3, 2, 2], 2);
        let n = engine.matrix().shape().num_cols();
        let mut rng = ChaCha8Rng::seed_from_u64(81);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, 3], 1.0);
        let (ys, _) = engine.matvec_batch(&xs).unwrap();
        let b = 3;
        for c in 0..b {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![n]).unwrap();
            let (y, _) = engine.matvec(&x).unwrap();
            for r in 0..y.num_elements() {
                assert_eq!(
                    ys.data()[r * b + c].to_bits(),
                    y.data()[r].to_bits(),
                    "row {r}, column {c}"
                );
            }
        }
    }

    #[test]
    fn batched_pass_runs_d_gemms_not_d_times_b() {
        // The acceptance criterion of the batched engine: arithmetic scales
        // with B but each stage streams its core exactly once — so
        // core_reads stays at num_params for ANY batch width, while a
        // per-column loop would report B × num_params.
        let (engine, _, _) = random_case(82, vec![3, 2, 4], vec![2, 4, 3], 3);
        let shape = engine.matrix().shape().clone();
        let mut rng = ChaCha8Rng::seed_from_u64(83);
        for b in [1usize, 2, 7] {
            let xs: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols(), b], 1.0);
            let (_, count) = engine.matvec_batch(&xs).unwrap();
            assert_eq!(
                count.mults,
                engine.plan().total_muls() * b as u64,
                "mults scale with B={b}"
            );
            assert_eq!(count.adds, count.mults, "one MAC per multiply (B={b})");
            assert_eq!(
                count.core_reads as usize,
                shape.num_params(),
                "weights streamed once per stage regardless of B={b}"
            );
        }
    }

    #[test]
    fn empty_batch_is_no_work() {
        // Zero-sized tensors are unrepresentable, so the degenerate batch
        // goes through the slice API: it must succeed and do nothing.
        let (engine, _, _) = random_case(84, vec![2, 2], vec![3, 2], 2);
        let count = engine.matvec_batch_into(&[], 0, &mut []).unwrap();
        assert_eq!(count, OpCount::default(), "no columns → no stages run");
    }

    #[test]
    fn batch_into_matches_tensor_batch() {
        let (engine, _, _) = random_case(87, vec![2, 3], vec![3, 2], 2);
        let n = engine.matrix().shape().num_cols();
        let m = engine.matrix().shape().num_rows();
        let mut rng = ChaCha8Rng::seed_from_u64(88);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n, 5], 1.0);
        let (ys, count) = engine.matvec_batch(&xs).unwrap();
        let mut buf = vec![0.0f64; m * 5];
        let count2 = engine.matvec_batch_into(xs.data(), 5, &mut buf).unwrap();
        assert_eq!(count, count2);
        assert_eq!(buf, ys.data());
        // Length validation.
        assert!(engine.matvec_batch_into(xs.data(), 4, &mut buf).is_err());
        assert!(engine
            .matvec_batch_into(xs.data(), 5, &mut buf[1..])
            .is_err());
    }

    #[test]
    fn matvec_into_matches_matvec_and_is_reusable() {
        let (engine, _, x) = random_case(85, vec![2, 3, 2], vec![2, 2, 3], 2);
        let m = engine.matrix().shape().num_rows();
        let (y, count) = engine.matvec(&x).unwrap();
        let mut buf = vec![0.0f64; m];
        let count2 = engine.matvec_into(x.data(), &mut buf).unwrap();
        assert_eq!(count, count2);
        assert_eq!(buf, y.data(), "buffer path bitwise equals allocating path");
        // Second call reuses the warm workspace and must agree again.
        buf.fill(-1.0);
        engine.matvec_into(x.data(), &mut buf).unwrap();
        assert_eq!(buf, y.data());
        // Length validation on both sides.
        assert!(engine.matvec_into(&x.data()[1..], &mut buf).is_err());
        let mut short = vec![0.0f64; m - 1];
        assert!(engine.matvec_into(x.data(), &mut short).is_err());
    }

    #[test]
    fn cloned_engine_gets_fresh_workspace_and_same_results() {
        let (engine, _, x) = random_case(86, vec![3, 2], vec![2, 3], 2);
        let (y1, _) = engine.matvec(&x).unwrap(); // warm the workspace
        let clone = engine.clone();
        let (y2, _) = clone.matvec(&x).unwrap();
        assert!(y1.approx_eq(&y2, 0.0));
    }

    #[test]
    fn fused_path_is_bitwise_equal_to_gather_oracle() {
        // The tentpole acceptance check at engine level: the fused write
        // epilogue must reproduce the legacy gather-table pipeline
        // bit-for-bit, at any pool size, including degenerate shapes.
        for (seed, m, n, r) in [
            (90, vec![2, 3, 2], vec![3, 2, 2], 2),
            (91, vec![4, 4], vec![4, 4], 4),
            (92, vec![5], vec![7], 1),
            (93, vec![1, 4], vec![3, 1], 1),
            (94, vec![8, 2], vec![2, 2], 1),
        ] {
            let (engine, _, _) = random_case(seed, m, n, r);
            let nn = engine.matrix().shape().num_cols();
            let mm = engine.matrix().shape().num_rows();
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 1000);
            for b in [1usize, 3] {
                let xs: Tensor<f64> = init::uniform(&mut rng, vec![nn, b], 1.0);
                let mut fused = vec![0.0f64; mm * b];
                let mut oracle = vec![0.0f64; mm * b];
                let c1 = engine.matvec_batch_into(xs.data(), b, &mut fused).unwrap();
                let c2 = engine
                    .matvec_batch_into_gather(xs.data(), b, &mut oracle)
                    .unwrap();
                assert_eq!(c1, c2, "op counts agree (seed {seed}, b={b})");
                for (i, (f, o)) in fused.iter().zip(&oracle).enumerate() {
                    assert_eq!(f.to_bits(), o.to_bits(), "element {i} (seed {seed}, b={b})");
                }
            }
        }
    }

    #[test]
    fn fused_bias_relu_is_bitwise_equal_to_separate_epilogue_pass() {
        // The epilogue acceptance check: bias + ReLU fused into the final
        // GEMM store must bit-match the oracle's GEMM-then-separate-pass,
        // for every (bias?, activation) combination and batch width.
        let mut rng = ChaCha8Rng::seed_from_u64(96);
        let (engine, _, _) = random_case(97, vec![2, 3, 2], vec![3, 2, 2], 2);
        let nn = engine.matrix().shape().num_cols();
        let mm = engine.matrix().shape().num_rows();
        let bias_t: Tensor<f64> = init::uniform(&mut rng, vec![mm], 0.5);
        for act in [Activation::Identity, Activation::Relu] {
            for with_bias in [false, true] {
                let mut e = engine.clone().with_activation(act);
                if with_bias {
                    e = e.with_bias(bias_t.data().to_vec()).unwrap();
                }
                assert_eq!(e.activation(), act);
                assert_eq!(e.plan().activation(), act);
                for b in [1usize, 4] {
                    let xs: Tensor<f64> = init::uniform(&mut rng, vec![nn, b], 1.0);
                    let mut fused = vec![0.0f64; mm * b];
                    let mut oracle = vec![0.0f64; mm * b];
                    e.matvec_batch_into(xs.data(), b, &mut fused).unwrap();
                    e.matvec_batch_into_gather(xs.data(), b, &mut oracle)
                        .unwrap();
                    for (i, (f, o)) in fused.iter().zip(&oracle).enumerate() {
                        assert_eq!(
                            f.to_bits(),
                            o.to_bits(),
                            "element {i} (act {act:?}, bias {with_bias}, b={b})"
                        );
                    }
                    if act == Activation::Relu {
                        assert!(fused.iter().all(|&v| v >= 0.0));
                    }
                }
            }
        }
        // Bias length is validated.
        assert!(engine.clone().with_bias(vec![0.0; mm + 1]).is_err());
    }

    #[test]
    fn traffic_accounting_matches_plan() {
        let (engine, _, _) = random_case(95, vec![2, 3, 2], vec![3, 2, 2], 2);
        let shape = engine.matrix().shape();
        let stage_elems: u64 = engine
            .plan()
            .stages()
            .iter()
            .filter(|s| s.h >= 2)
            .map(|s| s.output_elems() as u64)
            .sum();
        assert_eq!(
            engine.transform_elided_bytes_per_sample(),
            (stage_elems + shape.num_rows() as u64) * 8
        );
        assert_eq!(engine.bytes_moved_per_sample(), shape.num_cols() as u64 * 8);
    }

    #[test]
    fn rejects_wrong_input_length() {
        let (engine, _, _) = random_case(72, vec![2, 2], vec![2, 2], 2);
        assert!(engine.matvec(&Tensor::<f64>::zeros(vec![3])).is_err());
        assert!(engine
            .matvec_traced(&Tensor::<f64>::zeros(vec![3]))
            .is_err());
    }

    #[test]
    fn works_after_from_dense_decomposition() {
        // End-to-end: dense -> TT (truncation-free) -> compact inference.
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let w: Tensor<f64> = init::uniform(&mut rng, vec![12, 8], 1.0);
        let tt = TtMatrix::from_dense(&w, &[3, 4], &[2, 4], Truncation::none()).unwrap();
        let engine = CompactEngine::new(tt).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![8], 1.0);
        let (y, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&matvec(&w, &x).unwrap(), 1e-9));
    }
}
