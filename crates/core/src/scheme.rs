//! The executable compact inference scheme ([`CompactEngine`]).

use crate::plan::InferencePlan;
use crate::transform::{assemble_output, prepare_input, unfold_core, TransformMap};
use tie_tensor::linalg::matmul;
use tie_tensor::{Result, Scalar, Tensor, TensorError};
use tie_tt::inference::OpCount;
use tie_tt::TtMatrix;

/// A prepared compact-scheme executor for one TT-compressed layer.
///
/// Construction unfolds every core into its stage matrix `G̃_h` and builds
/// the inter-stage [`TransformMap`]s once; [`CompactEngine::matvec`] then
/// runs the `d` multiply stages. This mirrors TIE hardware, where the
/// unfolded cores sit in the weight SRAM and the transforms are absorbed
/// into the working-SRAM read scheme.
///
/// # Example
///
/// ```
/// use tie_tensor::{Tensor, linalg::{matvec, Truncation}};
/// use tie_tt::TtMatrix;
/// use tie_core::CompactEngine;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let w = Tensor::<f64>::from_fn(vec![6, 4], |i| (i[0] * 4 + i[1]) as f64)?;
/// let tt = TtMatrix::from_dense(&w, &[3, 2], &[2, 2], Truncation::none())?;
/// let engine = CompactEngine::new(tt)?;
/// let x = Tensor::<f64>::from_fn(vec![4], |i| 1.0 - i[0] as f64)?;
/// let (y, _) = engine.matvec(&x)?;
/// assert!(y.approx_eq(&matvec(&w, &x)?, 1e-9));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CompactEngine<T: Scalar> {
    matrix: TtMatrix<T>,
    plan: InferencePlan,
    /// Unfolded stage matrices, indexed by 0-based core index `k = h-1`.
    gtildes: Vec<Tensor<T>>,
    /// Transform maps for `h = d, d-1, …, 2` (applied after stages d..2).
    transforms: Vec<TransformMap>,
}

/// Intermediate matrices captured by [`CompactEngine::matvec_traced`]:
/// the prepared input `X'` followed by each stage's output `V_h`
/// (pre-transform), `h = d … 1`.
#[derive(Debug, Clone)]
pub struct StageTrace<T: Scalar> {
    /// `X' = V'_{d+1}` (Eqn. (8) layout).
    pub prepared_input: Tensor<T>,
    /// `V_h` for `h = d, d-1, …, 1`, in execution order.
    pub stage_outputs: Vec<Tensor<T>>,
}

impl<T: Scalar> CompactEngine<T> {
    /// Prepares the engine: builds the plan, unfolds all cores, and
    /// constructs the transform maps.
    ///
    /// # Errors
    ///
    /// Propagates shape errors (cannot occur for a valid [`TtMatrix`]).
    pub fn new(matrix: TtMatrix<T>) -> Result<Self> {
        let plan = InferencePlan::new(matrix.shape())?;
        let gtildes = matrix
            .cores()
            .iter()
            .map(unfold_core)
            .collect::<Result<Vec<_>>>()?;
        let d = matrix.ndim();
        let transforms = (2..=d)
            .rev()
            .map(|h| TransformMap::new(matrix.shape(), h))
            .collect::<Result<Vec<_>>>()?;
        Ok(CompactEngine {
            matrix,
            plan,
            gtildes,
            transforms,
        })
    }

    /// The underlying TT matrix.
    pub fn matrix(&self) -> &TtMatrix<T> {
        &self.matrix
    }

    /// The execution plan (per-stage dimensions and analytic costs).
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// The unfolded stage matrices `G̃_1 … G̃_d` (0-based indexing).
    pub fn unfolded_cores(&self) -> &[Tensor<T>] {
        &self.gtildes
    }

    /// Compact matrix-vector product `y = W x` with operation counters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec(&self, x: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let (y, _, count) = self.run(x, false)?;
        Ok((y, count))
    }

    /// Like [`CompactEngine::matvec`] but also returns every intermediate
    /// matrix — used by the cycle-accurate simulator's functional
    /// cross-checks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x` has the wrong length.
    pub fn matvec_traced(&self, x: &Tensor<T>) -> Result<(Tensor<T>, StageTrace<T>)> {
        let (y, trace, _) = self.run(x, true)?;
        Ok((y, trace.expect("trace requested")))
    }

    /// Batched product: one compact pass per column of `xs (N × B)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] on a row-count mismatch.
    pub fn matvec_batch(&self, xs: &Tensor<T>) -> Result<(Tensor<T>, OpCount)> {
        let n = self.matrix.shape().num_cols();
        let m = self.matrix.shape().num_rows();
        if xs.ndim() != 2 || xs.nrows()? != n {
            return Err(TensorError::ShapeMismatch {
                left: xs.dims().to_vec(),
                right: vec![n, 0],
            });
        }
        let b = xs.ncols()?;
        let mut out = Tensor::zeros(vec![m, b]);
        let mut total = OpCount::default();
        for c in 0..b {
            let col = xs.cols(c, c + 1)?.reshaped(vec![n])?;
            let (y, count) = self.matvec(&col)?;
            total = total.merge(count);
            for r in 0..m {
                out.data_mut()[r * b + c] = y.data()[r];
            }
        }
        Ok((out, total))
    }

    fn run(
        &self,
        x: &Tensor<T>,
        capture: bool,
    ) -> Result<(Tensor<T>, Option<StageTrace<T>>, OpCount)> {
        let shape = self.matrix.shape();
        let d = shape.ndim();
        let mut count = OpCount::default();
        let prepared = prepare_input(x, shape)?;
        let mut stage_outputs = Vec::new();
        let mut v = prepared.clone();
        // Execution order h = d..1; transform after every stage except the
        // last (whose output is gathered by assemble_output).
        for (idx, h) in (1..=d).rev().enumerate() {
            let gt = &self.gtildes[h - 1];
            let out = matmul(gt, &v)?;
            let stage = &self.plan.stages()[idx];
            count.mults += stage.muls();
            // One multiply-accumulate per multiply (accumulator init at 0).
            count.adds += stage.muls();
            // The paper's memory argument: each stage streams its core once.
            count.core_reads += stage.core_elems() as u64;
            if capture {
                stage_outputs.push(out.clone());
            }
            v = if h >= 2 {
                let t = &self.transforms[idx];
                debug_assert_eq!(t.h, h);
                t.apply(&out)?
            } else {
                out
            };
        }
        let y = assemble_output(&v, shape)?;
        let trace = capture.then_some(StageTrace {
            prepared_input: prepared,
            stage_outputs,
        });
        Ok((y, trace, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::init;
    use tie_tensor::linalg::{matvec, Truncation};
    use tie_tt::inference::naive_matvec;
    use tie_tt::TtShape;

    fn random_case(
        seed: u64,
        m: Vec<usize>,
        n: Vec<usize>,
        r: usize,
    ) -> (CompactEngine<f64>, Tensor<f64>, Tensor<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(m, n, r).unwrap();
        let tt = TtMatrix::<f64>::random(&mut rng, &shape, 0.8).unwrap();
        let dense = tt.to_dense().unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![shape.num_cols()], 1.0);
        (CompactEngine::new(tt).unwrap(), dense, x)
    }

    #[test]
    fn compact_equals_dense_various_shapes() {
        for (seed, m, n, r) in [
            (60, vec![2, 3], vec![3, 2], 2),
            (61, vec![4, 4, 4], vec![2, 3, 4], 3),
            (62, vec![2, 2, 2, 2], vec![3, 2, 2, 3], 2),
            (63, vec![5], vec![7], 1),
            (64, vec![3, 4], vec![4, 3], 5),
        ] {
            let (engine, dense, x) = random_case(seed, m, n, r);
            let (y, _) = engine.matvec(&x).unwrap();
            let want = matvec(&dense, &x).unwrap();
            assert!(
                y.approx_eq(&want, 1e-9),
                "compact != dense for shape {} (seed {seed}): max diff {}",
                engine.matrix().shape(),
                y.sub(&want).unwrap().max_abs()
            );
        }
    }

    #[test]
    fn compact_equals_naive_scheme() {
        let (engine, _, x) = random_case(65, vec![2, 3, 2], vec![3, 2, 2], 2);
        let (y_c, _) = engine.matvec(&x).unwrap();
        let (y_n, _) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(y_c.approx_eq(&y_n, 1e-10));
    }

    #[test]
    fn measured_mults_match_plan_and_formula() {
        let (engine, _, x) = random_case(66, vec![3, 2, 4], vec![2, 4, 3], 3);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(count.mults, engine.plan().total_muls());
        assert_eq!(count.mults, crate::counts::mul_compact(engine.matrix().shape()));
    }

    #[test]
    fn core_reads_are_once_per_stage() {
        let (engine, _, x) = random_case(67, vec![2, 2], vec![3, 3], 2);
        let (_, count) = engine.matvec(&x).unwrap();
        assert_eq!(
            count.core_reads as usize,
            engine.matrix().shape().num_params(),
            "each core element read exactly once across the pass"
        );
    }

    #[test]
    fn compact_uses_fewer_mults_than_naive_measured() {
        let (engine, _, x) = random_case(68, vec![4, 4], vec![4, 4], 4);
        let (_, c_compact) = engine.matvec(&x).unwrap();
        let (_, c_naive) = naive_matvec(engine.matrix(), &x).unwrap();
        assert!(
            c_compact.mults * 2 < c_naive.mults,
            "compact {} vs naive {}",
            c_compact.mults,
            c_naive.mults
        );
    }

    #[test]
    fn traced_run_exposes_all_stages() {
        let (engine, _, x) = random_case(69, vec![2, 3, 2], vec![2, 2, 3], 2);
        let (y, trace) = engine.matvec_traced(&x).unwrap();
        assert_eq!(trace.stage_outputs.len(), 3);
        // Shapes follow the plan.
        for (out, stage) in trace.stage_outputs.iter().zip(engine.plan().stages()) {
            assert_eq!(out.dims(), &[stage.gtilde_rows, stage.v_cols]);
        }
        // Trace is consistent with the untraced result.
        let (y2, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&y2, 0.0));
    }

    #[test]
    fn batch_matches_per_column() {
        let (engine, dense, _) = random_case(70, vec![2, 3], vec![3, 2], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![6, 4], 1.0);
        let (ys, _) = engine.matvec_batch(&xs).unwrap();
        for c in 0..4 {
            let x = xs.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            let want = matvec(&dense, &x).unwrap();
            let got = ys.cols(c, c + 1).unwrap().reshaped(vec![6]).unwrap();
            assert!(got.approx_eq(&want, 1e-9), "column {c}");
        }
        assert!(engine.matvec_batch(&Tensor::<f64>::zeros(vec![5, 2])).is_err());
    }

    #[test]
    fn rejects_wrong_input_length() {
        let (engine, _, _) = random_case(72, vec![2, 2], vec![2, 2], 2);
        assert!(engine.matvec(&Tensor::<f64>::zeros(vec![3])).is_err());
    }

    #[test]
    fn works_after_from_dense_decomposition() {
        // End-to-end: dense -> TT (truncation-free) -> compact inference.
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let w: Tensor<f64> = init::uniform(&mut rng, vec![12, 8], 1.0);
        let tt = TtMatrix::from_dense(&w, &[3, 4], &[2, 4], Truncation::none()).unwrap();
        let engine = CompactEngine::new(tt).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![8], 1.0);
        let (y, _) = engine.matvec(&x).unwrap();
        assert!(y.approx_eq(&matvec(&w, &x).unwrap(), 1e-9));
    }
}
