//! **The TIE paper's primary contribution**: the compact TT-format
//! inference scheme (ISCA '19, §3.2, Algorithm 1).
//!
//! The naive TT inference of Eqn. (2) (implemented in
//! [`tie_tt::inference`]) recomputes identical core-slice products for every
//! pair of output elements that shares index prefixes. The compact scheme
//! removes all of that redundancy by restructuring the computation into `d`
//! *stages*, one per tensor core, processed from core `d` down to core `1`:
//!
//! ```text
//! X' = PrepareInput(x)                       // Eqn. (8)
//! V'_{d+1} = X'
//! for h = d, d-1, …, 1:
//!     V_h  = G̃_h · V'_{h+1}                  // one matrix multiply, Eqn. (9)/(11)
//!     V'_h = Transform(V_h, h)               // Eqn. (10), pure permutation
//! y = AssembleOutput(V_1)
//! ```
//!
//! where `G̃_h` is the `(m_h r_{h-1}) × (n_h r_h)` unfolding of core `G_h`.
//! Each stage touches exactly one tensor core (the paper's memory-traffic
//! argument) and the total multiply count is the per-stage product sum
//! implemented in [`counts::mul_compact`] — three orders of magnitude below
//! Eqn. (3) for the paper's VGG workloads (§3.1).
//!
//! Module map:
//!
//! * [`transform`] — the index bijections: input preparation (Eqn. 8), the
//!   inter-stage transform (Eqn. 10), output assembly; all exposed both as
//!   tensor operations and as raw index maps (the cycle simulator in
//!   `tie-sim` replays the same maps through its SRAM read scheme).
//! * [`indexmap`] — the symbolic indexing-map compiler: every Transform
//!   step as a strided affine map, composed into a single map per stage
//!   and lowered into the fused GEMM write epilogues (`DestMap`) and
//!   minimal cold-path copy plans ([`indexmap::CopyPlan`]).
//! * [`plan`] — [`plan::InferencePlan`]: per-stage dimensions, multiply
//!   counts and buffer sizes computed from a [`TtShape`] alone.
//! * [`counts`] — the paper's analytical formulas: Eqn. (3) naive count,
//!   Eqn. (7) as printed, the compact-scheme count, and the §3.2
//!   working-set bound.
//! * [`scheme`] — [`scheme::CompactEngine`]: the executable scheme with
//!   operation counters.
//! * [`costing`] — the analytic Fig. 7 cycle model ([`costing::CostModel`])
//!   as a pure function of plan + hardware geometry, with batched and
//!   pipelined extensions; the planner-side scoring hook the deployment
//!   autotuner searches with (the simulator delegates here).
//! * [`deploy`] — serializable per-layer [`deploy::DeploymentPlan`]s: the
//!   autotuner's output artifact (JSON, bit-identical round-trip) that the
//!   serving registry can load to reconstruct engines directly.
//! * [`pipeline`] — pipeline-parallel execution of one layer's stage
//!   chain: a cut-point planner balancing per-stage MAC/SRAM costs and a
//!   [`pipeline::StagePipeline`] executor streaming micro-batched `V'_h`
//!   chunks through bounded channels on dedicated stage threads,
//!   bit-identical to the sequential engine at any cut count.
//!
//! # Example
//!
//! ```
//! use tie_tensor::{Tensor, linalg::{matvec, Truncation}};
//! use tie_tt::TtMatrix;
//! use tie_core::scheme::CompactEngine;
//!
//! # fn main() -> Result<(), tie_tensor::TensorError> {
//! let w = Tensor::<f64>::from_fn(vec![4, 6], |i| ((i[0] + 2 * i[1]) % 5) as f64)?;
//! let x = Tensor::<f64>::from_fn(vec![6], |i| i[0] as f64 * 0.5)?;
//! let tt = TtMatrix::from_dense(&w, &[2, 2], &[3, 2], Truncation::none())?;
//! let engine = CompactEngine::new(tt)?;
//! let (y, stats) = engine.matvec(&x)?;
//! assert!(y.approx_eq(&matvec(&w, &x)?, 1e-9));
//! assert_eq!(stats.mults, engine.plan().total_muls());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod costing;
pub mod counts;
pub mod deploy;
pub mod indexmap;
pub mod pipeline;
pub mod plan;
pub mod scheme;
pub mod transform;

pub use costing::CostModel;
pub use deploy::{plans_from_json, plans_to_json, DeploymentPlan, PlanBackend};
pub use pipeline::{CutPlan, FloatChain, PipelineConfig, StagePipeline};
pub use plan::InferencePlan;
pub use scheme::CompactEngine;
pub use tie_tensor::tile::Activation;
pub use tie_tensor::{Result, TensorError};
pub use tie_tt::TtShape;
