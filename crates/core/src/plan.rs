//! Stage planning: everything the compact scheme (and the TIE hardware
//! simulator) needs to know about a workload, computed from the
//! [`TtShape`] alone — no weights required.

use tie_tensor::tile::Activation;
use tie_tensor::{Result, TensorError};
use tie_tt::TtShape;

/// Dimensions and cost of one compact-scheme stage.
///
/// Stage `h` (1-based, executed in order `h = d, d-1, …, 1`) multiplies the
/// unfolded core `G̃_h ((m_h r_{h-1}) × (n_h r_h))` by the transformed
/// intermediate `V'_{h+1} ((n_h r_h) × v_cols)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    /// 1-based stage index `h` (also the 1-based core index).
    pub h: usize,
    /// Rows of `G̃_h` = `m_h · r_{h-1}` (= rows of the stage output `V_h`).
    pub gtilde_rows: usize,
    /// Columns of `G̃_h` = `n_h · r_h` (= rows of the stage input `V'_{h+1}`).
    pub gtilde_cols: usize,
    /// Columns of `V'_{h+1}` and of `V_h`: `∏_{l<h} n_l · ∏_{t>h} m_t`.
    pub v_cols: usize,
}

impl StagePlan {
    /// Scalar multiplications of this stage's matrix product.
    pub fn muls(&self) -> u64 {
        self.gtilde_rows as u64 * self.gtilde_cols as u64 * self.v_cols as u64
    }

    /// Elements of the unfolded core (weights touched exactly once per
    /// output-column pass — the paper's "one tensor core per stage").
    pub fn core_elems(&self) -> usize {
        self.gtilde_rows * self.gtilde_cols
    }

    /// Elements of the stage input `V'_{h+1}`.
    pub fn input_elems(&self) -> usize {
        self.gtilde_cols * self.v_cols
    }

    /// Elements of the stage output `V_h`.
    pub fn output_elems(&self) -> usize {
        self.gtilde_rows * self.v_cols
    }
}

/// The full execution plan of the compact scheme for one layer.
///
/// Besides the per-stage dimensions, the plan carries the layer's **fused
/// epilogue**: the [`Activation`] applied inside the final stage's GEMM
/// write loop (the TIE PE applies requantization/activation in the same
/// output pass — see `tie_tensor::tile`). Stages `h ≥ 2` never carry an
/// epilogue; their write loop is the inter-stage Transform scatter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferencePlan {
    shape: TtShape,
    stages: Vec<StagePlan>,
    activation: Activation,
}

impl InferencePlan {
    /// Builds the plan for a layout.
    ///
    /// # Errors
    ///
    /// Currently infallible for any valid [`TtShape`]; kept fallible for
    /// forward compatibility with planner constraints.
    pub fn new(shape: &TtShape) -> Result<Self> {
        let d = shape.ndim();
        if d == 0 {
            return Err(TensorError::EmptyShape);
        }
        let mut stages = Vec::with_capacity(d);
        for h in (1..=d).rev() {
            let n_left: usize = shape.col_modes[..h - 1].iter().product();
            let m_right: usize = shape.row_modes[h..].iter().product();
            stages.push(StagePlan {
                h,
                gtilde_rows: shape.row_modes[h - 1] * shape.ranks[h - 1],
                gtilde_cols: shape.col_modes[h - 1] * shape.ranks[h],
                v_cols: n_left * m_right,
            });
        }
        Ok(InferencePlan {
            shape: shape.clone(),
            stages,
            activation: Activation::Identity,
        })
    }

    /// Sets the final-stage fused activation (builder style).
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self
    }

    /// The activation fused into the final stage's write epilogue.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The layout this plan was built for.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// Stages in execution order (`h = d` first).
    pub fn stages(&self) -> &[StagePlan] {
        &self.stages
    }

    /// Total multiplications across all stages — the compact-scheme count
    /// (agrees with [`crate::counts::mul_compact`] and with the executed
    /// [`crate::scheme::CompactEngine`] counters; tested).
    pub fn total_muls(&self) -> u64 {
        self.stages.iter().map(StagePlan::muls).sum()
    }

    /// Largest intermediate matrix, in elements:
    /// `max_h |V_h|` with `|V_h| = r_{h-1} ∏_{k<h} n_k ∏_{k≥h} m_k`,
    /// including the prepared input `|V'_{d+1}| = N`.
    pub fn max_intermediate_elems(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.input_elems().max(s.output_elems()))
            .max()
            .unwrap_or(0)
    }

    /// The §3.2 storage-overhead bound: both the input and the output of a
    /// stage are buffered (ping-pong working SRAMs), so the requirement is
    /// `2 × max_h |V_h|` elements.
    pub fn working_set_elems(&self) -> usize {
        2 * self.max_intermediate_elems()
    }

    /// Largest stage *input*, in elements: `max_h |V'_{h+1}|` (including
    /// the prepared input `N`). With the Transform fused into the GEMM
    /// write epilogue each workspace buffer only ever holds a stage input
    /// (the final stage writes straight into the caller's output), so this
    /// — not [`Self::max_intermediate_elems`] — sizes the fused ping-pong
    /// buffers. Always `≤ max_intermediate_elems()`.
    pub fn max_stage_input_elems(&self) -> usize {
        self.stages
            .iter()
            .map(StagePlan::input_elems)
            .max()
            .unwrap_or(0)
    }

    /// Total weight elements across all unfolded cores (weight-SRAM
    /// footprint in elements).
    pub fn total_core_elems(&self) -> usize {
        self.stages.iter().map(StagePlan::core_elems).sum()
    }

    /// Dense-equivalent operation count `2 · M · N` (multiply + add), the
    /// convention EIE/CirCNN/TIE all use when quoting "equivalent TOPS".
    pub fn dense_equivalent_ops(&self) -> u64 {
        2 * self.shape.num_rows() as u64 * self.shape.num_cols() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc7_shape() -> TtShape {
        TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap()
    }

    #[test]
    fn stages_are_in_reverse_core_order() {
        let p = InferencePlan::new(&fc7_shape()).unwrap();
        let hs: Vec<usize> = p.stages().iter().map(|s| s.h).collect();
        assert_eq!(hs, vec![6, 5, 4, 3, 2, 1]);
    }

    #[test]
    fn stage_dims_match_hand_computation() {
        // shape: m=[2,3], n=[4,5], r=[1,3,1]
        let s = TtShape::new(vec![2, 3], vec![4, 5], vec![1, 3, 1]).unwrap();
        let p = InferencePlan::new(&s).unwrap();
        // stage h=2: G̃_2 is (m2 r1)×(n2 r2) = 9×5, v_cols = n1 · 1 = 4
        assert_eq!(p.stages()[0].gtilde_rows, 9);
        assert_eq!(p.stages()[0].gtilde_cols, 5);
        assert_eq!(p.stages()[0].v_cols, 4);
        // stage h=1: G̃_1 is (m1 r0)×(n1 r1) = 2×12, v_cols = m2 = 3
        assert_eq!(p.stages()[1].gtilde_rows, 2);
        assert_eq!(p.stages()[1].gtilde_cols, 12);
        assert_eq!(p.stages()[1].v_cols, 3);
        assert_eq!(p.total_muls(), (9 * 5 * 4 + 2 * 12 * 3) as u64);
    }

    #[test]
    fn stage_io_chain_is_consistent() {
        // Output elements of stage h must equal input elements of stage h-1
        // (the transform is a permutation).
        let p = InferencePlan::new(&fc7_shape()).unwrap();
        for w in p.stages().windows(2) {
            assert_eq!(
                w[0].output_elems(),
                w[1].input_elems(),
                "stage {} -> {}",
                w[0].h,
                w[1].h
            );
        }
    }

    #[test]
    fn first_stage_input_is_n_and_last_output_is_m() {
        let p = InferencePlan::new(&fc7_shape()).unwrap();
        assert_eq!(p.stages()[0].input_elems(), 4096);
        assert_eq!(p.stages().last().unwrap().output_elems(), 4096);
    }

    #[test]
    fn working_set_is_twice_the_peak() {
        let s = TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap();
        let p = InferencePlan::new(&s).unwrap();
        assert_eq!(p.working_set_elems(), 2 * p.max_intermediate_elems());
        // FC6: peak intermediate exceeds both M and N (rank inflation).
        assert!(p.max_intermediate_elems() >= 25088);
    }

    #[test]
    fn fused_buffer_bound_is_tighter_than_legacy() {
        // Never larger than the legacy bound anywhere…
        for s in [
            fc7_shape(),
            TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap(),
            TtShape::uniform_rank(vec![4; 4], vec![8, 20, 20, 18], 4).unwrap(),
        ] {
            let p = InferencePlan::new(&s).unwrap();
            assert!(p.max_stage_input_elems() <= p.max_intermediate_elems());
        }
        // …and strictly smaller when the peak is a final-stage output: here
        // V_1 is 16 elements but no stage input exceeds 4.
        let s = TtShape::uniform_rank(vec![8, 2], vec![2, 2], 1).unwrap();
        let p = InferencePlan::new(&s).unwrap();
        assert_eq!(p.max_intermediate_elems(), 16);
        assert_eq!(p.max_stage_input_elems(), 4);
    }

    #[test]
    fn dense_equivalent_ops() {
        let p = InferencePlan::new(&fc7_shape()).unwrap();
        assert_eq!(p.dense_equivalent_ops(), 2 * 4096 * 4096);
    }

    #[test]
    fn total_core_elems_counts_all_weights() {
        let p = InferencePlan::new(&fc7_shape()).unwrap();
        assert_eq!(p.total_core_elems(), fc7_shape().num_params());
    }
}
