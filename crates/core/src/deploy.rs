//! Serializable per-layer deployment plans.
//!
//! A [`DeploymentPlan`] is the autotuner's output and the serving layer's
//! input: everything needed to reconstruct a layer's engine exactly — the
//! searched TT factorization and rank budget, the SVD route used to
//! compile it, the datapath backend, the serving batch width, the
//! pipeline cut depth, the fused epilogue, and the quantization
//! calibration margin. Plans render to JSON through the in-tree
//! serializer and parse back **bit-identically** (floats round-trip
//! exactly; see the vendored `serde_json` docs), so a tuned deployment
//! can be pinned as a fixture, diffed in review, and loaded by
//! `tie-serve`'s registry without re-running the search.

use tie_tensor::linalg::{RsvdParams, SvdMethod};
use tie_tensor::tile::Activation;
use tie_tensor::{Result, TensorError};
use tie_tt::TtShape;

use serde::{Serialize, Value};

/// Which datapath executes the layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanBackend {
    /// The float compact engine (`CompactEngine<f64>`).
    Float,
    /// The bit-accurate 16-bit fixed-point engine (`QuantizedEngine`).
    Quantized,
}

/// One layer's complete deployment decision. See the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Layer name (the registry key).
    pub layer: String,
    /// The searched TT layout: mode factorizations and achieved ranks.
    pub shape: TtShape,
    /// SVD route the compile used (seed-carrying, so recompiles are
    /// bit-identical).
    pub svd: SvdMethod,
    /// Datapath backend.
    pub backend: PlanBackend,
    /// Serving batch width the plan was scored at.
    pub batch: usize,
    /// Pipeline cut depth (1 = sequential; > 1 wraps the engine in a
    /// `StagePipeline` at this depth).
    pub pipeline_depth: usize,
    /// Micro-batch chunk width when pipelined.
    pub micro_batch: usize,
    /// Activation fused into the final stage's write epilogue.
    pub activation: Activation,
    /// Headroom multiplier for quantized activation-format calibration
    /// (the re-probe loop may have widened it from the searched value).
    pub quant_margin: f64,
    /// Modeled cycles per sample at the plan's batch/depth — the score
    /// that won the search (informational; re-derivable from the shape).
    pub modeled_cycles_per_sample: f64,
}

fn invalid(message: impl Into<String>) -> TensorError {
    TensorError::InvalidArgument {
        message: message.into(),
    }
}

fn usizes(v: &[usize]) -> Value {
    Value::Array(v.iter().map(|&x| Value::UInt(x as u64)).collect())
}

fn svd_value(svd: &SvdMethod) -> Value {
    match svd {
        SvdMethod::Auto { seed } => Value::Object(vec![
            ("method".into(), Value::String("auto".into())),
            ("seed".into(), Value::UInt(*seed)),
        ]),
        SvdMethod::Jacobi => Value::Object(vec![("method".into(), Value::String("jacobi".into()))]),
        SvdMethod::Randomized(p) => Value::Object(vec![
            ("method".into(), Value::String("randomized".into())),
            ("seed".into(), Value::UInt(p.seed)),
            ("oversample".into(), Value::UInt(p.oversample as u64)),
            ("power_iters".into(), Value::UInt(p.power_iters as u64)),
        ]),
    }
}

impl Serialize for DeploymentPlan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("layer".into(), Value::String(self.layer.clone())),
            ("row_modes".into(), usizes(&self.shape.row_modes)),
            ("col_modes".into(), usizes(&self.shape.col_modes)),
            ("ranks".into(), usizes(&self.shape.ranks)),
            ("svd".into(), svd_value(&self.svd)),
            (
                "backend".into(),
                Value::String(
                    match self.backend {
                        PlanBackend::Float => "float",
                        PlanBackend::Quantized => "quantized",
                    }
                    .into(),
                ),
            ),
            ("batch".into(), Value::UInt(self.batch as u64)),
            (
                "pipeline_depth".into(),
                Value::UInt(self.pipeline_depth as u64),
            ),
            ("micro_batch".into(), Value::UInt(self.micro_batch as u64)),
            (
                "activation".into(),
                Value::String(
                    match self.activation {
                        Activation::Identity => "identity",
                        Activation::Relu => "relu",
                    }
                    .into(),
                ),
            ),
            ("quant_margin".into(), Value::Float(self.quant_margin)),
            (
                "modeled_cycles_per_sample".into(),
                Value::Float(self.modeled_cycles_per_sample),
            ),
        ])
    }
}

fn field<'v>(v: &'v Value, key: &str) -> Result<&'v Value> {
    v.get(key)
        .ok_or_else(|| invalid(format!("deployment plan missing field `{key}`")))
}

fn parse_usize(v: &Value, key: &str) -> Result<usize> {
    field(v, key)?
        .as_u64()
        .and_then(|x| usize::try_from(x).ok())
        .ok_or_else(|| invalid(format!("field `{key}` must be an unsigned integer")))
}

fn parse_f64(v: &Value, key: &str) -> Result<f64> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| invalid(format!("field `{key}` must be a number")))
}

fn parse_str<'v>(v: &'v Value, key: &str) -> Result<&'v str> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| invalid(format!("field `{key}` must be a string")))
}

fn parse_usizes(v: &Value, key: &str) -> Result<Vec<usize>> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| invalid(format!("field `{key}` must be an array")))?
        .iter()
        .map(|x| {
            x.as_u64()
                .and_then(|u| usize::try_from(u).ok())
                .ok_or_else(|| invalid(format!("field `{key}` must hold unsigned integers")))
        })
        .collect()
}

fn parse_svd(v: &Value) -> Result<SvdMethod> {
    let svd = field(v, "svd")?;
    match parse_str(svd, "method")? {
        "auto" => Ok(SvdMethod::Auto {
            seed: field(svd, "seed")?
                .as_u64()
                .ok_or_else(|| invalid("svd seed must be an unsigned integer"))?,
        }),
        "jacobi" => Ok(SvdMethod::Jacobi),
        "randomized" => Ok(SvdMethod::Randomized(RsvdParams {
            seed: field(svd, "seed")?
                .as_u64()
                .ok_or_else(|| invalid("svd seed must be an unsigned integer"))?,
            oversample: parse_usize(svd, "oversample")?,
            power_iters: parse_usize(svd, "power_iters")?,
        })),
        other => Err(invalid(format!("unknown svd method `{other}`"))),
    }
}

impl DeploymentPlan {
    /// Renders the plan as pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialization is infallible")
    }

    /// Reconstructs a plan from a parsed JSON [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for missing/ill-typed
    /// fields or an invalid TT layout.
    pub fn from_value(v: &Value) -> Result<Self> {
        let shape = TtShape::new(
            parse_usizes(v, "row_modes")?,
            parse_usizes(v, "col_modes")?,
            parse_usizes(v, "ranks")?,
        )?;
        let backend = match parse_str(v, "backend")? {
            "float" => PlanBackend::Float,
            "quantized" => PlanBackend::Quantized,
            other => return Err(invalid(format!("unknown backend `{other}`"))),
        };
        let activation = match parse_str(v, "activation")? {
            "identity" => Activation::Identity,
            "relu" => Activation::Relu,
            other => return Err(invalid(format!("unknown activation `{other}`"))),
        };
        let plan = DeploymentPlan {
            layer: parse_str(v, "layer")?.to_string(),
            shape,
            svd: parse_svd(v)?,
            backend,
            batch: parse_usize(v, "batch")?,
            pipeline_depth: parse_usize(v, "pipeline_depth")?,
            micro_batch: parse_usize(v, "micro_batch")?,
            activation,
            quant_margin: parse_f64(v, "quant_margin")?,
            modeled_cycles_per_sample: parse_f64(v, "modeled_cycles_per_sample")?,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Parses a plan from JSON text (inverse of [`DeploymentPlan::to_json`],
    /// bit-identical for every finite float).
    ///
    /// # Errors
    ///
    /// As [`DeploymentPlan::from_value`], plus JSON syntax errors.
    pub fn from_json(text: &str) -> Result<Self> {
        let v = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
        Self::from_value(&v)
    }

    /// Structural sanity of the knob values (the [`TtShape`] validates
    /// itself at construction).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero batch/depth/
    /// micro-batch or a non-positive quantization margin.
    pub fn validate(&self) -> Result<()> {
        if self.layer.is_empty() {
            return Err(invalid("deployment plan needs a layer name"));
        }
        if self.batch == 0 || self.pipeline_depth == 0 || self.micro_batch == 0 {
            return Err(invalid(
                "batch, pipeline_depth and micro_batch must be at least 1",
            ));
        }
        if !(self.quant_margin > 0.0 && self.quant_margin.is_finite()) {
            return Err(invalid("quant_margin must be positive and finite"));
        }
        Ok(())
    }

    /// True when the plan wraps its engine in a stage pipeline.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipeline_depth > 1
    }
}

/// Renders a whole deployment (one plan per layer) as a JSON array.
#[must_use]
pub fn plans_to_json(plans: &[DeploymentPlan]) -> String {
    serde_json::to_string_pretty(&Value::Array(
        plans.iter().map(Serialize::to_value).collect(),
    ))
    .expect("plan serialization is infallible")
}

/// Parses a deployment back from [`plans_to_json`] output.
///
/// # Errors
///
/// As [`DeploymentPlan::from_json`].
pub fn plans_from_json(text: &str) -> Result<Vec<DeploymentPlan>> {
    let v = serde_json::from_str(text).map_err(|e| invalid(e.to_string()))?;
    v.as_array()
        .ok_or_else(|| invalid("deployment file must be a JSON array of plans"))?
        .iter()
        .map(DeploymentPlan::from_value)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> DeploymentPlan {
        DeploymentPlan {
            layer: "VGG-FC7".into(),
            shape: TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(),
            svd: SvdMethod::Auto { seed: 0x5EED },
            backend: PlanBackend::Quantized,
            batch: 16,
            pipeline_depth: 2,
            micro_batch: 1,
            activation: Activation::Relu,
            quant_margin: 1.5,
            modeled_cycles_per_sample: 336.25,
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let plan = sample_plan();
        let back = DeploymentPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(back, plan);
        assert_eq!(
            back.quant_margin.to_bits(),
            plan.quant_margin.to_bits(),
            "floats must survive bit-for-bit"
        );
    }

    #[test]
    fn round_trips_every_svd_method_and_backend() {
        for svd in [
            SvdMethod::Jacobi,
            SvdMethod::Auto { seed: 7 },
            SvdMethod::Randomized(RsvdParams {
                seed: 9,
                oversample: 5,
                power_iters: 3,
            }),
        ] {
            for backend in [PlanBackend::Float, PlanBackend::Quantized] {
                for activation in [Activation::Identity, Activation::Relu] {
                    let plan = DeploymentPlan {
                        svd,
                        backend,
                        activation,
                        ..sample_plan()
                    };
                    assert_eq!(DeploymentPlan::from_json(&plan.to_json()).unwrap(), plan);
                }
            }
        }
    }

    #[test]
    fn plan_arrays_round_trip() {
        let plans = vec![
            sample_plan(),
            DeploymentPlan {
                layer: "LSTM-UCF11".into(),
                shape: TtShape::uniform_rank(vec![4; 4], vec![8, 20, 20, 18], 4).unwrap(),
                backend: PlanBackend::Float,
                ..sample_plan()
            },
        ];
        let back = plans_from_json(&plans_to_json(&plans)).unwrap();
        assert_eq!(back, plans);
    }

    #[test]
    fn rejects_malformed_plans() {
        assert!(DeploymentPlan::from_json("not json").is_err());
        assert!(DeploymentPlan::from_json("{}").is_err());
        // Structurally valid JSON, semantically invalid knobs.
        let mut plan = sample_plan();
        plan.batch = 0;
        assert!(DeploymentPlan::from_json(&plan.to_json()).is_err());
        let mut plan = sample_plan();
        plan.quant_margin = 0.0;
        assert!(DeploymentPlan::from_json(&plan.to_json()).is_err());
        // Unknown backend string.
        let text = sample_plan().to_json().replace("quantized", "analog");
        assert!(DeploymentPlan::from_json(&text).is_err());
    }
}
