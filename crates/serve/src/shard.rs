//! The sharded, replicated serving layer: a consistent-hash router over
//! shard-local [`InferenceService`] replicas.
//!
//! ## Topology
//!
//! A [`ShardedService`] is `shards × replicas` independent
//! [`InferenceService`]s behind one [`HashRing`]:
//!
//! * the ring assigns every registered layer to exactly one **shard**
//!   ([`EngineRegistry::partition`]), so a shard owns a fixed slice of the
//!   registry — the serving-level analogue of the paper's compact scheme
//!   pinning each TT stage to a fixed core set;
//! * each shard runs `R` **replicas**, each a full dynamic-batching
//!   service over the shard's partition with its own bounded queue,
//!   batcher and worker pool — the backpressure and graceful-drain
//!   discipline is inherited wholesale, not re-implemented;
//! * a cloneable [`ShardedClient`] routes by layer key, spreads load over
//!   a shard's replicas round-robin, retries with bounded linear backoff
//!   when every replica reports a full queue, and fails fast with
//!   [`ServeError::ShardUnavailable`] when every replica is draining.
//!
//! ## Failure semantics
//!
//! Replicas can be **drained** (graceful: [`ShardedService::drain_replica`]
//! returns the final counters) or **killed**
//! ([`ShardedService::kill_replica`]: the handle is dropped, modelling an
//! operator yanking the process) at any time, including mid-load. Either
//! way the replica's own drain discipline answers every accepted request —
//! with a response or `ShuttingDown` — so nothing is lost or double
//! completed, and the retired replica's counters are retained in the
//! shard's accounting so the books still balance
//! (`routed == submitted == completed + failed`, per shard and globally).
//! [`ShardedService::reregister_replica`] brings a fresh replica up on the
//! shard's partition while the service keeps running.

use crate::config::ShardConfig;
use crate::error::ServeError;
use crate::registry::EngineRegistry;
use crate::request::Ticket;
use crate::router::HashRing;
use crate::service::{Client, InferenceService};
use crate::stats::{RouteCore, ServiceStats, ShardStats, ShardedStats};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Duration;

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One replica slot. A retired replica (drained or killed) keeps its
/// client so its final counters stay part of the shard's accounting; its
/// `service` is gone, so its client deterministically answers
/// `ShuttingDown` and the router skips it.
#[derive(Debug)]
struct Replica {
    client: Client,
    service: Option<InferenceService>,
}

impl Replica {
    fn start(registry: &EngineRegistry, config: &crate::ServeConfig) -> Result<Self, ServeError> {
        let service = InferenceService::start(registry.clone(), config.clone())?;
        Ok(Replica {
            client: service.client(),
            service: Some(service),
        })
    }
}

/// One shard: its registry partition, replica slots, and router counters.
#[derive(Debug)]
struct ShardState {
    /// The partition this shard owns (kept for re-registration).
    registry: EngineRegistry,
    replicas: RwLock<Vec<Replica>>,
    route: RouteCore,
    /// Round-robin cursor for replica selection.
    cursor: AtomicUsize,
}

/// State shared by the service handle and every client.
#[derive(Debug)]
struct SharedState {
    ring: HashRing,
    /// The full registry, for submit-time validation (a client must be
    /// able to reject an unknown layer even when it would route to an
    /// empty shard).
    registry: Arc<EngineRegistry>,
    shards: Vec<ShardState>,
    accepting: AtomicBool,
    submit_retries: usize,
    retry_backoff: Duration,
    /// Per-replica service config, kept so re-registered replicas start
    /// with exactly the knobs of the originals.
    replica_config: crate::ServeConfig,
}

/// Outcome of one routing pass over a shard's replicas.
enum RoutePass {
    Accepted(Ticket),
    /// At least one replica had a full queue (worth retrying).
    Full,
    /// Every replica is draining or retired (fail fast).
    Draining,
}

impl SharedState {
    /// One round-robin pass over the shard's replicas with `try_submit`.
    fn route_once(
        &self,
        shard: &ShardState,
        layer: &str,
        input: &[f64],
    ) -> Result<RoutePass, ServeError> {
        let replicas = read_lock(&shard.replicas);
        let k = replicas.len();
        if k == 0 {
            return Ok(RoutePass::Draining);
        }
        let start = shard.cursor.fetch_add(1, Ordering::Relaxed) % k;
        let mut saw_full = false;
        for i in 0..k {
            let replica = &replicas[(start + i) % k];
            match replica.client.try_submit(layer, input.to_vec()) {
                Ok(ticket) => return Ok(RoutePass::Accepted(ticket)),
                Err(ServeError::QueueFull) => saw_full = true,
                Err(ServeError::ShuttingDown) => {} // draining/retired: skip
                Err(e) => return Err(e),            // validation — cannot depend on the replica
            }
        }
        Ok(if saw_full {
            RoutePass::Full
        } else {
            RoutePass::Draining
        })
    }

    /// Shared submit body: validate, route, retry on full, fail fast on a
    /// draining shard. `retries` is the number of backoff rounds allowed.
    fn submit(&self, layer: &str, input: &[f64], retries: usize) -> Result<Ticket, ServeError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (_m, n) = self
            .registry
            .dims(layer)
            .ok_or_else(|| ServeError::UnknownLayer(layer.to_string()))?;
        if input.len() != n {
            return Err(ServeError::WrongInputLength {
                got: input.len(),
                want: n,
            });
        }
        let shard_id = self.ring.shard_for(layer);
        let shard = &self.shards[shard_id];
        let mut round = 0usize;
        loop {
            match self.route_once(shard, layer, input)? {
                RoutePass::Accepted(ticket) => {
                    shard.route.record_routed();
                    return Ok(ticket);
                }
                RoutePass::Draining => {
                    shard.route.record_drained();
                    return Err(ServeError::ShardUnavailable { shard: shard_id });
                }
                RoutePass::Full => {
                    if round >= retries {
                        shard.route.record_rejected();
                        return Err(ServeError::QueueFull);
                    }
                    round += 1;
                    shard.route.record_retry();
                    // Linear bounded backoff: round k sleeps k × base.
                    std::thread::sleep(
                        self.retry_backoff * u32::try_from(round).unwrap_or(u32::MAX),
                    );
                }
            }
        }
    }

    fn stats(&self) -> ShardedStats {
        let shards = self
            .shards
            .iter()
            .enumerate()
            .map(|(s, shard)| {
                let replicas = read_lock(&shard.replicas);
                shard
                    .route
                    .snapshot(s, replicas.iter().map(|r| r.client.stats()).collect())
            })
            .collect();
        ShardedStats { shards }
    }
}

/// A cloneable handle for submitting requests to a [`ShardedService`].
///
/// Routing is deterministic: `layer` → [`HashRing::shard_for`] → one of
/// the shard's replicas (round-robin start, first with queue room wins).
/// [`ShardedClient::submit`] retries a fully-backpressured shard with
/// bounded linear backoff before giving up with [`ServeError::QueueFull`];
/// [`ShardedClient::try_submit`] is a single non-blocking pass. Both fail
/// fast with [`ServeError::ShardUnavailable`] when every replica of the
/// target shard is draining.
#[derive(Debug, Clone)]
pub struct ShardedClient {
    state: Arc<SharedState>,
}

impl ShardedClient {
    /// Submits a request, retrying a fully-backpressured shard up to
    /// [`ShardConfig::submit_retries`] times with linear backoff.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownLayer`] / [`ServeError::WrongInputLength`] for
    /// invalid requests, [`ServeError::QueueFull`] after retry exhaustion,
    /// [`ServeError::ShardUnavailable`] when the target shard has no
    /// accepting replica, [`ServeError::ShuttingDown`] once shutdown
    /// began.
    pub fn submit(&self, layer: &str, input: Vec<f64>) -> Result<Ticket, ServeError> {
        self.state.submit(layer, &input, self.state.submit_retries)
    }

    /// Submits without blocking: one routing pass, no backoff.
    ///
    /// # Errors
    ///
    /// As [`ShardedClient::submit`], with [`ServeError::QueueFull`]
    /// surfacing immediately when every replica of the shard is full.
    pub fn try_submit(&self, layer: &str, input: Vec<f64>) -> Result<Ticket, ServeError> {
        self.state.submit(layer, &input, 0)
    }

    /// The shard the ring assigns `layer` to (what `submit` will target).
    #[must_use]
    pub fn shard_for(&self, layer: &str) -> usize {
        self.state.ring.shard_for(layer)
    }

    /// The consistent-hash ring the router uses.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.state.ring
    }

    /// The full registry this client validates against.
    #[must_use]
    pub fn registry(&self) -> &EngineRegistry {
        &self.state.registry
    }

    /// A point-in-time snapshot of the per-shard/per-replica counters.
    #[must_use]
    pub fn stats(&self) -> ShardedStats {
        self.state.stats()
    }
}

/// A running sharded, replicated inference service (see the module docs
/// for topology and failure semantics).
///
/// ```
/// use rand::SeedableRng;
/// use rand_chacha::ChaCha8Rng;
/// use std::time::Duration;
/// use tie_core::CompactEngine;
/// use tie_serve::{EngineRegistry, ServeConfig, ShardConfig, ShardedService};
/// use tie_tt::{TtMatrix, TtShape};
///
/// let mut rng = ChaCha8Rng::seed_from_u64(1);
/// let mut registry = EngineRegistry::new();
/// for name in ["fc6", "fc7", "lstm"] {
///     let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
///     let tt = TtMatrix::random(&mut rng, &shape, 0.5).unwrap();
///     registry.insert(name, CompactEngine::new(tt).unwrap());
/// }
///
/// let config = ShardConfig {
///     shards: 2,
///     replicas: 2,
///     replica: ServeConfig { max_wait: Duration::from_micros(100), ..Default::default() },
///     ..Default::default()
/// };
/// let service = ShardedService::start(registry, config).unwrap();
/// let client = service.client();
/// let response = client.submit("fc7", vec![0.25; 6]).unwrap().wait().unwrap();
/// assert_eq!(response.output.len(), 6);
///
/// let stats = service.shutdown();
/// let global = stats.global();
/// assert_eq!(global.submitted, global.completed + global.failed);
/// assert_eq!(stats.routed(), global.submitted);
/// ```
#[derive(Debug)]
pub struct ShardedService {
    state: Arc<SharedState>,
}

impl ShardedService {
    /// Starts the sharded service: builds the ring, partitions the
    /// registry, and spawns [`ShardConfig::replicas`] replicas for every
    /// shard that owns at least one layer (shards with an empty partition
    /// get no replicas — no valid key can route to them).
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid configuration or an empty
    /// registry.
    pub fn start(registry: EngineRegistry, config: ShardConfig) -> Result<Self, ServeError> {
        config.validate()?;
        if registry.is_empty() {
            return Err(ServeError::Config("registry has no layers".into()));
        }
        let ring = HashRing::new(config.shards, config.vnodes).map_err(ServeError::Config)?;
        let partitions = registry.partition(&ring);
        let mut shards = Vec::with_capacity(config.shards);
        for partition in partitions {
            let mut replicas = Vec::new();
            if !partition.is_empty() {
                for _ in 0..config.replicas {
                    replicas.push(Replica::start(&partition, &config.replica)?);
                }
            }
            shards.push(ShardState {
                registry: partition,
                replicas: RwLock::new(replicas),
                route: RouteCore::default(),
                cursor: AtomicUsize::new(0),
            });
        }
        let state = Arc::new(SharedState {
            ring,
            registry: Arc::new(registry),
            shards,
            accepting: AtomicBool::new(true),
            submit_retries: config.submit_retries,
            retry_backoff: config.retry_backoff,
            replica_config: config.replica,
        });
        Ok(ShardedService { state })
    }

    /// A new routing client. Clients are cheap to clone and outlive the
    /// service (their submissions then fail with
    /// [`ServeError::ShuttingDown`]).
    #[must_use]
    pub fn client(&self) -> ShardedClient {
        ShardedClient {
            state: Arc::clone(&self.state),
        }
    }

    /// The consistent-hash ring in use.
    #[must_use]
    pub fn ring(&self) -> &HashRing {
        &self.state.ring
    }

    /// Number of replica slots (live + retired) of `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn replica_slots(&self, shard: usize) -> usize {
        read_lock(&self.state.shards[shard].replicas).len()
    }

    /// Number of live (accepting) replicas of `shard`.
    ///
    /// # Panics
    ///
    /// Panics when `shard` is out of range.
    #[must_use]
    pub fn live_replicas(&self, shard: usize) -> usize {
        read_lock(&self.state.shards[shard].replicas)
            .iter()
            .filter(|r| r.service.is_some())
            .count()
    }

    /// A point-in-time snapshot of the per-shard/per-replica counters.
    #[must_use]
    pub fn stats(&self) -> ShardedStats {
        self.state.stats()
    }

    /// Gracefully drains one replica: stops it accepting, waits for its
    /// queued work to finish, joins its threads, and returns its final
    /// counters. The slot is retained (retired) so the shard's accounting
    /// keeps the replica's history; the router skips it from now on.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an out-of-range slot or a replica that
    /// is already retired.
    pub fn drain_replica(&self, shard: usize, slot: usize) -> Result<ServiceStats, ServeError> {
        let service = self.take_service(shard, slot)?;
        // Shutdown outside the lock: draining can take as long as the
        // queued work, and the shard's other replicas must keep serving.
        Ok(service.shutdown())
    }

    /// Kills one replica: the service handle is dropped, modelling an
    /// operator yanking the process. The drop still runs the drain
    /// discipline (every accepted request is answered — completed or
    /// `ShuttingDown` — before the threads exit), so even a "kill" loses
    /// nothing; the difference from [`ShardedService::drain_replica`] is
    /// purely that the caller gets no final snapshot back. The retired
    /// slot keeps the replica's counters in the shard's accounting.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an out-of-range slot or a replica that
    /// is already retired.
    pub fn kill_replica(&self, shard: usize, slot: usize) -> Result<(), ServeError> {
        drop(self.take_service(shard, slot)?);
        Ok(())
    }

    /// Starts a fresh replica on `shard`'s partition while the service is
    /// running, and returns its slot index. Retired slots are never
    /// reused — the new replica starts with zeroed counters in a new slot
    /// and immediately joins the router's round-robin.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] when the shard owns no layers (an empty
    /// partition can never be routed to), [`ServeError::ShuttingDown`]
    /// once service shutdown began.
    pub fn reregister_replica(&self, shard: usize) -> Result<usize, ServeError> {
        if !self.state.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let Some(st) = self.state.shards.get(shard) else {
            return Err(ServeError::Config(format!("shard {shard} out of range")));
        };
        if st.registry.is_empty() {
            return Err(ServeError::Config(format!("shard {shard} owns no layers")));
        }
        // Start before taking the lock: replica startup spawns threads
        // and must not block the routing path.
        let replica = Replica::start(&st.registry, &self.state.replica_config)?;
        let mut replicas = write_lock(&st.replicas);
        replicas.push(replica);
        Ok(replicas.len() - 1)
    }

    /// Gracefully shuts down every live replica of one shard. Subsequent
    /// submissions routed there fail fast with
    /// [`ServeError::ShardUnavailable`] until
    /// [`ShardedService::reregister_replica`] revives it.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an out-of-range shard.
    pub fn shutdown_shard(&self, shard: usize) -> Result<ShardStats, ServeError> {
        let Some(st) = self.state.shards.get(shard) else {
            return Err(ServeError::Config(format!("shard {shard} out of range")));
        };
        let services: Vec<InferenceService> = {
            let mut replicas = write_lock(&st.replicas);
            replicas
                .iter_mut()
                .filter_map(|r| r.service.take())
                .collect()
        };
        for service in services {
            service.shutdown();
        }
        let replicas = read_lock(&st.replicas);
        Ok(st
            .route
            .snapshot(shard, replicas.iter().map(|r| r.client.stats()).collect()))
    }

    /// Graceful shutdown of the whole service: stop accepting, drain
    /// every live replica of every shard, and return the final snapshot,
    /// for which — per shard and globally —
    /// `routed == submitted == completed + failed` holds.
    pub fn shutdown(self) -> ShardedStats {
        self.shutdown_in_place();
        self.state.stats()
    }

    fn shutdown_in_place(&self) {
        self.state.accepting.store(false, Ordering::Release);
        for st in &self.state.shards {
            let services: Vec<InferenceService> = {
                let mut replicas = write_lock(&st.replicas);
                replicas
                    .iter_mut()
                    .filter_map(|r| r.service.take())
                    .collect()
            };
            for service in services {
                service.shutdown();
            }
        }
    }

    fn take_service(&self, shard: usize, slot: usize) -> Result<InferenceService, ServeError> {
        let Some(st) = self.state.shards.get(shard) else {
            return Err(ServeError::Config(format!("shard {shard} out of range")));
        };
        let mut replicas = write_lock(&st.replicas);
        let Some(replica) = replicas.get_mut(slot) else {
            return Err(ServeError::Config(format!(
                "shard {shard} has no slot {slot}"
            )));
        };
        replica.service.take().ok_or_else(|| {
            ServeError::Config(format!(
                "replica {slot} of shard {shard} is already retired"
            ))
        })
    }
}

impl Drop for ShardedService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use tie_core::CompactEngine;
    use tie_tt::{TtMatrix, TtShape};

    fn engine(seed: u64) -> CompactEngine<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap()
    }

    fn registry(layers: usize) -> EngineRegistry {
        let mut reg = EngineRegistry::new();
        for i in 0..layers {
            reg.insert(format!("fc{i}"), engine(100 + i as u64));
        }
        reg
    }

    fn fast_config(shards: usize, replicas: usize) -> ShardConfig {
        ShardConfig {
            shards,
            replicas,
            replica: ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_micros(200),
                queue_capacity: 64,
                workers: 1,
            },
            ..ShardConfig::default()
        }
    }

    #[test]
    fn start_rejects_empty_registry_and_bad_config() {
        assert!(matches!(
            ShardedService::start(EngineRegistry::new(), ShardConfig::default()),
            Err(ServeError::Config(_))
        ));
        let bad = ShardConfig {
            shards: 0,
            ..ShardConfig::default()
        };
        assert!(ShardedService::start(registry(3), bad).is_err());
    }

    #[test]
    fn routed_responses_are_bit_identical_to_direct_calls() {
        let reg = registry(8);
        let svc = ShardedService::start(reg.clone(), fast_config(4, 2)).unwrap();
        let client = svc.client();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for i in 0..8 {
            let name = format!("fc{i}");
            let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let resp = client.submit(&name, x.clone()).unwrap().wait().unwrap();
            let mut direct = vec![0.0; 6];
            reg.get(&name)
                .unwrap()
                .matvec_batch_into(&x, 1, &mut direct)
                .unwrap();
            assert_eq!(resp.output, direct, "{name}");
            assert_eq!(client.shard_for(&name), svc.ring().shard_for(&name));
        }
        let stats = svc.shutdown();
        let global = stats.global();
        assert_eq!(global.submitted, 8);
        assert_eq!(global.completed, 8);
        assert_eq!(global.failed, 0);
        assert_eq!(stats.routed(), 8);
        for shard in &stats.shards {
            assert_eq!(
                shard.routed,
                shard.service().submitted,
                "shard {}",
                shard.shard
            );
        }
    }

    #[test]
    fn validation_errors_bypass_routing() {
        let svc = ShardedService::start(registry(3), fast_config(2, 1)).unwrap();
        let client = svc.client();
        assert!(matches!(
            client.submit("nope", vec![0.0; 6]),
            Err(ServeError::UnknownLayer(_))
        ));
        assert_eq!(
            client.submit("fc0", vec![0.0; 5]).unwrap_err(),
            ServeError::WrongInputLength { got: 5, want: 6 }
        );
        let stats = svc.shutdown();
        assert_eq!(stats.routed() + stats.rejected() + stats.drained(), 0);
    }

    #[test]
    fn drain_and_kill_retire_replicas_and_reregister_revives() {
        let svc = ShardedService::start(registry(6), fast_config(2, 2)).unwrap();
        let client = svc.client();
        // Find a shard that owns a layer, via any registered name.
        let name = "fc0";
        let shard = client.shard_for(name);
        assert_eq!(svc.live_replicas(shard), 2);

        let final_stats = svc.drain_replica(shard, 0).unwrap();
        assert_eq!(
            final_stats.submitted,
            final_stats.completed + final_stats.failed
        );
        assert!(
            svc.drain_replica(shard, 0).is_err(),
            "double drain must fail"
        );
        svc.kill_replica(shard, 1).unwrap();
        assert_eq!(svc.live_replicas(shard), 0);

        // All replicas down: fail fast.
        assert_eq!(
            client.submit(name, vec![0.1; 6]).unwrap_err(),
            ServeError::ShardUnavailable { shard }
        );

        // Revive and serve again.
        let slot = svc.reregister_replica(shard).unwrap();
        assert_eq!(slot, 2, "retired slots are never reused");
        assert_eq!(svc.live_replicas(shard), 1);
        assert!(client.submit(name, vec![0.1; 6]).unwrap().wait().is_ok());

        let stats = svc.shutdown();
        let st = &stats.shards[shard];
        assert_eq!(st.replicas.len(), 3);
        assert_eq!(st.drained, 1, "the fail-fast submission is accounted");
        assert_eq!(st.routed, st.service().submitted);
        let global = stats.global();
        assert_eq!(global.submitted, global.completed + global.failed);
    }

    #[test]
    fn shutdown_shard_fails_fast_until_reregistered() {
        let svc = ShardedService::start(registry(6), fast_config(2, 2)).unwrap();
        let client = svc.client();
        let name = "fc1";
        let shard = client.shard_for(name);
        let st = svc.shutdown_shard(shard).unwrap();
        assert_eq!(st.shard, shard);
        assert_eq!(svc.live_replicas(shard), 0);
        assert!(matches!(
            client.submit(name, vec![0.0; 6]),
            Err(ServeError::ShardUnavailable { .. })
        ));
        svc.reregister_replica(shard).unwrap();
        assert!(client.submit(name, vec![0.0; 6]).unwrap().wait().is_ok());
        svc.shutdown();
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let svc = ShardedService::start(registry(3), fast_config(2, 1)).unwrap();
        let client = svc.client();
        svc.shutdown();
        assert_eq!(
            client.submit("fc0", vec![0.0; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(
            client.try_submit("fc0", vec![0.0; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn full_queues_reject_after_bounded_retries() {
        // Deterministic backpressure: one rigged replica around a
        // capacity-1 channel nobody drains, so "full" is not transient
        // (a real batcher drains its queue and races the assertion).
        use crate::stats::StatsCore;
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(1));
        let registry = Arc::new(reg);
        let stats = Arc::new(StatsCore::new());
        let (client, _rx) =
            crate::service::rigged_client(Arc::clone(&registry), Arc::clone(&stats), 1);
        let state = SharedState {
            ring: HashRing::new(1, 8).unwrap(),
            registry,
            shards: vec![ShardState {
                registry: EngineRegistry::new(),
                replicas: RwLock::new(vec![Replica {
                    client,
                    service: None,
                }]),
                route: RouteCore::default(),
                cursor: AtomicUsize::new(0),
            }],
            accepting: AtomicBool::new(true),
            submit_retries: 2,
            retry_backoff: Duration::from_micros(10),
            replica_config: ServeConfig::default(),
        };

        // First submission fills the only queue slot.
        let _ticket = state.submit("fc", &[0.2; 6], 2).unwrap();
        // Second: every pass sees Full, retries twice, then gives up.
        assert_eq!(
            state.submit("fc", &[0.2; 6], 2).unwrap_err(),
            ServeError::QueueFull
        );
        // try_submit semantics: zero retry rounds.
        assert_eq!(
            state.submit("fc", &[0.2; 6], 0).unwrap_err(),
            ServeError::QueueFull
        );

        let snapshot = state.stats();
        let shard = &snapshot.shards[0];
        assert_eq!(shard.routed, 1);
        assert_eq!(shard.retried, 2, "submit_retries bounds the backoff rounds");
        assert_eq!(shard.rejected, 2);
        assert_eq!(shard.drained, 0);
        assert_eq!(shard.routed, shard.service().submitted);
    }

    #[test]
    fn drop_performs_graceful_shutdown() {
        let svc = ShardedService::start(registry(3), fast_config(2, 1)).unwrap();
        let client = svc.client();
        let ticket = client.submit("fc0", vec![0.2; 6]).unwrap();
        drop(svc);
        assert!(ticket.wait().is_ok(), "pending request drained, not lost");
        assert_eq!(
            client.submit("fc0", vec![0.2; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn quantized_layers_ride_the_same_router() {
        use tie_sim::{QuantConfig, QuantizedEngine};
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let qe = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(2))
            .insert_quantized("qfc", qe.clone());
        let svc = ShardedService::start(reg, fast_config(3, 1)).unwrap();
        let client = svc.client();
        let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let resp = client.submit("qfc", x.clone()).unwrap().wait().unwrap();
        let mut direct = vec![0.0; 6];
        qe.matvec_batch_into(&x, 1, &mut direct).unwrap();
        assert_eq!(resp.output, direct);
        let stats = svc.shutdown();
        assert!(stats.global().quant_outputs > 0);
    }
}
