//! # tie-serve — dynamic-batching inference service over the compact TT
//! # engine
//!
//! TIE's compact inference scheme (PAPER.md, Eqns. 8/10) turns a TT-layer
//! forward pass into `d` GEMMs, and its batched form rides the batch
//! dimension inner-most so a batch of `B` inputs still costs one GEMM per
//! stage with `core_reads == num_params`. That makes *dynamic batching*
//! the natural serving strategy: amortise per-request overhead by grouping
//! concurrent requests for the same layer into one
//! [`CompactEngine::matvec_batch_into`](tie_core::CompactEngine) call.
//!
//! This crate is a self-contained serving layer on `std` threads and
//! bounded channels — no external dependencies:
//!
//! * [`EngineRegistry`] — prepared engines keyed by layer name, shared via
//!   `Arc`. Three backends coexist: float `CompactEngine`s
//!   ([`EngineRegistry::insert`]), bit-accurate fixed-point
//!   [`tie_sim::QuantizedEngine`]s
//!   ([`EngineRegistry::insert_quantized`]), and pipeline-parallel
//!   [`tie_sim::PipelinedEngine`]s wrapping either datapath
//!   ([`EngineRegistry::insert_pipelined`]) — clients submit the same
//!   `f64` requests every way, quantized batches feed the `quant_*`
//!   saturation counters in [`ServiceStats`]
//!   (see [`ServiceStats::quant_saturation_rate`]), and pipelined batches
//!   feed the `pipeline_*` occupancy/stall/handoff counters (see
//!   [`ServiceStats::pipeline_stall_fraction`]; the books reconcile
//!   exactly: `pipeline_stage_chunks == pipeline_chunks +
//!   pipeline_handoffs`).
//! * [`InferenceService`] — owns a batcher thread and a worker pool sized
//!   by [`tie_tensor::parallel`] (workers hold private engine clones, so
//!   execution never contends on a scratch-workspace lock).
//! * [`Client`] — cheap cloneable submission handle; blocking
//!   [`Client::submit`] and non-blocking [`Client::try_submit`] against a
//!   bounded queue (backpressure).
//! * [`Ticket`] — per-request future; [`Ticket::wait`] returns the
//!   [`Response`].
//! * [`ServiceStats`] — per-request latency and per-batch
//!   occupancy/throughput counters; after a clean
//!   [`InferenceService::shutdown`], `submitted == completed + failed`.
//! * [`ShardedService`] / [`ShardedClient`] — the scale-out layer: a
//!   deterministic consistent-hash [`HashRing`] partitions the registry
//!   into shards, each served by `R` replica [`InferenceService`]s with
//!   their own bounded queues; the client routes by layer key, retries a
//!   fully-backpressured shard with bounded backoff, and fails fast when
//!   a shard is draining. [`ShardedStats`] rolls per-replica counters up
//!   into per-shard ([`ShardStats`]) and global views whose books always
//!   balance (see `shard.rs` module docs for the failure semantics).
//!
//! Batching changes *scheduling*, never *numerics*: the batched pass is
//! bitwise identical to `B` independent single-input calls (proved by the
//! engine's property suite and re-checked end-to-end by the stress suite).
//!
//! ```
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use tie_core::CompactEngine;
//! use tie_serve::{EngineRegistry, InferenceService, ServeConfig};
//! use tie_tt::{TtMatrix, TtShape};
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//! let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
//! let tt = TtMatrix::random(&mut rng, &shape, 0.5).unwrap();
//!
//! let mut registry = EngineRegistry::new();
//! registry.insert("fc", CompactEngine::new(tt).unwrap());
//!
//! let service = InferenceService::start(registry, ServeConfig::default()).unwrap();
//! let client = service.client();
//! let ticket = client.submit("fc", vec![0.5; 6]).unwrap();
//! let response = ticket.wait().unwrap();
//! assert_eq!(response.output.len(), 6);
//!
//! let stats = service.shutdown();
//! assert_eq!(stats.submitted, stats.completed + stats.failed);
//! ```

mod batcher;
mod config;
mod error;
mod registry;
mod request;
mod router;
mod service;
mod shard;
mod stats;
mod worker;

pub use config::{ServeConfig, ShardConfig};
pub use error::ServeError;
pub use registry::EngineRegistry;
pub use request::{Response, Ticket};
pub use router::HashRing;
pub use service::{Client, InferenceService};
pub use shard::{ShardedClient, ShardedService};
pub use stats::{ServiceStats, ShardStats, ShardedStats};
pub use tie_core::Activation;
