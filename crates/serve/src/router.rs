//! The consistent-hash layer→shard map.
//!
//! Sharding the registry needs a key→shard function that is
//!
//! 1. **deterministic** — the same layer name must land on the same shard
//!    in every process of a deployment, with no per-process hash seeds
//!    (`std::collections::HashMap`'s `RandomState` is exactly what we must
//!    *not* use), and
//! 2. **stable under resharding** — growing a deployment from `S` to
//!    `S + 1` shards must remap only the keys that move *to* the new
//!    shard, never shuffle keys between surviving shards (each remapped
//!    key invalidates a shard's warm engine clones and any layer-local
//!    cache state).
//!
//! Both come from the classic consistent-hash ring: every shard owns
//! [`HashRing::vnodes`] pseudo-random points on the `u64` circle, and a
//! key belongs to the shard owning the first point at or clockwise after
//! the key's hash. The hash is FNV-1a finished with the SplitMix64
//! avalanche, so single-character key differences spread across the whole
//! circle; `vnodes` points per shard keep the arc lengths — and therefore
//! the key load — balanced within a small factor (property-tested in
//! `tests/properties.rs`, pinned for the Table 4 layer set in
//! `tests/golden.rs`).

/// FNV-1a over the key bytes, finished with the SplitMix64 avalanche so
/// short, similar keys (`"fc6"`, `"fc7"`) still land far apart on the
/// ring.
#[must_use]
fn hash_key(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    // SplitMix64 finalizer.
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// A consistent-hash ring mapping layer keys to shard ids.
///
/// Construction is pure arithmetic on `(shard id, vnode index)` pairs:
/// two rings built with the same shard set and `vnodes` are identical,
/// across processes and across runs.
///
/// ```
/// use tie_serve::HashRing;
/// let ring = HashRing::new(4, 64).unwrap();
/// let s = ring.shard_for("VGG-FC6");
/// assert!(s < 4);
/// assert_eq!(s, HashRing::new(4, 64).unwrap().shard_for("VGG-FC6"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, shard)` sorted by point; ties broken by shard id so the
    /// ring is a pure function of the shard set.
    points: Vec<(u64, usize)>,
    /// Sorted live shard ids.
    shards: Vec<usize>,
    /// Ring points per shard.
    vnodes: usize,
}

impl HashRing {
    /// A ring over shards `0..num_shards`, each with `vnodes` points.
    ///
    /// # Errors
    ///
    /// `Err` when `num_shards == 0` or `vnodes == 0`.
    pub fn new(num_shards: usize, vnodes: usize) -> Result<Self, String> {
        Self::with_shards((0..num_shards).collect(), vnodes)
    }

    /// A ring over an explicit shard-id set (ids need not be contiguous —
    /// a removed shard leaves a hole).
    ///
    /// # Errors
    ///
    /// `Err` when `shard_ids` is empty, contains duplicates, or
    /// `vnodes == 0`.
    pub fn with_shards(mut shard_ids: Vec<usize>, vnodes: usize) -> Result<Self, String> {
        if shard_ids.is_empty() {
            return Err("hash ring needs at least one shard".into());
        }
        if vnodes == 0 {
            return Err("hash ring needs at least one vnode per shard".into());
        }
        shard_ids.sort_unstable();
        if shard_ids.windows(2).any(|w| w[0] == w[1]) {
            return Err("duplicate shard id".into());
        }
        let mut ring = HashRing {
            points: Vec::new(),
            shards: shard_ids,
            vnodes,
        };
        for i in 0..ring.shards.len() {
            let shard = ring.shards[i];
            ring.insert_points(shard);
        }
        ring.points.sort_unstable();
        Ok(ring)
    }

    /// Appends (unsorted) the `vnodes` ring points of one shard.
    fn insert_points(&mut self, shard: usize) {
        for v in 0..self.vnodes {
            // The point key mixes shard id and vnode index through the
            // same avalanche as layer keys; collisions across shards are
            // broken deterministically by the (point, shard) sort order.
            let mut key = [0u8; 16];
            key[..8].copy_from_slice(&(shard as u64).to_le_bytes());
            key[8..].copy_from_slice(&(v as u64).to_le_bytes());
            self.points.push((hash_key(&key), shard));
        }
    }

    /// The shard owning `key`: the first ring point at or clockwise after
    /// `hash(key)`, wrapping at the top of the `u64` circle.
    #[must_use]
    pub fn shard_for(&self, key: &str) -> usize {
        let h = hash_key(key.as_bytes());
        let idx = self.points.partition_point(|&(p, _)| p < h);
        let (_, shard) = self.points[idx % self.points.len()];
        shard
    }

    /// Adds a shard to the ring. Only keys whose arc the new shard's
    /// points split move (to the new shard); all other assignments are
    /// untouched — the minimal-remapping property.
    ///
    /// # Errors
    ///
    /// `Err` when `shard` is already on the ring.
    pub fn add_shard(&mut self, shard: usize) -> Result<(), String> {
        if self.shards.contains(&shard) {
            return Err(format!("shard {shard} already on the ring"));
        }
        self.shards.push(shard);
        self.shards.sort_unstable();
        self.insert_points(shard);
        self.points.sort_unstable();
        Ok(())
    }

    /// Removes a shard from the ring. Keys it owned redistribute to the
    /// survivors; keys it did not own are untouched.
    ///
    /// # Errors
    ///
    /// `Err` when `shard` is not on the ring or is the last shard.
    pub fn remove_shard(&mut self, shard: usize) -> Result<(), String> {
        if !self.shards.contains(&shard) {
            return Err(format!("shard {shard} not on the ring"));
        }
        if self.shards.len() == 1 {
            return Err("cannot remove the last shard".into());
        }
        self.shards.retain(|&s| s != shard);
        self.points.retain(|&(_, s)| s != shard);
        Ok(())
    }

    /// Sorted live shard ids.
    #[must_use]
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Ring points per shard.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_rings() {
        assert!(HashRing::new(0, 64).is_err());
        assert!(HashRing::new(4, 0).is_err());
        assert!(HashRing::with_shards(vec![1, 1], 8).is_err());
        assert!(HashRing::with_shards(vec![], 8).is_err());
    }

    #[test]
    fn deterministic_and_in_range() {
        let a = HashRing::new(5, 32).unwrap();
        let b = HashRing::new(5, 32).unwrap();
        assert_eq!(a, b);
        for i in 0..200 {
            let key = format!("layer-{i}");
            let s = a.shard_for(&key);
            assert!(s < 5);
            assert_eq!(s, b.shard_for(&key));
        }
    }

    #[test]
    fn every_shard_owns_keys_at_reasonable_vnode_counts() {
        let ring = HashRing::new(4, 64).unwrap();
        let mut hit = [false; 4];
        for i in 0..1000 {
            hit[ring.shard_for(&format!("k{i}"))] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "4 shards x 64 vnodes must all own keys: {hit:?}"
        );
    }

    #[test]
    fn add_then_remove_round_trips() {
        let mut ring = HashRing::new(3, 16).unwrap();
        let before: Vec<usize> = (0..500).map(|i| ring.shard_for(&format!("k{i}"))).collect();
        ring.add_shard(3).unwrap();
        assert!(ring.add_shard(3).is_err());
        for (i, &b) in before.iter().enumerate() {
            let now = ring.shard_for(&format!("k{i}"));
            assert!(
                now == b || now == 3,
                "key k{i} moved {b} -> {now}, not to the new shard"
            );
        }
        ring.remove_shard(3).unwrap();
        assert!(ring.remove_shard(3).is_err());
        let after: Vec<usize> = (0..500).map(|i| ring.shard_for(&format!("k{i}"))).collect();
        assert_eq!(before, after, "add+remove must restore every assignment");
    }

    #[test]
    fn cannot_remove_last_shard() {
        let mut ring = HashRing::new(1, 8).unwrap();
        assert!(ring.remove_shard(0).is_err());
    }

    #[test]
    fn shard_ids_need_not_be_contiguous() {
        let ring = HashRing::with_shards(vec![0, 2, 7], 16).unwrap();
        assert_eq!(ring.shards(), &[0, 2, 7]);
        for i in 0..100 {
            assert!([0, 2, 7].contains(&ring.shard_for(&format!("k{i}"))));
        }
    }
}
