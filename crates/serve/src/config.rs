//! Service configuration.

use crate::error::ServeError;
use std::time::Duration;

/// Tuning knobs of an [`crate::InferenceService`].
///
/// The two batching knobs implement the classic dynamic-batching contract:
/// a batch for a layer is dispatched as soon as **either** `max_batch`
/// requests for that layer are pending **or** the oldest pending request
/// has waited `max_wait`, whichever comes first. `max_batch = 1` degrades
/// to immediate per-request dispatch; `max_wait = 0` dispatches whatever
/// is pending on the next batcher wake-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Dispatch a layer's batch once this many requests are queued for it
    /// (≥ 1).
    pub max_batch: usize,
    /// Dispatch a layer's batch once its oldest request has waited this
    /// long, even if the batch is not full.
    pub max_wait: Duration,
    /// Capacity of the bounded request queue shared by all clients
    /// (≥ 1). `try_submit` fails with [`ServeError::QueueFull`] and
    /// `submit` blocks when it is full — this is the backpressure bound.
    pub queue_capacity: usize,
    /// Worker threads executing batches. `0` means auto: resolve from
    /// [`tie_tensor::parallel::num_threads`] (which honours the
    /// `set_num_threads` override and the `TIE_THREADS` environment
    /// variable), capped at 8.
    ///
    /// Serve workers are plain threads, distinct from the kernel pool in
    /// `tie_tensor::pool`: each worker's `matvec_batch_into` dispatches
    /// its stage GEMMs and transforms onto that shared pool, which is
    /// nesting-safe under this fan-out (see DESIGN.md §11.3 and
    /// `tests/pool_nested_serve.rs`).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 0,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for a zero `max_batch` or a zero
    /// `queue_capacity`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1".into()));
        }
        Ok(())
    }

    /// The actual worker-thread count: `workers`, or the
    /// `tie_tensor::parallel` resolution capped at 8 when `workers == 0`.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            tie_tensor::parallel::num_threads().clamp(1, 8)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
    }

    #[test]
    fn rejects_degenerate_knobs() {
        let cfg = ServeConfig { max_batch: 0, ..ServeConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = ServeConfig { queue_capacity: 0, ..ServeConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn worker_resolution() {
        let cfg = ServeConfig { workers: 3, ..ServeConfig::default() };
        assert_eq!(cfg.resolved_workers(), 3);
        let auto = ServeConfig { workers: 0, ..ServeConfig::default() };
        let w = auto.resolved_workers();
        assert!((1..=8).contains(&w));
    }
}
