//! Service configuration.

use crate::error::ServeError;
use std::time::Duration;

/// Tuning knobs of an [`crate::InferenceService`].
///
/// The two batching knobs implement the classic dynamic-batching contract:
/// a batch for a layer is dispatched as soon as **either** `max_batch`
/// requests for that layer are pending **or** the oldest pending request
/// has waited `max_wait`, whichever comes first. `max_batch = 1` degrades
/// to immediate per-request dispatch; `max_wait = 0` dispatches whatever
/// is pending on the next batcher wake-up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Dispatch a layer's batch once this many requests are queued for it
    /// (≥ 1).
    pub max_batch: usize,
    /// Dispatch a layer's batch once its oldest request has waited this
    /// long, even if the batch is not full.
    pub max_wait: Duration,
    /// Capacity of the bounded request queue shared by all clients
    /// (≥ 1). `try_submit` fails with [`ServeError::QueueFull`] and
    /// `submit` blocks when it is full — this is the backpressure bound.
    pub queue_capacity: usize,
    /// Worker threads executing batches. `0` means auto: resolve from
    /// [`tie_tensor::parallel::num_threads`] (which honours the
    /// `set_num_threads` override and the `TIE_THREADS` environment
    /// variable), capped at 8.
    ///
    /// Serve workers are plain threads, distinct from the kernel pool in
    /// `tie_tensor::pool`: each worker's `matvec_batch_into` dispatches
    /// its stage GEMMs and transforms onto that shared pool, which is
    /// nesting-safe under this fan-out (see DESIGN.md §11.3 and
    /// `tests/pool_nested_serve.rs`).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 16,
            max_wait: Duration::from_millis(2),
            queue_capacity: 1024,
            workers: 0,
        }
    }
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for a zero `max_batch` or a zero
    /// `queue_capacity`.
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::Config("max_batch must be >= 1".into()));
        }
        if self.queue_capacity == 0 {
            return Err(ServeError::Config("queue_capacity must be >= 1".into()));
        }
        Ok(())
    }

    /// The actual worker-thread count: `workers`, or the
    /// `tie_tensor::parallel` resolution capped at 8 when `workers == 0`.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            tie_tensor::parallel::num_threads().clamp(1, 8)
        }
    }
}

/// Tuning knobs of a [`crate::ShardedService`].
///
/// A sharded service is `shards × replicas` independent
/// [`crate::InferenceService`]s behind one consistent-hash router: each
/// shard owns the registry partition the [`crate::HashRing`] assigns to
/// it, and each of its replicas runs the full batching/backpressure/drain
/// discipline of a single service over that partition (bounded queue of
/// [`ServeConfig::queue_capacity`] per replica).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of shards the registry is partitioned into (≥ 1).
    pub shards: usize,
    /// Replicas per shard (≥ 1). Every replica of a shard holds the same
    /// partition; the router spreads load across them round-robin.
    pub replicas: usize,
    /// Ring points per shard on the [`crate::HashRing`] (≥ 1). More
    /// vnodes → more uniform key spread; 64 keeps shard load within a
    /// small factor of ideal (property-tested).
    pub vnodes: usize,
    /// Per-replica service configuration (batching knobs, queue bound,
    /// worker threads).
    pub replica: ServeConfig,
    /// How many bounded-backoff retry rounds
    /// [`crate::ShardedClient::submit`] performs when every replica of
    /// the target shard reports a full queue, before giving up with
    /// [`ServeError::QueueFull`]. `0` disables retrying.
    pub submit_retries: usize,
    /// Base backoff slept between retry rounds; round `k` (1-based)
    /// sleeps `k × retry_backoff` (linear backoff, bounded by
    /// `submit_retries`).
    pub retry_backoff: Duration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            replicas: 2,
            vnodes: 64,
            replica: ServeConfig::default(),
            submit_retries: 8,
            retry_backoff: Duration::from_micros(50),
        }
    }
}

impl ShardConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Config`] for zero `shards`, `replicas` or
    /// `vnodes`, or an invalid per-replica [`ServeConfig`].
    pub fn validate(&self) -> Result<(), ServeError> {
        if self.shards == 0 {
            return Err(ServeError::Config("shards must be >= 1".into()));
        }
        if self.replicas == 0 {
            return Err(ServeError::Config("replicas must be >= 1".into()));
        }
        if self.vnodes == 0 {
            return Err(ServeError::Config("vnodes must be >= 1".into()));
        }
        self.replica.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(ServeConfig::default().validate().is_ok());
        assert!(ShardConfig::default().validate().is_ok());
    }

    #[test]
    fn shard_config_rejects_degenerate_knobs() {
        for bad in [
            ShardConfig {
                shards: 0,
                ..ShardConfig::default()
            },
            ShardConfig {
                replicas: 0,
                ..ShardConfig::default()
            },
            ShardConfig {
                vnodes: 0,
                ..ShardConfig::default()
            },
            ShardConfig {
                replica: ServeConfig {
                    max_batch: 0,
                    ..ServeConfig::default()
                },
                ..ShardConfig::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_degenerate_knobs() {
        let cfg = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = ServeConfig {
            queue_capacity: 0,
            ..ServeConfig::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn worker_resolution() {
        let cfg = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        assert_eq!(cfg.resolved_workers(), 3);
        let auto = ServeConfig {
            workers: 0,
            ..ServeConfig::default()
        };
        let w = auto.resolved_workers();
        assert!((1..=8).contains(&w));
    }
}
