//! The shared engine registry: prepared engines keyed by layer name.
//!
//! Three backends coexist under one namespace: float [`CompactEngine`]s,
//! bit-accurate fixed-point [`QuantizedEngine`]s, and pipeline-parallel
//! [`PipelinedEngine`]s (which wrap either datapath) — a name maps to
//! exactly one of the three, and clients neither know nor care which
//! (same submit API, same `f64` responses; the quantized backends feed
//! the saturation counters in [`crate::ServiceStats`], the pipelined one
//! additionally feeds the `pipeline_*` occupancy/stall/handoff counters).
//!
//! Engines are stored behind [`Arc`] so the service, every client handle,
//! and every worker can hold the same prepared layer without copying the
//! unfolded cores or index maps. Both engine types are `Send + Sync`
//! (audited in their crates): the only mutable state is a `Mutex`-guarded
//! scratch workspace. Workers that want contention-free scratch clone the
//! engine (a clone shares nothing mutable — it starts with a fresh
//! workspace).

use crate::worker::WorkerEngine;
use std::collections::HashMap;
use std::sync::Arc;
use tie_core::{Activation, CompactEngine, DeploymentPlan, PipelineConfig, PlanBackend, Result};
use tie_sim::{PipelinedEngine, QuantConfig, QuantizedEngine};
use tie_tensor::TensorError;
use tie_tt::TtMatrix;

/// Layer-name → prepared-engine map handed to
/// [`crate::InferenceService::start`].
///
/// Cloning a registry clones only the `Arc` handles, never the engines —
/// the sharded layer leans on this to hand every replica of a shard its
/// own registry value over the same shared engines.
#[derive(Debug, Default, Clone)]
pub struct EngineRegistry {
    engines: HashMap<String, Arc<CompactEngine<f64>>>,
    quantized: HashMap<String, Arc<QuantizedEngine>>,
    pipelined: HashMap<String, Arc<PipelinedEngine>>,
}

impl EngineRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a float `engine` under `name`, replacing any previous
    /// entry (of either backend) with that name. Returns `self` for
    /// chaining.
    pub fn insert(&mut self, name: impl Into<String>, engine: CompactEngine<f64>) -> &mut Self {
        self.insert_shared(name, Arc::new(engine))
    }

    /// Registers a float `engine` under `name` with `activation` fused
    /// into its final-stage GEMM epilogue (so served responses come back
    /// post-activation without a separate output pass). Equivalent to
    /// `insert(name, engine.with_activation(activation))`.
    pub fn insert_with_activation(
        &mut self,
        name: impl Into<String>,
        engine: CompactEngine<f64>,
        activation: Activation,
    ) -> &mut Self {
        self.insert(name, engine.with_activation(activation))
    }

    /// Registers an already-shared float engine under `name`.
    pub fn insert_shared(
        &mut self,
        name: impl Into<String>,
        engine: Arc<CompactEngine<f64>>,
    ) -> &mut Self {
        let name = name.into();
        self.quantized.remove(&name);
        self.pipelined.remove(&name);
        self.engines.insert(name, engine);
        self
    }

    /// Registers a fixed-point `engine` under `name`, replacing any
    /// previous entry (of either backend) with that name. Requests to this
    /// layer run the bit-accurate TIE datapath and feed the
    /// `quant_*` counters in [`crate::ServiceStats`].
    pub fn insert_quantized(
        &mut self,
        name: impl Into<String>,
        engine: QuantizedEngine,
    ) -> &mut Self {
        self.insert_quantized_shared(name, Arc::new(engine))
    }

    /// Registers a fixed-point `engine` under `name` with `activation`
    /// fused into its final requantization epilogue (applied to the
    /// clipped 32-bit code before narrowing; saturation counters are
    /// unchanged). Equivalent to
    /// `insert_quantized(name, engine.with_activation(activation))`.
    pub fn insert_quantized_with_activation(
        &mut self,
        name: impl Into<String>,
        engine: QuantizedEngine,
        activation: Activation,
    ) -> &mut Self {
        self.insert_quantized(name, engine.with_activation(activation))
    }

    /// Registers an already-shared fixed-point engine under `name`.
    pub fn insert_quantized_shared(
        &mut self,
        name: impl Into<String>,
        engine: Arc<QuantizedEngine>,
    ) -> &mut Self {
        let name = name.into();
        self.engines.remove(&name);
        self.pipelined.remove(&name);
        self.quantized.insert(name, engine);
        self
    }

    /// Registers a pipeline-parallel `engine` under `name`, replacing any
    /// previous entry (of any backend) with that name. Requests to this
    /// layer stream through the engine's stage pipeline and feed the
    /// `pipeline_*` counters in [`crate::ServiceStats`] (plus the
    /// `quant_*` counters when the wrapped datapath is quantized).
    pub fn insert_pipelined(
        &mut self,
        name: impl Into<String>,
        engine: PipelinedEngine,
    ) -> &mut Self {
        self.insert_pipelined_shared(name, Arc::new(engine))
    }

    /// Registers an already-shared pipeline-parallel engine under `name`.
    pub fn insert_pipelined_shared(
        &mut self,
        name: impl Into<String>,
        engine: Arc<PipelinedEngine>,
    ) -> &mut Self {
        let name = name.into();
        self.engines.remove(&name);
        self.quantized.remove(&name);
        self.pipelined.insert(name, engine);
        self
    }

    /// Registers an engine built from a [`DeploymentPlan`] — the
    /// autotuner's artifact — over `matrix`, the compiled TT weights the
    /// plan describes. The plan's backend, pipeline cut depth, fused
    /// activation, and quant calibration margin all take effect:
    ///
    /// * `Float` + depth 1 → [`CompactEngine`],
    /// * `Quantized` + depth 1 → [`QuantizedEngine`] calibrated at the
    ///   plan's `quant_margin` over `quant` (pass
    ///   [`QuantConfig::default`] unless serving needs custom formats),
    /// * depth > 1 → either datapath wrapped in a [`PipelinedEngine`] at
    ///   the plan's `{pipeline_depth, micro_batch}`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an invalid plan or a
    /// `matrix` whose TT layout differs from the plan's shape (the plan
    /// would misdescribe the engine), and propagates construction errors.
    pub fn insert_from_plan(
        &mut self,
        plan: &DeploymentPlan,
        matrix: TtMatrix<f64>,
        quant: QuantConfig,
    ) -> Result<&mut Self> {
        plan.validate()?;
        if matrix.shape() != &plan.shape {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "matrix layout {:?}x{:?} ranks {:?} does not match plan `{}`",
                    matrix.shape().row_modes,
                    matrix.shape().col_modes,
                    matrix.shape().ranks,
                    plan.layer
                ),
            });
        }
        let pipe = PipelineConfig {
            depth: plan.pipeline_depth,
            micro_batch: plan.micro_batch,
        };
        match plan.backend {
            PlanBackend::Float => {
                let engine = CompactEngine::new(matrix)?.with_activation(plan.activation);
                if plan.is_pipelined() {
                    let wrapped = PipelinedEngine::float(&engine, pipe)?;
                    Ok(self.insert_pipelined(plan.layer.clone(), wrapped))
                } else {
                    Ok(self.insert(plan.layer.clone(), engine))
                }
            }
            PlanBackend::Quantized => {
                let engine =
                    QuantizedEngine::new(matrix, quant.with_probe_margin(plan.quant_margin))?
                        .with_activation(plan.activation);
                if plan.is_pipelined() {
                    let wrapped = PipelinedEngine::quantized(&engine, pipe)?;
                    Ok(self.insert_pipelined(plan.layer.clone(), wrapped))
                } else {
                    Ok(self.insert_quantized(plan.layer.clone(), engine))
                }
            }
        }
    }

    /// The shared float engine registered under `name` (`None` if the name
    /// is unregistered or quantized).
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<CompactEngine<f64>>> {
        self.engines.get(name).cloned()
    }

    /// The shared fixed-point engine registered under `name` (`None` if
    /// the name is unregistered or float).
    #[must_use]
    pub fn get_quantized(&self, name: &str) -> Option<Arc<QuantizedEngine>> {
        self.quantized.get(name).cloned()
    }

    /// The shared pipeline-parallel engine registered under `name`
    /// (`None` if the name is unregistered or sequential).
    #[must_use]
    pub fn get_pipelined(&self, name: &str) -> Option<Arc<PipelinedEngine>> {
        self.pipelined.get(name).cloned()
    }

    /// True if `name` is registered with the fixed-point backend (either
    /// the sequential quantized engine or a pipelined wrapper around one).
    #[must_use]
    pub fn is_quantized(&self, name: &str) -> bool {
        self.quantized.contains_key(name)
            || self.pipelined.get(name).is_some_and(|e| e.is_quantized())
    }

    /// True if `name` is registered with the pipeline-parallel backend.
    #[must_use]
    pub fn is_pipelined(&self, name: &str) -> bool {
        self.pipelined.contains_key(name)
    }

    /// `(rows M, cols N)` of the layer registered under `name`, either
    /// backend.
    #[must_use]
    pub fn dims(&self, name: &str) -> Option<(usize, usize)> {
        if let Some(e) = self.engines.get(name) {
            return Some((e.matrix().shape().num_rows(), e.matrix().shape().num_cols()));
        }
        if let Some(e) = self.quantized.get(name) {
            return Some((e.num_rows(), e.num_cols()));
        }
        self.pipelined
            .get(name)
            .map(|e| (e.num_rows(), e.num_cols()))
    }

    /// All registered layer names (every backend), sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .engines
            .keys()
            .chain(self.quantized.keys())
            .chain(self.pipelined.keys())
            .cloned()
            .collect();
        names.sort();
        names
    }

    /// Number of registered layers (every backend).
    #[must_use]
    pub fn len(&self) -> usize {
        self.engines.len() + self.quantized.len() + self.pipelined.len()
    }

    /// True if no layer is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty() && self.quantized.is_empty() && self.pipelined.is_empty()
    }

    /// One private (fresh-workspace) clone of every float engine, for a
    /// worker that wants to execute without contending on the shared
    /// scratch `Mutex`. TT compression is what makes this affordable: a
    /// cloned engine costs `num_params` weights plus the index vectors,
    /// orders of magnitude below the dense layer it represents.
    #[must_use]
    pub fn clone_engines(&self) -> HashMap<String, CompactEngine<f64>> {
        self.engines
            .iter()
            .map(|(name, e)| (name.clone(), (**e).clone()))
            .collect()
    }

    /// Partitions the registry into `parts` sub-registries by routing
    /// every layer name through the ring: layer `name` lands in partition
    /// `ring.shard_for(name)`. Engines are shared by `Arc`, so
    /// partitioning copies nothing but the map entries — each replica of
    /// the owning shard later takes its own private clones exactly like a
    /// single service's workers do.
    ///
    /// Partitions of shards that own no registered layer come back empty;
    /// the sharded service simply starts no replicas for them (a valid
    /// layer key can never route there — it would have been partitioned
    /// there in the first place).
    #[must_use]
    pub fn partition(&self, ring: &crate::HashRing) -> Vec<EngineRegistry> {
        let max_shard = ring.shards().iter().copied().max().unwrap_or(0);
        let mut parts: Vec<EngineRegistry> =
            (0..=max_shard).map(|_| EngineRegistry::new()).collect();
        for (name, engine) in &self.engines {
            parts[ring.shard_for(name)].insert_shared(name.clone(), Arc::clone(engine));
        }
        for (name, engine) in &self.quantized {
            parts[ring.shard_for(name)].insert_quantized_shared(name.clone(), Arc::clone(engine));
        }
        for (name, engine) in &self.pipelined {
            parts[ring.shard_for(name)].insert_pipelined_shared(name.clone(), Arc::clone(engine));
        }
        parts
    }

    /// Private clones of **every** engine, all backends, wrapped for the
    /// worker loop. A pipelined clone spawns its own `depth − 1` stage
    /// threads and channel slabs (sharing the immutable chain), so each
    /// worker streams its batches through a private pipeline with no
    /// cross-worker contention.
    #[must_use]
    pub(crate) fn worker_engines(&self) -> HashMap<String, WorkerEngine> {
        self.engines
            .iter()
            .map(|(name, e)| (name.clone(), WorkerEngine::Float((**e).clone())))
            .chain(
                self.quantized
                    .iter()
                    .map(|(name, e)| (name.clone(), WorkerEngine::Quantized((**e).clone()))),
            )
            .chain(
                self.pipelined
                    .iter()
                    .map(|(name, e)| (name.clone(), WorkerEngine::Pipelined((**e).clone()))),
            )
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tt::{TtMatrix, TtShape};

    fn engine(seed: u64) -> CompactEngine<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap()
    }

    #[test]
    fn insert_get_dims_names() {
        let mut reg = EngineRegistry::new();
        assert!(reg.is_empty());
        reg.insert("fc1", engine(1)).insert("fc0", engine(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["fc0".to_string(), "fc1".to_string()]);
        assert_eq!(reg.dims("fc1"), Some((6, 6)));
        assert!(reg.get("fc1").is_some());
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.dims("nope"), None);
    }

    #[test]
    fn shared_engine_is_the_same_allocation() {
        let mut reg = EngineRegistry::new();
        let shared = Arc::new(engine(3));
        reg.insert_shared("fc", Arc::clone(&shared));
        assert!(Arc::ptr_eq(&reg.get("fc").unwrap(), &shared));
    }

    #[test]
    fn quantized_and_float_share_one_namespace() {
        use tie_sim::QuantConfig;
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let q = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(10))
            .insert_quantized("qfc", q.clone());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["fc".to_string(), "qfc".to_string()]);
        assert_eq!(reg.dims("qfc"), Some((6, 6)));
        assert!(reg.is_quantized("qfc") && !reg.is_quantized("fc"));
        assert!(reg.get_quantized("qfc").is_some() && reg.get("qfc").is_none());
        // Re-registering a name under the other backend replaces it.
        reg.insert_quantized("fc", q);
        assert_eq!(reg.len(), 2);
        assert!(reg.is_quantized("fc") && reg.get("fc").is_none());
        assert_eq!(reg.worker_engines().len(), 2);
        assert_eq!(reg.clone_engines().len(), 0); // float-only view
    }

    #[test]
    fn pipelined_engines_share_the_namespace_and_partition() {
        use crate::HashRing;
        use tie_core::PipelineConfig;
        use tie_sim::PipelinedEngine;
        let float = engine(20);
        let pipelined = PipelinedEngine::float(&float, PipelineConfig::default()).unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(21))
            .insert_pipelined("pfc", pipelined.clone());
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["fc".to_string(), "pfc".to_string()]);
        assert_eq!(reg.dims("pfc"), Some((6, 6)));
        assert!(reg.is_pipelined("pfc") && !reg.is_pipelined("fc"));
        assert!(!reg.is_quantized("pfc"), "float pipeline is not quantized");
        assert!(reg.get_pipelined("pfc").is_some() && reg.get("pfc").is_none());
        // Re-registering a pipelined name as float replaces it.
        reg.insert("pfc", engine(22));
        assert_eq!(reg.len(), 2);
        assert!(!reg.is_pipelined("pfc") && reg.get("pfc").is_some());
        // And the other direction.
        reg.insert_pipelined("fc", pipelined);
        assert!(reg.is_pipelined("fc"));
        assert_eq!(reg.worker_engines().len(), 2);
        // Partitioning carries pipelined layers to their ring shards.
        let ring = HashRing::new(3, 32).unwrap();
        let parts = reg.partition(&ring);
        assert_eq!(parts.iter().map(EngineRegistry::len).sum::<usize>(), 2);
        let owner = &parts[ring.shard_for("fc")];
        assert!(Arc::ptr_eq(
            &owner.get_pipelined("fc").unwrap(),
            &reg.get_pipelined("fc").unwrap()
        ));
    }

    #[test]
    fn partition_routes_every_layer_to_its_ring_shard() {
        use crate::HashRing;
        let mut reg = EngineRegistry::new();
        for i in 0..12 {
            reg.insert(format!("fc{i}"), engine(i));
        }
        let ring = HashRing::new(4, 64).unwrap();
        let parts = reg.partition(&ring);
        assert_eq!(parts.len(), 4);
        assert_eq!(
            parts.iter().map(EngineRegistry::len).sum::<usize>(),
            reg.len()
        );
        for (s, part) in parts.iter().enumerate() {
            for name in part.names() {
                assert_eq!(ring.shard_for(&name), s, "{name} in wrong partition");
                // Arc-shared, not deep-copied.
                assert!(Arc::ptr_eq(
                    &part.get(&name).unwrap(),
                    &reg.get(&name).unwrap()
                ));
            }
        }
    }

    #[test]
    fn insert_with_activation_fuses_relu_into_the_served_engine() {
        let mut reg = EngineRegistry::new();
        reg.insert("plain", engine(30)).insert_with_activation(
            "relu",
            engine(30),
            Activation::Relu,
        );
        assert_eq!(reg.get("relu").unwrap().activation(), Activation::Relu);
        let x: Vec<f64> = (0..6).map(|i| (i as f64 - 3.0) * 0.7).collect();
        let mut y_plain = vec![0.0f64; 6];
        let mut y_relu = vec![0.0f64; 6];
        reg.get("plain")
            .unwrap()
            .matvec_into(&x, &mut y_plain)
            .unwrap();
        reg.get("relu")
            .unwrap()
            .matvec_into(&x, &mut y_relu)
            .unwrap();
        assert!(y_plain.iter().any(|&v| v < 0.0), "need a clipped output");
        for (r, p) in y_relu.iter().zip(&y_plain) {
            let want = if *p > 0.0 { *p } else { 0.0 };
            assert_eq!(r.to_bits(), want.to_bits());
        }

        // Quantized path: fused ReLU on the served fixed-point engine.
        use tie_sim::QuantConfig;
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let q = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        reg.insert_quantized_with_activation("qrelu", q, Activation::Relu);
        assert_eq!(
            reg.get_quantized("qrelu").unwrap().activation(),
            Activation::Relu
        );
    }

    #[test]
    fn insert_from_plan_constructs_every_backend_combination() {
        use tie_core::{DeploymentPlan, PlanBackend};
        use tie_sim::QuantConfig;
        use tie_tensor::linalg::SvdMethod;

        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(40);
        let matrix = TtMatrix::random(&mut rng, &shape, 0.5).unwrap();
        let plan = |name: &str, backend, depth| DeploymentPlan {
            layer: name.to_string(),
            shape: shape.clone(),
            svd: SvdMethod::Jacobi,
            backend,
            batch: 4,
            pipeline_depth: depth,
            micro_batch: 1,
            activation: Activation::Relu,
            quant_margin: 1.5,
            modeled_cycles_per_sample: 0.0,
        };

        let mut reg = EngineRegistry::new();
        reg.insert_from_plan(
            &plan("float", PlanBackend::Float, 1),
            matrix.clone(),
            QuantConfig::default(),
        )
        .unwrap()
        .insert_from_plan(
            &plan("quant", PlanBackend::Quantized, 1),
            matrix.clone(),
            QuantConfig::default(),
        )
        .unwrap()
        .insert_from_plan(
            &plan("float-pipe", PlanBackend::Float, 2),
            matrix.clone(),
            QuantConfig::default(),
        )
        .unwrap()
        .insert_from_plan(
            &plan("quant-pipe", PlanBackend::Quantized, 2),
            matrix.clone(),
            QuantConfig::default(),
        )
        .unwrap();

        assert_eq!(reg.len(), 4);
        assert_eq!(
            reg.get("float").unwrap().activation(),
            Activation::Relu,
            "plan epilogue must be fused"
        );
        assert!(reg.get_quantized("quant").is_some());
        assert!(reg.is_pipelined("float-pipe") && !reg.is_quantized("float-pipe"));
        assert!(reg.is_pipelined("quant-pipe") && reg.is_quantized("quant-pipe"));
        // The plan's margin reaches the calibration.
        let wide = DeploymentPlan {
            quant_margin: 3.0,
            ..plan("wide", PlanBackend::Quantized, 1)
        };
        reg.insert_from_plan(&wide, matrix.clone(), QuantConfig::default())
            .unwrap();
        let narrow = reg.get_quantized("quant").unwrap();
        let widened = reg.get_quantized("wide").unwrap();
        assert!(
            widened.stage_formats()[0].frac_bits() <= narrow.stage_formats()[0].frac_bits(),
            "wider margin can only cost fraction bits"
        );
        // A matrix that doesn't match the plan's layout is rejected.
        let other_shape = TtShape::uniform_rank(vec![3, 2], vec![2, 3], 2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let other = TtMatrix::random(&mut rng, &other_shape, 0.5).unwrap();
        assert!(reg
            .insert_from_plan(
                &plan("bad", PlanBackend::Float, 1),
                other,
                QuantConfig::default()
            )
            .is_err());
    }

    #[test]
    fn clone_engines_yields_private_copies() {
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(4));
        let clones = reg.clone_engines();
        assert_eq!(clones.len(), 1);
        // The clone computes the same results as the shared original.
        let x = vec![0.5f64; 6];
        let mut y_shared = vec![0.0f64; 6];
        let mut y_clone = vec![0.0f64; 6];
        reg.get("fc")
            .unwrap()
            .matvec_into(&x, &mut y_shared)
            .unwrap();
        clones["fc"].matvec_into(&x, &mut y_clone).unwrap();
        assert_eq!(y_shared, y_clone);
    }
}
