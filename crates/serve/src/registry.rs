//! The shared engine registry: prepared [`CompactEngine`]s keyed by layer
//! name.
//!
//! Engines are stored behind [`Arc`] so the service, every client handle,
//! and every worker can hold the same prepared layer without copying the
//! unfolded cores or index maps. `CompactEngine` is `Send + Sync` (audited
//! in `tie-core`): the only mutable state is its `Mutex`-guarded scratch
//! workspace. Workers that want contention-free scratch clone the engine
//! (a clone shares nothing mutable — it starts with a fresh workspace).

use std::collections::HashMap;
use std::sync::Arc;
use tie_core::CompactEngine;

/// Layer-name → prepared-engine map handed to
/// [`crate::InferenceService::start`].
#[derive(Debug, Default)]
pub struct EngineRegistry {
    engines: HashMap<String, Arc<CompactEngine<f64>>>,
}

impl EngineRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `engine` under `name`, replacing any previous entry with
    /// that name. Returns `self` for chaining.
    pub fn insert(&mut self, name: impl Into<String>, engine: CompactEngine<f64>) -> &mut Self {
        self.engines.insert(name.into(), Arc::new(engine));
        self
    }

    /// Registers an already-shared engine under `name`.
    pub fn insert_shared(
        &mut self,
        name: impl Into<String>,
        engine: Arc<CompactEngine<f64>>,
    ) -> &mut Self {
        self.engines.insert(name.into(), engine);
        self
    }

    /// The shared engine registered under `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<CompactEngine<f64>>> {
        self.engines.get(name).cloned()
    }

    /// `(rows M, cols N)` of the layer registered under `name`.
    #[must_use]
    pub fn dims(&self, name: &str) -> Option<(usize, usize)> {
        self.engines
            .get(name)
            .map(|e| (e.matrix().shape().num_rows(), e.matrix().shape().num_cols()))
    }

    /// All registered layer names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.engines.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of registered layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// True if no layer is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// One private (fresh-workspace) clone of every engine, for a worker
    /// that wants to execute without contending on the shared scratch
    /// `Mutex`. TT compression is what makes this affordable: a cloned
    /// engine costs `num_params` weights plus the index vectors, orders
    /// of magnitude below the dense layer it represents.
    #[must_use]
    pub fn clone_engines(&self) -> HashMap<String, CompactEngine<f64>> {
        self.engines
            .iter()
            .map(|(name, e)| (name.clone(), (**e).clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tt::{TtMatrix, TtShape};

    fn engine(seed: u64) -> CompactEngine<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap()
    }

    #[test]
    fn insert_get_dims_names() {
        let mut reg = EngineRegistry::new();
        assert!(reg.is_empty());
        reg.insert("fc1", engine(1)).insert("fc0", engine(2));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.names(), vec!["fc0".to_string(), "fc1".to_string()]);
        assert_eq!(reg.dims("fc1"), Some((6, 6)));
        assert!(reg.get("fc1").is_some());
        assert!(reg.get("nope").is_none());
        assert_eq!(reg.dims("nope"), None);
    }

    #[test]
    fn shared_engine_is_the_same_allocation() {
        let mut reg = EngineRegistry::new();
        let shared = Arc::new(engine(3));
        reg.insert_shared("fc", Arc::clone(&shared));
        assert!(Arc::ptr_eq(&reg.get("fc").unwrap(), &shared));
    }

    #[test]
    fn clone_engines_yields_private_copies() {
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine(4));
        let clones = reg.clone_engines();
        assert_eq!(clones.len(), 1);
        // The clone computes the same results as the shared original.
        let x = vec![0.5f64; 6];
        let mut y_shared = vec![0.0f64; 6];
        let mut y_clone = vec![0.0f64; 6];
        reg.get("fc").unwrap().matvec_into(&x, &mut y_shared).unwrap();
        clones["fc"].matvec_into(&x, &mut y_clone).unwrap();
        assert_eq!(y_shared, y_clone);
    }
}
