//! The dynamic batcher: one thread assembling per-layer batches.
//!
//! ## State machine
//!
//! The batcher owns the request queue's receiving end and a map of
//! per-layer *lanes* (pending requests + the time the lane started
//! forming). Each loop iteration:
//!
//! 1. **Flush expired lanes** — any lane that has been forming for
//!    `max_wait` is dispatched (cause `Deadline`). Doing this *before*
//!    blocking guarantees deadline dispatch even under continuous load,
//!    where `recv` would otherwise always return a message first. The
//!    deadline counts from lane formation, not request submission, so a
//!    backlog in the request queue cannot pre-expire every batch.
//! 2. **Wait** — block on the queue until the earliest lane deadline
//!    (or indefinitely if nothing is pending).
//! 3. **Handle** — a new request joins its lane; a lane reaching
//!    `max_batch` dispatches immediately (cause `Full`). Everything
//!    already waiting in the queue is drained greedily before deadlines
//!    are re-checked, so lanes fill to `max_batch` under backlog. The
//!    `Shutdown` sentinel drains whatever raced into the queue behind
//!    it, flushes all lanes (cause `Drain`), and exits. A disconnected
//!    queue (every sender dropped) behaves like `Shutdown`.
//!
//! Dispatch sends the batch over a bounded channel to the worker pool;
//! when workers lag, that send blocks and the backpressure propagates
//! naturally to the request queue and from there to `submit` callers.

use crate::request::Request;
use crate::stats::{DispatchCause, StatsCore};
use std::collections::HashMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What travels through the request queue.
#[derive(Debug)]
pub(crate) enum Msg {
    /// An accepted, validated request.
    Request(Request),
    /// Shutdown sentinel: drain and exit.
    Shutdown,
}

/// A dispatched unit of work: all requests share one layer and execute as
/// one `matvec_batch_into` call.
#[derive(Debug)]
pub(crate) struct Batch {
    pub(crate) layer: String,
    pub(crate) requests: Vec<Request>,
}

/// Pending requests for one layer.
struct Lane {
    requests: Vec<Request>,
    /// When the lane started forming (first request entered an empty
    /// lane). The `max_wait` deadline counts from here, *not* from the
    /// request's submit time: under backlog the queue wait alone exceeds
    /// any reasonable `max_wait`, and a submit-time deadline would arrive
    /// pre-expired and degenerate every batch to size 1.
    formed_at: Instant,
}

struct Batcher {
    lanes: HashMap<String, Lane>,
    batch_tx: SyncSender<Batch>,
    max_batch: usize,
    max_wait: Duration,
    stats: Arc<StatsCore>,
}

impl Batcher {
    fn enqueue(&mut self, req: Request) {
        let name = req.layer.clone();
        let lane = self.lanes.entry(name.clone()).or_insert_with(|| Lane {
            requests: Vec::new(),
            formed_at: Instant::now(),
        });
        if lane.requests.is_empty() {
            lane.formed_at = Instant::now();
        }
        lane.requests.push(req);
        if lane.requests.len() >= self.max_batch {
            self.dispatch(&name, DispatchCause::Full);
        }
    }

    fn dispatch(&mut self, layer: &str, cause: DispatchCause) {
        if let Some(lane) = self.lanes.remove(layer) {
            self.stats.record_batch(lane.requests.len(), cause);
            // A failed send (worker channel torn down) drops the batch;
            // each Request's Drop then answers ShuttingDown, so no caller
            // hangs.
            let _ = self.batch_tx.send(Batch {
                layer: layer.to_string(),
                requests: lane.requests,
            });
        }
    }

    /// Flushes every lane that has been forming for at least `max_wait`.
    fn flush_expired(&mut self, now: Instant) {
        let expired: Vec<String> = self
            .lanes
            .iter()
            .filter(|(_, l)| now.duration_since(l.formed_at) >= self.max_wait)
            .map(|(k, _)| k.clone())
            .collect();
        for layer in expired {
            self.dispatch(&layer, DispatchCause::Deadline);
        }
    }

    fn flush_all(&mut self, cause: DispatchCause) {
        let all: Vec<String> = self.lanes.keys().cloned().collect();
        for layer in all {
            self.dispatch(&layer, cause);
        }
    }

    /// Earliest `formed_at + max_wait` over all lanes.
    fn next_deadline(&self) -> Option<Instant> {
        self.lanes
            .values()
            .map(|l| l.formed_at + self.max_wait)
            .min()
    }
}

/// Batcher thread body. Runs until the `Shutdown` sentinel arrives or
/// every queue sender is dropped; either way all pending work is flushed
/// to the workers before returning (graceful drain).
pub(crate) fn run_batcher(
    req_rx: Receiver<Msg>,
    batch_tx: SyncSender<Batch>,
    max_batch: usize,
    max_wait: Duration,
    stats: Arc<StatsCore>,
) {
    let mut b = Batcher {
        lanes: HashMap::new(),
        batch_tx,
        max_batch,
        max_wait,
        stats,
    };
    loop {
        b.flush_expired(Instant::now());
        let msg = match b.next_deadline() {
            Some(deadline) => {
                let wait = deadline.saturating_duration_since(Instant::now());
                match req_rx.recv_timeout(wait) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue, // flush at loop top
                    Err(RecvTimeoutError::Disconnected) => Msg::Shutdown,
                }
            }
            None => match req_rx.recv() {
                Ok(m) => m,
                Err(_) => Msg::Shutdown,
            },
        };
        // Greedily drain everything already waiting in the queue before
        // re-checking deadlines: under backlog this is what lets lanes
        // actually fill to `max_batch` instead of flushing one request
        // per loop iteration.
        let mut next = Some(msg);
        while let Some(m) = next.take() {
            match m {
                Msg::Request(req) => {
                    b.enqueue(req);
                    next = req_rx.try_recv().ok();
                }
                Msg::Shutdown => {
                    // Requests that raced into the queue behind the
                    // sentinel are still honoured.
                    while let Ok(m) = req_rx.try_recv() {
                        if let Msg::Request(req) = m {
                            b.enqueue(req);
                        }
                    }
                    b.flush_all(DispatchCause::Drain);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn mk_request(layer: &str, stats: &Arc<StatsCore>) -> Request {
        let (req, ticket) = Request::new(layer.into(), vec![0.0], Arc::clone(stats));
        std::mem::forget(ticket); // tests only observe batches, not responses
        req
    }

    fn spawn_batcher(
        max_batch: usize,
        max_wait: Duration,
        stats: Arc<StatsCore>,
    ) -> (
        SyncSender<Msg>,
        Receiver<Batch>,
        std::thread::JoinHandle<()>,
    ) {
        let (req_tx, req_rx) = sync_channel(64);
        let (batch_tx, batch_rx) = sync_channel(64);
        let handle =
            std::thread::spawn(move || run_batcher(req_rx, batch_tx, max_batch, max_wait, stats));
        (req_tx, batch_rx, handle)
    }

    #[test]
    fn full_batch_dispatches_without_waiting() {
        let stats = Arc::new(StatsCore::new());
        let (tx, rx, handle) = spawn_batcher(3, Duration::from_secs(60), Arc::clone(&stats));
        for _ in 0..3 {
            tx.send(Msg::Request(mk_request("fc", &stats))).unwrap();
        }
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.layer, "fc");
        assert_eq!(batch.requests.len(), 3);
        tx.send(Msg::Shutdown).unwrap();
        handle.join().unwrap();
        let s = stats.snapshot();
        assert_eq!((s.batches, s.full_batches), (1, 1));
    }

    #[test]
    fn deadline_dispatches_partial_batch() {
        let stats = Arc::new(StatsCore::new());
        let (tx, rx, handle) = spawn_batcher(64, Duration::from_millis(5), Arc::clone(&stats));
        tx.send(Msg::Request(mk_request("fc", &stats))).unwrap();
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.requests.len(), 1);
        tx.send(Msg::Shutdown).unwrap();
        handle.join().unwrap();
        assert_eq!(stats.snapshot().deadline_batches, 1);
    }

    #[test]
    fn layers_batch_independently() {
        let stats = Arc::new(StatsCore::new());
        let (tx, rx, handle) = spawn_batcher(2, Duration::from_secs(60), Arc::clone(&stats));
        tx.send(Msg::Request(mk_request("a", &stats))).unwrap();
        tx.send(Msg::Request(mk_request("b", &stats))).unwrap();
        tx.send(Msg::Request(mk_request("a", &stats))).unwrap();
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.layer, "a");
        assert_eq!(batch.requests.len(), 2);
        // "b" is still pending; shutdown drains it.
        tx.send(Msg::Shutdown).unwrap();
        let drained = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(drained.layer, "b");
        assert_eq!(drained.requests.len(), 1);
        handle.join().unwrap();
        assert_eq!(stats.snapshot().drain_batches, 1);
    }

    #[test]
    fn disconnect_acts_as_shutdown() {
        let stats = Arc::new(StatsCore::new());
        let (tx, rx, handle) = spawn_batcher(8, Duration::from_secs(60), Arc::clone(&stats));
        tx.send(Msg::Request(mk_request("fc", &stats))).unwrap();
        drop(tx);
        let batch = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(batch.requests.len(), 1);
        handle.join().unwrap();
    }

    #[test]
    fn shutdown_honours_racing_requests_behind_sentinel() {
        let stats = Arc::new(StatsCore::new());
        let (req_tx, req_rx) = sync_channel(64);
        let (batch_tx, batch_rx) = sync_channel(64);
        // Enqueue request, sentinel, request *before* the batcher runs.
        req_tx.send(Msg::Request(mk_request("fc", &stats))).unwrap();
        req_tx.send(Msg::Shutdown).unwrap();
        req_tx.send(Msg::Request(mk_request("fc", &stats))).unwrap();
        let stats2 = Arc::clone(&stats);
        let handle = std::thread::spawn(move || {
            run_batcher(req_rx, batch_tx, 64, Duration::from_secs(60), stats2)
        });
        let batch = batch_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(
            batch.requests.len(),
            2,
            "the post-sentinel request is honoured"
        );
        handle.join().unwrap();
    }
}
