//! Service counters: lock-free recording, consistent snapshots.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Why a batch left the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DispatchCause {
    /// `max_batch` requests were pending.
    Full,
    /// The oldest pending request hit the `max_wait` deadline.
    Deadline,
    /// Shutdown drain.
    Drain,
}

/// Shared atomic counters. Workers and the batcher record into this;
/// [`StatsCore::snapshot`] reads it out as a [`ServiceStats`].
#[derive(Debug)]
pub(crate) struct StatsCore {
    started: Instant,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    full_batches: AtomicU64,
    deadline_batches: AtomicU64,
    drain_batches: AtomicU64,
    batched_requests: AtomicU64,
    latency_ns_sum: AtomicU64,
    latency_ns_max: AtomicU64,
    quant_outputs: AtomicU64,
    quant_acc_saturations: AtomicU64,
    quant_out_saturations: AtomicU64,
    bytes_moved: AtomicU64,
    transform_elided_bytes: AtomicU64,
    pipeline_batches: AtomicU64,
    pipeline_chunks: AtomicU64,
    pipeline_stage_chunks: AtomicU64,
    pipeline_handoffs: AtomicU64,
    pipeline_send_stalls: AtomicU64,
    pipeline_recv_stalls: AtomicU64,
}

impl StatsCore {
    pub(crate) fn new() -> Self {
        StatsCore {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            full_batches: AtomicU64::new(0),
            deadline_batches: AtomicU64::new(0),
            drain_batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            latency_ns_sum: AtomicU64::new(0),
            latency_ns_max: AtomicU64::new(0),
            quant_outputs: AtomicU64::new(0),
            quant_acc_saturations: AtomicU64::new(0),
            quant_out_saturations: AtomicU64::new(0),
            bytes_moved: AtomicU64::new(0),
            transform_elided_bytes: AtomicU64::new(0),
            pipeline_batches: AtomicU64::new(0),
            pipeline_chunks: AtomicU64::new(0),
            pipeline_stage_chunks: AtomicU64::new(0),
            pipeline_handoffs: AtomicU64::new(0),
            pipeline_send_stalls: AtomicU64::new(0),
            pipeline_recv_stalls: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, occupancy: usize, cause: DispatchCause) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        let counter = match cause {
            DispatchCause::Full => &self.full_batches,
            DispatchCause::Deadline => &self.deadline_batches,
            DispatchCause::Drain => &self.drain_batches,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_response(&self, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.latency_ns_sum.fetch_add(ns, Ordering::Relaxed);
        self.latency_ns_max.fetch_max(ns, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one quantized batch's saturation report into the counters.
    pub(crate) fn record_quant(&self, outputs: u64, acc_saturations: u64, out_saturations: u64) {
        self.quant_outputs.fetch_add(outputs, Ordering::Relaxed);
        self.quant_acc_saturations
            .fetch_add(acc_saturations, Ordering::Relaxed);
        self.quant_out_saturations
            .fetch_add(out_saturations, Ordering::Relaxed);
    }

    /// Folds one batch's copy-traffic accounting into the counters:
    /// `bytes_moved` actually copied (input preparation), and
    /// `transform_elided_bytes` of permutation traffic the fused write
    /// epilogues avoided.
    pub(crate) fn record_traffic(&self, bytes_moved: u64, transform_elided_bytes: u64) {
        self.bytes_moved.fetch_add(bytes_moved, Ordering::Relaxed);
        self.transform_elided_bytes
            .fetch_add(transform_elided_bytes, Ordering::Relaxed);
    }

    /// Folds one pipelined batch's scheduling telemetry into the
    /// counters. `stage_chunks` is the summed per-stage occupancy
    /// (`chunks × depth` for this run), so the exact reconciliation
    /// `pipeline_stage_chunks == pipeline_chunks + pipeline_handoffs`
    /// holds layer-depth-independently.
    pub(crate) fn record_pipeline(
        &self,
        chunks: u64,
        stage_chunks: u64,
        handoffs: u64,
        send_stalls: u64,
        recv_stalls: u64,
    ) {
        self.pipeline_batches.fetch_add(1, Ordering::Relaxed);
        self.pipeline_chunks.fetch_add(chunks, Ordering::Relaxed);
        self.pipeline_stage_chunks
            .fetch_add(stage_chunks, Ordering::Relaxed);
        self.pipeline_handoffs
            .fetch_add(handoffs, Ordering::Relaxed);
        self.pipeline_send_stalls
            .fetch_add(send_stalls, Ordering::Relaxed);
        self.pipeline_recv_stalls
            .fetch_add(recv_stalls, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> ServiceStats {
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            full_batches: self.full_batches.load(Ordering::Relaxed),
            deadline_batches: self.deadline_batches.load(Ordering::Relaxed),
            drain_batches: self.drain_batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            latency_ns_sum: self.latency_ns_sum.load(Ordering::Relaxed),
            latency_ns_max: self.latency_ns_max.load(Ordering::Relaxed),
            quant_outputs: self.quant_outputs.load(Ordering::Relaxed),
            quant_acc_saturations: self.quant_acc_saturations.load(Ordering::Relaxed),
            quant_out_saturations: self.quant_out_saturations.load(Ordering::Relaxed),
            bytes_moved: self.bytes_moved.load(Ordering::Relaxed),
            transform_elided_bytes: self.transform_elided_bytes.load(Ordering::Relaxed),
            pipeline_batches: self.pipeline_batches.load(Ordering::Relaxed),
            pipeline_chunks: self.pipeline_chunks.load(Ordering::Relaxed),
            pipeline_stage_chunks: self.pipeline_stage_chunks.load(Ordering::Relaxed),
            pipeline_handoffs: self.pipeline_handoffs.load(Ordering::Relaxed),
            pipeline_send_stalls: self.pipeline_send_stalls.load(Ordering::Relaxed),
            pipeline_recv_stalls: self.pipeline_recv_stalls.load(Ordering::Relaxed),
            elapsed: self.started.elapsed(),
        }
    }
}

/// Router-side counters of one shard: lock-free recording by every
/// [`crate::ShardedClient`], snapshot into [`ShardStats`].
#[derive(Debug, Default)]
pub(crate) struct RouteCore {
    routed: AtomicU64,
    retried: AtomicU64,
    rejected: AtomicU64,
    drained: AtomicU64,
}

impl RouteCore {
    pub(crate) fn record_routed(&self) {
        self.routed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retry(&self) {
        self.retried.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_drained(&self) {
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self, shard: usize, replicas: Vec<ServiceStats>) -> ShardStats {
        ShardStats {
            shard,
            routed: self.routed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            drained: self.drained.load(Ordering::Relaxed),
            replicas,
        }
    }
}

/// Per-shard accounting of a [`crate::ShardedService`]: the router's
/// counters for this shard plus one [`ServiceStats`] per replica that ever
/// served it (drained/killed replicas keep their final snapshot, so the
/// shard's history always adds up).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard id (ring position).
    pub shard: usize,
    /// Requests the router successfully handed to one of this shard's
    /// replica queues. At quiescence `routed == service().submitted`.
    pub routed: u64,
    /// Bounded-backoff retry rounds the router performed because every
    /// replica reported a full queue.
    pub retried: u64,
    /// Submissions the router gave up on after exhausting its retry
    /// budget (surfaced to the caller as `QueueFull`).
    pub rejected: u64,
    /// Submissions that failed fast because every replica of this shard
    /// was draining or retired (surfaced as `ShardUnavailable`).
    pub drained: u64,
    /// One snapshot per replica, in registration order: live replicas
    /// first at their creation slots, retired replicas retain their final
    /// counters.
    pub replicas: Vec<ServiceStats>,
}

impl ShardStats {
    /// The shard's replica counters summed into one [`ServiceStats`].
    #[must_use]
    pub fn service(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for r in &self.replicas {
            total.absorb(r);
        }
        total
    }
}

/// A point-in-time snapshot of a whole [`crate::ShardedService`]:
/// [`ShardStats`] per shard plus the derived global view.
///
/// Two invariants hold after a clean shutdown (asserted by the stress and
/// chaos suites):
///
/// 1. per shard, `routed == service().submitted` and
///    `submitted == completed + failed` — the router hands a request to
///    exactly one replica queue, and every accepted request resolves
///    exactly once;
/// 2. the global view is the exact sum of the per-shard views — no
///    counter is double-reported or dropped in aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// Per-shard accounting, indexed by shard id.
    pub shards: Vec<ShardStats>,
}

impl ShardedStats {
    /// All replica counters of all shards summed into one
    /// [`ServiceStats`].
    #[must_use]
    pub fn global(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for shard in &self.shards {
            total.absorb(&shard.service());
        }
        total
    }

    /// Total requests routed into replica queues.
    #[must_use]
    pub fn routed(&self) -> u64 {
        self.shards.iter().map(|s| s.routed).sum()
    }

    /// Total bounded-backoff retry rounds.
    #[must_use]
    pub fn retried(&self) -> u64 {
        self.shards.iter().map(|s| s.retried).sum()
    }

    /// Total submissions rejected after retry exhaustion.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.shards.iter().map(|s| s.rejected).sum()
    }

    /// Total submissions failed fast on a draining shard.
    #[must_use]
    pub fn drained(&self) -> u64 {
        self.shards.iter().map(|s| s.drained).sum()
    }
}

/// A point-in-time snapshot of the service counters
/// ([`crate::InferenceService::stats`]).
///
/// Accounting invariant (asserted by the stress suite): every request
/// whose submit succeeded ends up in exactly one of `completed` or
/// `failed`, so after a clean shutdown `submitted == completed + failed`.
/// `rejected` counts `try_submit` calls that never entered the queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// `try_submit` calls bounced by backpressure.
    pub rejected: u64,
    /// Responses delivered (or ready for pickup) with a result.
    pub completed: u64,
    /// Accepted requests that were answered with an error (including
    /// tear-down during shutdown races).
    pub failed: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Batches dispatched because `max_batch` was reached.
    pub full_batches: u64,
    /// Batches dispatched because `max_wait` expired.
    pub deadline_batches: u64,
    /// Batches flushed by the shutdown drain.
    pub drain_batches: u64,
    /// Total requests over all dispatched batches.
    pub batched_requests: u64,
    /// Sum of per-request latencies (submit → response), nanoseconds.
    pub latency_ns_sum: u64,
    /// Maximum per-request latency, nanoseconds.
    pub latency_ns_max: u64,
    /// Fixed-point stage-GEMM outputs produced by quantized-backend
    /// batches (zero when only float engines are registered).
    pub quant_outputs: u64,
    /// Quantized outputs whose 24-bit accumulator saturated
    /// mid-accumulation (see `tie_quant::QMatmulReport`).
    pub quant_acc_saturations: u64,
    /// Quantized outputs clipped during the final 16-bit requantization.
    pub quant_out_saturations: u64,
    /// Activation bytes actually copied across all executed batches — the
    /// Eqn. (8) input preparation, the one permutation with no producing
    /// GEMM to fuse into.
    pub bytes_moved: u64,
    /// Bytes of inter-stage Transform and output-assembly traffic the
    /// fused GEMM write epilogues eliminated across all executed batches
    /// (what the legacy pipeline would have re-copied).
    pub transform_elided_bytes: u64,
    /// Batches executed by a pipelined backend (zero when only sequential
    /// engines are registered).
    pub pipeline_batches: u64,
    /// Micro-batch chunks streamed through pipelined layers (counted once
    /// per chunk, not per stage).
    pub pipeline_chunks: u64,
    /// Summed per-stage occupancy in chunk units: every pipeline stage's
    /// chunk executions. Exact reconciliation against the channel
    /// counters, regardless of per-layer depth:
    /// `pipeline_stage_chunks == pipeline_chunks + pipeline_handoffs`
    /// (each chunk runs once on the first stage and once more per
    /// boundary it crosses).
    pub pipeline_stage_chunks: u64,
    /// Chunk handoffs across pipeline cut boundaries — each one a `V'_h`
    /// slab streamed downstream (`chunks × (depth − 1)` per batch).
    pub pipeline_handoffs: u64,
    /// Handoffs where the producer stalled waiting for a recycled slab
    /// (downstream backpressure).
    pub pipeline_send_stalls: u64,
    /// Handoffs where the consumer stalled waiting for the producer
    /// (upstream starvation).
    pub pipeline_recv_stalls: u64,
    /// Wall-clock time since the service started.
    pub elapsed: Duration,
}

impl ServiceStats {
    /// Folds `other` into `self`: counters and latency sums add, latency
    /// maxima and `elapsed` take the max. This is the aggregation the
    /// sharded layer uses to roll replica snapshots up into per-shard and
    /// global views ([`ShardStats::service`], [`ShardedStats::global`]),
    /// so `absorb` preserves the accounting invariant: if both operands
    /// satisfy `submitted == completed + failed`, so does the sum.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.submitted += other.submitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.batches += other.batches;
        self.full_batches += other.full_batches;
        self.deadline_batches += other.deadline_batches;
        self.drain_batches += other.drain_batches;
        self.batched_requests += other.batched_requests;
        self.latency_ns_sum += other.latency_ns_sum;
        self.latency_ns_max = self.latency_ns_max.max(other.latency_ns_max);
        self.quant_outputs += other.quant_outputs;
        self.quant_acc_saturations += other.quant_acc_saturations;
        self.quant_out_saturations += other.quant_out_saturations;
        self.bytes_moved += other.bytes_moved;
        self.transform_elided_bytes += other.transform_elided_bytes;
        self.pipeline_batches += other.pipeline_batches;
        self.pipeline_chunks += other.pipeline_chunks;
        self.pipeline_stage_chunks += other.pipeline_stage_chunks;
        self.pipeline_handoffs += other.pipeline_handoffs;
        self.pipeline_send_stalls += other.pipeline_send_stalls;
        self.pipeline_recv_stalls += other.pipeline_recv_stalls;
        self.elapsed = self.elapsed.max(other.elapsed);
    }

    /// Mean requests per dispatched batch (`0` before the first batch).
    #[must_use]
    pub fn mean_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Mean submit→response latency (`0` before the first response).
    #[must_use]
    pub fn mean_latency(&self) -> Duration {
        self.latency_ns_sum
            .checked_div(self.completed)
            .map_or(Duration::ZERO, Duration::from_nanos)
    }

    /// Maximum submit→response latency.
    #[must_use]
    pub fn max_latency(&self) -> Duration {
        Duration::from_nanos(self.latency_ns_max)
    }

    /// Completed requests per second of service lifetime.
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }

    /// Accepted requests not yet answered.
    #[must_use]
    pub fn in_flight(&self) -> u64 {
        self.submitted.saturating_sub(self.completed + self.failed)
    }

    /// Fraction of quantized stage-GEMM outputs that saturated anywhere in
    /// the datapath (`0` when no quantized batch ran). A persistently
    /// nonzero rate means the one-shot calibration no longer covers the
    /// live traffic — re-load the layer with fresh probes or a wider
    /// margin.
    /// Fraction of the pipeline's copy traffic the fused Transform
    /// eliminated: `elided / (elided + moved)` (`0` before any batch).
    /// The legacy pipeline would have copied both terms; the fused one
    /// only copies `bytes_moved`.
    #[must_use]
    pub fn transform_elided_fraction(&self) -> f64 {
        let total = self.transform_elided_bytes + self.bytes_moved;
        if total == 0 {
            0.0
        } else {
            self.transform_elided_bytes as f64 / total as f64
        }
    }

    /// Fraction of pipeline handoffs where either side stalled (`0`
    /// before any pipelined batch). High send-stall rates mean the cut
    /// plan's downstream runs are the bottleneck; high recv-stall rates
    /// mean the upstream runs are.
    #[must_use]
    pub fn pipeline_stall_fraction(&self) -> f64 {
        if self.pipeline_handoffs == 0 {
            0.0
        } else {
            (self.pipeline_send_stalls + self.pipeline_recv_stalls) as f64
                / self.pipeline_handoffs as f64
        }
    }

    #[must_use]
    pub fn quant_saturation_rate(&self) -> f64 {
        if self.quant_outputs == 0 {
            0.0
        } else {
            (self.quant_acc_saturations + self.quant_out_saturations) as f64
                / self.quant_outputs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let core = StatsCore::new();
        core.record_submit();
        core.record_submit();
        core.record_reject();
        core.record_batch(2, DispatchCause::Full);
        core.record_response(Duration::from_micros(10));
        core.record_response(Duration::from_micros(30));
        let s = core.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.failed, 0);
        assert_eq!(s.batches, 1);
        assert_eq!(s.full_batches, 1);
        assert_eq!(s.deadline_batches, 0);
        assert!((s.mean_occupancy() - 2.0).abs() < 1e-12);
        assert_eq!(s.mean_latency(), Duration::from_micros(20));
        assert_eq!(s.max_latency(), Duration::from_micros(30));
        assert_eq!(s.in_flight(), 0);
        assert!(s.throughput() > 0.0);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = StatsCore::new().snapshot();
        assert_eq!(s.mean_occupancy(), 0.0);
        assert_eq!(s.mean_latency(), Duration::ZERO);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn quant_counters_accumulate() {
        let core = StatsCore::new();
        assert_eq!(core.snapshot().quant_saturation_rate(), 0.0);
        core.record_quant(100, 2, 3);
        core.record_quant(100, 0, 0);
        let s = core.snapshot();
        assert_eq!(s.quant_outputs, 200);
        assert_eq!(s.quant_acc_saturations, 2);
        assert_eq!(s.quant_out_saturations, 3);
        assert!((s.quant_saturation_rate() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn traffic_counters_accumulate() {
        let core = StatsCore::new();
        assert_eq!(core.snapshot().transform_elided_fraction(), 0.0);
        core.record_traffic(100, 300);
        core.record_traffic(50, 150);
        let s = core.snapshot();
        assert_eq!(s.bytes_moved, 150);
        assert_eq!(s.transform_elided_bytes, 450);
        assert!((s.transform_elided_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_latency() {
        let core = StatsCore::new();
        core.record_submit();
        core.record_response(Duration::from_micros(10));
        let a = core.snapshot();
        let core2 = StatsCore::new();
        core2.record_submit();
        core2.record_submit();
        core2.record_response(Duration::from_micros(40));
        core2.record_failure();
        let b = core2.snapshot();
        let mut total = ServiceStats::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.submitted, 3);
        assert_eq!(total.completed, 2);
        assert_eq!(total.failed, 1);
        assert_eq!(total.submitted, total.completed + total.failed);
        assert_eq!(total.max_latency(), Duration::from_micros(40));
        assert_eq!(total.latency_ns_sum, a.latency_ns_sum + b.latency_ns_sum);
        assert_eq!(total.elapsed, a.elapsed.max(b.elapsed));
    }

    #[test]
    fn route_core_snapshots_into_shard_stats() {
        let route = RouteCore::default();
        route.record_routed();
        route.record_routed();
        route.record_retry();
        route.record_rejected();
        route.record_drained();
        let core = StatsCore::new();
        core.record_submit();
        core.record_submit();
        core.record_response(Duration::from_micros(3));
        core.record_response(Duration::from_micros(5));
        let shard = route.snapshot(2, vec![core.snapshot()]);
        assert_eq!((shard.shard, shard.routed, shard.retried), (2, 2, 1));
        assert_eq!((shard.rejected, shard.drained), (1, 1));
        assert_eq!(shard.service().submitted, 2);
        assert_eq!(shard.routed, shard.service().submitted);
    }

    #[test]
    fn sharded_stats_global_is_exact_sum_of_shards() {
        let mk = |routed: u64, submitted: u64| {
            let route = RouteCore::default();
            for _ in 0..routed {
                route.record_routed();
            }
            let core = StatsCore::new();
            for _ in 0..submitted {
                core.record_submit();
                core.record_response(Duration::from_micros(1));
            }
            route.snapshot(0, vec![core.snapshot()])
        };
        let stats = ShardedStats {
            shards: vec![mk(3, 3), mk(5, 5)],
        };
        assert_eq!(stats.routed(), 8);
        assert_eq!(stats.global().submitted, 8);
        assert_eq!(stats.global().completed, 8);
        assert_eq!(
            stats.global().submitted,
            stats
                .shards
                .iter()
                .map(|s| s.service().submitted)
                .sum::<u64>()
        );
    }

    #[test]
    fn pipeline_counters_accumulate_and_reconcile() {
        let core = StatsCore::new();
        assert_eq!(core.snapshot().pipeline_stall_fraction(), 0.0);
        // Depth-3 run of 8 chunks, then a depth-2 run of 4 chunks.
        core.record_pipeline(8, 24, 16, 3, 2);
        core.record_pipeline(4, 8, 4, 0, 1);
        let s = core.snapshot();
        assert_eq!(s.pipeline_batches, 2);
        assert_eq!(s.pipeline_chunks, 12);
        assert_eq!(s.pipeline_stage_chunks, 32);
        assert_eq!(s.pipeline_handoffs, 20);
        // The depth-independent reconciliation invariant.
        assert_eq!(
            s.pipeline_stage_chunks,
            s.pipeline_chunks + s.pipeline_handoffs
        );
        assert_eq!((s.pipeline_send_stalls, s.pipeline_recv_stalls), (3, 3));
        assert!((s.pipeline_stall_fraction() - 0.3).abs() < 1e-12);
        // absorb carries the pipeline counters.
        let mut total = ServiceStats::default();
        total.absorb(&s);
        total.absorb(&s);
        assert_eq!(total.pipeline_handoffs, 40);
        assert_eq!(
            total.pipeline_stage_chunks,
            total.pipeline_chunks + total.pipeline_handoffs
        );
    }

    #[test]
    fn cause_counters_split() {
        let core = StatsCore::new();
        core.record_batch(1, DispatchCause::Deadline);
        core.record_batch(3, DispatchCause::Drain);
        let s = core.snapshot();
        assert_eq!(
            (s.full_batches, s.deadline_batches, s.drain_batches),
            (0, 1, 1)
        );
        assert_eq!(s.batched_requests, 4);
    }
}
