//! The in-flight request object and the caller-side [`Ticket`].

use crate::error::ServeError;
use crate::stats::StatsCore;
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One inference result, delivered through a [`Ticket`].
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The output vector `y = W x` (length `M`).
    pub output: Vec<f64>,
    /// How many requests shared the batch this one rode in.
    pub batch_size: usize,
    /// Submit → response latency as measured by the worker.
    pub latency: Duration,
}

/// An accepted request travelling from client to batcher to worker.
///
/// The responder is single-shot: [`Request::respond`] consumes it. If a
/// request is dropped before anyone responded (a channel torn down during
/// shutdown), the `Drop` impl delivers [`ServeError::ShuttingDown`] and
/// counts the request as failed — so the accounting invariant
/// `submitted == completed + failed` holds on every path.
#[derive(Debug)]
pub(crate) struct Request {
    pub(crate) layer: String,
    pub(crate) input: Vec<f64>,
    pub(crate) submitted_at: Instant,
    responder: Option<SyncSender<Result<Response, ServeError>>>,
    stats: Arc<StatsCore>,
}

impl Request {
    pub(crate) fn new(layer: String, input: Vec<f64>, stats: Arc<StatsCore>) -> (Self, Ticket) {
        // Buffer of 1: the worker's send never blocks even if the caller
        // has not reached `wait` yet (or never does).
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let req = Request {
            layer,
            input,
            submitted_at: Instant::now(),
            responder: Some(tx),
            stats,
        };
        (req, Ticket { rx })
    }

    /// Disarms a request that never entered the queue (the send failed),
    /// so its `Drop` neither answers nor counts a failure. The paired
    /// ticket is still held by the caller-side code and is simply dropped.
    pub(crate) fn defuse(mut self) {
        drop(self.responder.take());
    }

    /// Delivers the result and updates the counters. A dropped ticket is
    /// not an error: the work was done, the response is simply unread.
    pub(crate) fn respond(mut self, result: Result<Response, ServeError>) {
        let tx = self.responder.take().expect("respond is single-shot");
        match &result {
            Ok(resp) => self.stats.record_response(resp.latency),
            Err(_) => self.stats.record_failure(),
        }
        let _ = tx.send(result);
    }
}

impl Drop for Request {
    fn drop(&mut self) {
        if let Some(tx) = self.responder.take() {
            self.stats.record_failure();
            let _ = tx.send(Err(ServeError::ShuttingDown));
        }
    }
}

/// The caller's handle to one in-flight request.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<Result<Response, ServeError>>,
}

impl Ticket {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// Returns the error the service answered with, or
    /// [`ServeError::ShuttingDown`] if the request was torn down.
    pub fn wait(self) -> Result<Response, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Blocks up to `timeout` for the response.
    ///
    /// # Errors
    ///
    /// As [`Ticket::wait`], plus [`ServeError::ResponseTimeout`] when the
    /// deadline passes first (the ticket is consumed; the late response
    /// is dropped).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Response, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => Err(ServeError::ResponseTimeout),
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Arc<StatsCore> {
        Arc::new(StatsCore::new())
    }

    #[test]
    fn respond_delivers_and_counts() {
        let s = stats();
        let (req, ticket) = Request::new("l".into(), vec![1.0], Arc::clone(&s));
        req.respond(Ok(Response {
            output: vec![2.0],
            batch_size: 1,
            latency: Duration::from_micros(5),
        }));
        let got = ticket.wait().unwrap();
        assert_eq!(got.output, vec![2.0]);
        let snap = s.snapshot();
        assert_eq!((snap.completed, snap.failed), (1, 0));
    }

    #[test]
    fn dropped_request_fails_the_ticket() {
        let s = stats();
        let (req, ticket) = Request::new("l".into(), vec![1.0], Arc::clone(&s));
        drop(req);
        assert_eq!(ticket.wait(), Err(ServeError::ShuttingDown));
        assert_eq!(s.snapshot().failed, 1);
    }

    #[test]
    fn wait_timeout_expires() {
        let s = stats();
        let (req, ticket) = Request::new("l".into(), vec![1.0], Arc::clone(&s));
        assert_eq!(
            ticket.wait_timeout(Duration::from_millis(1)),
            Err(ServeError::ResponseTimeout)
        );
        drop(req); // still counted as failed exactly once
        assert_eq!(s.snapshot().failed, 1);
    }

    #[test]
    fn dropped_ticket_does_not_poison_respond() {
        let s = stats();
        let (req, ticket) = Request::new("l".into(), vec![1.0], Arc::clone(&s));
        drop(ticket);
        req.respond(Ok(Response {
            output: vec![0.0],
            batch_size: 1,
            latency: Duration::ZERO,
        }));
        assert_eq!(s.snapshot().completed, 1);
    }
}
