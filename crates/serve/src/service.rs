//! The service façade: thread ownership, client handles, shutdown.

use crate::batcher::{run_batcher, Batch, Msg};
use crate::config::ServeConfig;
use crate::error::ServeError;
use crate::registry::EngineRegistry;
use crate::request::{Request, Ticket};
use crate::stats::{ServiceStats, StatsCore};
use crate::worker::run_worker;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A cloneable handle for submitting inference requests.
///
/// Clients validate eagerly (layer name against the registry, input length
/// against the layer's `N`) so the only errors that travel through the
/// service are operational ones. [`Client::submit`] blocks when the
/// bounded queue is full — that is the backpressure contract —
/// while [`Client::try_submit`] returns [`ServeError::QueueFull`] instead.
#[derive(Debug, Clone)]
pub struct Client {
    tx: SyncSender<Msg>,
    registry: Arc<EngineRegistry>,
    stats: Arc<StatsCore>,
    accepting: Arc<AtomicBool>,
}

impl Client {
    fn make_request(&self, layer: &str, input: Vec<f64>) -> Result<(Request, Ticket), ServeError> {
        if !self.accepting.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let (_m, n) = self
            .registry
            .dims(layer)
            .ok_or_else(|| ServeError::UnknownLayer(layer.to_string()))?;
        if input.len() != n {
            return Err(ServeError::WrongInputLength {
                got: input.len(),
                want: n,
            });
        }
        Ok(Request::new(
            layer.to_string(),
            input,
            Arc::clone(&self.stats),
        ))
    }

    /// Submits a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownLayer`], [`ServeError::WrongInputLength`] for
    /// invalid requests; [`ServeError::ShuttingDown`] once shutdown began.
    pub fn submit(&self, layer: &str, input: Vec<f64>) -> Result<Ticket, ServeError> {
        let (req, ticket) = self.make_request(layer, input)?;
        match self.tx.send(Msg::Request(req)) {
            Ok(()) => {
                self.stats.record_submit();
                Ok(ticket)
            }
            Err(e) => {
                if let Msg::Request(req) = e.0 {
                    req.defuse();
                }
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// As [`Client::submit`], plus [`ServeError::QueueFull`] when the
    /// bounded queue is at capacity (counted in
    /// [`ServiceStats::rejected`]).
    pub fn try_submit(&self, layer: &str, input: Vec<f64>) -> Result<Ticket, ServeError> {
        let (req, ticket) = self.make_request(layer, input)?;
        match self.tx.try_send(Msg::Request(req)) {
            Ok(()) => {
                self.stats.record_submit();
                Ok(ticket)
            }
            Err(TrySendError::Full(msg)) => {
                if let Msg::Request(req) = msg {
                    req.defuse();
                }
                self.stats.record_reject();
                Err(ServeError::QueueFull)
            }
            Err(TrySendError::Disconnected(msg)) => {
                if let Msg::Request(req) = msg {
                    req.defuse();
                }
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// The registry this client validates against.
    #[must_use]
    pub fn registry(&self) -> &EngineRegistry {
        &self.registry
    }

    /// A point-in-time snapshot of the service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }
}

/// A running dynamic-batching inference service.
///
/// Owns the batcher thread and the worker pool. Dropping the service (or
/// calling [`InferenceService::shutdown`]) stops accepting new requests,
/// drains everything already queued through the workers, and joins all
/// threads — no accepted request is ever silently lost.
#[derive(Debug)]
pub struct InferenceService {
    client: Client,
    tx: SyncSender<Msg>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    accepting: Arc<AtomicBool>,
    stats: Arc<StatsCore>,
}

impl InferenceService {
    /// Starts the service: spawns one batcher thread plus
    /// [`ServeConfig::resolved_workers`] worker threads, each holding
    /// private clones of every registered engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid configuration or an empty
    /// registry.
    pub fn start(registry: EngineRegistry, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        if registry.is_empty() {
            return Err(ServeError::Config("registry has no layers".into()));
        }
        let registry = Arc::new(registry);
        let stats = Arc::new(StatsCore::new());
        let accepting = Arc::new(AtomicBool::new(true));

        let (req_tx, req_rx) = sync_channel::<Msg>(config.queue_capacity);
        let worker_count = config.resolved_workers();
        let (batch_tx, batch_rx) = sync_channel::<Batch>(worker_count.saturating_mul(2).max(1));
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let rx = Arc::clone(&batch_rx);
            let engines = registry.worker_engines();
            let stats_w = Arc::clone(&stats);
            let handle = std::thread::Builder::new()
                .name(format!("tie-serve-worker-{i}"))
                .spawn(move || run_worker(rx, engines, stats_w))
                .map_err(|e| ServeError::Config(format!("failed to spawn worker: {e}")))?;
            workers.push(handle);
        }

        let stats_b = Arc::clone(&stats);
        let (max_batch, max_wait) = (config.max_batch, config.max_wait);
        let batcher = std::thread::Builder::new()
            .name("tie-serve-batcher".into())
            .spawn(move || run_batcher(req_rx, batch_tx, max_batch, max_wait, stats_b))
            .map_err(|e| ServeError::Config(format!("failed to spawn batcher: {e}")))?;

        let client = Client {
            tx: req_tx.clone(),
            registry,
            stats: Arc::clone(&stats),
            accepting: Arc::clone(&accepting),
        };
        Ok(InferenceService {
            client,
            tx: req_tx,
            batcher: Some(batcher),
            workers,
            accepting,
            stats,
        })
    }

    /// A new client handle. Handles are cheap to clone and outlive the
    /// service (their submissions then fail with
    /// [`ServeError::ShuttingDown`]).
    #[must_use]
    pub fn client(&self) -> Client {
        self.client.clone()
    }

    /// A point-in-time snapshot of the service counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.stats.snapshot()
    }

    /// Graceful shutdown protocol:
    ///
    /// 1. flip `accepting` so new `submit` calls fail fast,
    /// 2. push the `Shutdown` sentinel through the request queue (behind
    ///    any already-queued requests, so they are all still served),
    /// 3. join the batcher (it drains lanes to the workers and exits,
    ///    dropping the batch channel),
    /// 4. join the workers (they finish queued batches, then see the
    ///    disconnect and exit).
    ///
    /// Returns the final counter snapshot, for which
    /// `submitted == completed + failed` holds.
    pub fn shutdown(mut self) -> ServiceStats {
        self.shutdown_in_place();
        self.stats.snapshot()
    }

    fn shutdown_in_place(&mut self) {
        let Some(batcher) = self.batcher.take() else {
            return;
        };
        self.accepting.store(false, Ordering::Release);
        // The sentinel may block while the queue is full; the batcher is
        // draining it, so this terminates. If the batcher already exited
        // (queue disconnected) the send fails, which is equally fine.
        let _ = self.tx.send(Msg::Shutdown);
        let _ = batcher.join();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for InferenceService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// A client around a bare bounded channel with no batcher draining it —
/// the deterministic way for in-crate tests to exercise the `QueueFull`
/// and `Disconnected` paths (timing-free: the queue stays exactly as full
/// as the test leaves it).
#[cfg(test)]
pub(crate) fn rigged_client(
    registry: Arc<EngineRegistry>,
    stats: Arc<StatsCore>,
    capacity: usize,
) -> (Client, std::sync::mpsc::Receiver<Msg>) {
    let (tx, rx) = sync_channel::<Msg>(capacity);
    let client = Client {
        tx,
        registry,
        stats,
        accepting: Arc::new(AtomicBool::new(true)),
    };
    (client, rx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::time::Duration;
    use tie_core::CompactEngine;
    use tie_tt::{TtMatrix, TtShape};

    fn registry(seed: u64) -> EngineRegistry {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let engine = CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine);
        reg
    }

    #[test]
    fn start_rejects_empty_registry_and_bad_config() {
        assert!(matches!(
            InferenceService::start(EngineRegistry::new(), ServeConfig::default()),
            Err(ServeError::Config(_))
        ));
        let bad = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        assert!(InferenceService::start(registry(1), bad).is_err());
    }

    #[test]
    fn submit_roundtrip_matches_direct_engine_call() {
        let reg = registry(2);
        let engine = reg.get("fc").unwrap();
        let svc = InferenceService::start(
            reg,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        let client = svc.client();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let resp = client.submit("fc", x.clone()).unwrap().wait().unwrap();
        let mut direct = vec![0.0; 6];
        engine.matvec_into(&x, &mut direct).unwrap();
        assert_eq!(resp.output, direct);
        let stats = svc.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.in_flight(), 0);
    }

    #[test]
    fn quantized_backend_roundtrip_and_saturation_counters() {
        use tie_sim::{QuantConfig, QuantizedEngine};
        let mut rng = ChaCha8Rng::seed_from_u64(20);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let engine = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert_quantized("qfc", engine.clone());
        let svc = InferenceService::start(
            reg,
            ServeConfig {
                max_batch: 4,
                max_wait: Duration::from_millis(1),
                ..Default::default()
            },
        )
        .unwrap();
        let client = svc.client();
        let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let resp = client.submit("qfc", x.clone()).unwrap().wait().unwrap();
        let mut direct = vec![0.0; 6];
        engine.matvec_batch_into(&x, 1, &mut direct).unwrap();
        assert_eq!(resp.output, direct);
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1);
        assert!(stats.quant_outputs > 0);
        assert_eq!(stats.quant_saturation_rate(), 0.0);
    }

    #[test]
    fn validation_errors_do_not_touch_the_queue() {
        let svc = InferenceService::start(registry(4), ServeConfig::default()).unwrap();
        let client = svc.client();
        assert!(matches!(
            client.submit("nope", vec![0.0; 6]),
            Err(ServeError::UnknownLayer(_))
        ));
        assert_eq!(
            client.submit("fc", vec![0.0; 5]).unwrap_err(),
            ServeError::WrongInputLength { got: 5, want: 6 }
        );
        let stats = svc.shutdown();
        assert_eq!((stats.submitted, stats.completed, stats.failed), (0, 0, 0));
    }

    #[test]
    fn submit_after_shutdown_fails_fast() {
        let svc = InferenceService::start(registry(5), ServeConfig::default()).unwrap();
        let client = svc.client();
        svc.shutdown();
        assert_eq!(
            client.submit("fc", vec![0.0; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
        assert_eq!(
            client.try_submit("fc", vec![0.0; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn shutdown_drains_pending_requests() {
        let reg = registry(6);
        let engine = reg.get("fc").unwrap();
        // Huge max_batch + long max_wait: nothing dispatches until drain.
        let svc = InferenceService::start(
            reg,
            ServeConfig {
                max_batch: 1024,
                max_wait: Duration::from_secs(60),
                ..Default::default()
            },
        )
        .unwrap();
        let client = svc.client();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let inputs: Vec<Vec<f64>> = (0..9)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let tickets: Vec<Ticket> = inputs
            .iter()
            .map(|x| client.submit("fc", x.clone()).unwrap())
            .collect();
        let stats = svc.shutdown();
        for (x, ticket) in inputs.iter().zip(tickets) {
            let resp = ticket.wait().expect("drained request must be answered");
            let mut direct = vec![0.0; 6];
            engine.matvec_into(x, &mut direct).unwrap();
            assert_eq!(resp.output, direct);
        }
        assert_eq!(stats.submitted, 9);
        assert_eq!(stats.completed + stats.failed, 9);
        assert!(stats.drain_batches >= 1, "drain must have flushed the lane");
    }

    #[test]
    fn try_submit_reports_queue_full_and_disconnect() {
        // Rig a client around a capacity-1 queue with no batcher draining
        // it, so the Full and Disconnected paths are deterministic.
        let stats = Arc::new(StatsCore::new());
        let (tx, rx) = sync_channel::<Msg>(1);
        let client = Client {
            tx,
            registry: Arc::new(registry(8)),
            stats: Arc::clone(&stats),
            accepting: Arc::new(AtomicBool::new(true)),
        };
        let _ticket = client.try_submit("fc", vec![0.1; 6]).unwrap();
        assert_eq!(
            client.try_submit("fc", vec![0.1; 6]).unwrap_err(),
            ServeError::QueueFull
        );
        let s = stats.snapshot();
        assert_eq!((s.submitted, s.rejected), (1, 1));
        drop(rx);
        assert_eq!(
            client.try_submit("fc", vec![0.1; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
        // Neither the rejected nor the disconnected attempt leaks into the
        // submitted/failed accounting.
        let s = stats.snapshot();
        assert_eq!((s.submitted, s.rejected, s.failed), (1, 1, 1));
    }

    #[test]
    fn drop_performs_graceful_shutdown() {
        let svc = InferenceService::start(registry(9), ServeConfig::default()).unwrap();
        let client = svc.client();
        let ticket = client.submit("fc", vec![0.2; 6]).unwrap();
        drop(svc);
        // The pending request was drained, not lost.
        assert!(ticket.wait().is_ok());
        assert_eq!(
            client.submit("fc", vec![0.2; 6]).unwrap_err(),
            ServeError::ShuttingDown
        );
    }
}
