//! Worker threads: execute dispatched batches on private engine clones.
//!
//! Each worker holds its own clone of every registered engine (fresh
//! scratch workspace, no shared mutable state — see
//! [`crate::EngineRegistry::clone_engines`]) plus two reusable interleave
//! buffers, so steady-state batch execution allocates only the per-request
//! output vectors it hands back to callers.
//!
//! The batch queue receiver sits behind a `Mutex` so the pool shares one
//! channel: whichever worker is idle grabs the lock, takes the next batch,
//! and releases the lock *before* executing. Workers exit when the channel
//! disconnects, which happens exactly when the batcher returns — so
//! shutdown order is: batcher drains and exits, workers finish the queued
//! batches, pool joins.

use crate::batcher::Batch;
use crate::error::ServeError;
use crate::request::Response;
use crate::stats::StatsCore;
use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex};
use tie_core::CompactEngine;
use tie_sim::{PipelinedEngine, QuantizedEngine};
use tie_tensor::Result;

/// Per-batch accounting a worker folds into the service stats: the
/// quantized saturation counters (zero on the float datapath) and, for
/// the pipelined backend, the run's scheduling telemetry.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct BatchAccounting {
    pub outputs: u64,
    pub acc_saturations: u64,
    pub out_saturations: u64,
    /// `Some` iff the batch ran on a pipelined engine:
    /// `(chunks, stage_chunks, handoffs, send_stalls, recv_stalls)`.
    pub pipeline: Option<(u64, u64, u64, u64, u64)>,
}

/// A worker's private copy of one registered layer: the float reference
/// engine, the bit-accurate fixed-point engine, or the pipeline-parallel
/// wrapper around either. All expose the same batch-inner-most
/// `matvec_batch_into` contract, so the worker loop is backend-agnostic;
/// the quantized and pipelined backends additionally report counters,
/// which the worker folds into the service stats.
#[derive(Debug)]
pub(crate) enum WorkerEngine {
    Float(CompactEngine<f64>),
    Quantized(QuantizedEngine),
    Pipelined(PipelinedEngine),
}

impl WorkerEngine {
    /// `(rows M, cols N)` of the layer.
    fn dims(&self) -> (usize, usize) {
        match self {
            WorkerEngine::Float(e) => {
                let shape = e.matrix().shape();
                (shape.num_rows(), shape.num_cols())
            }
            WorkerEngine::Quantized(e) => (e.num_rows(), e.num_cols()),
            WorkerEngine::Pipelined(e) => (e.num_rows(), e.num_cols()),
        }
    }

    /// Per-sample copy traffic `(bytes_moved, transform_elided_bytes)`:
    /// what the engine still copies (input preparation) and what its fused
    /// write epilogues no longer re-copy (inter-stage Transform + output
    /// assembly).
    fn traffic_per_sample(&self) -> (u64, u64) {
        match self {
            WorkerEngine::Float(e) => (
                e.bytes_moved_per_sample(),
                e.transform_elided_bytes_per_sample(),
            ),
            WorkerEngine::Quantized(e) => (
                e.bytes_moved_per_sample(),
                e.transform_elided_bytes_per_sample(),
            ),
            WorkerEngine::Pipelined(e) => (
                e.bytes_moved_per_sample(),
                e.transform_elided_bytes_per_sample(),
            ),
        }
    }

    /// Batched matvec; returns the batch's stats-facing accounting.
    fn matvec_batch_into(&self, xs: &[f64], b: usize, ys: &mut [f64]) -> Result<BatchAccounting> {
        match self {
            WorkerEngine::Float(e) => e
                .matvec_batch_into(xs, b, ys)
                .map(|_ops| BatchAccounting::default()),
            WorkerEngine::Quantized(e) => e.matvec_batch_into(xs, b, ys).map(|r| BatchAccounting {
                outputs: r.outputs,
                acc_saturations: r.acc_saturations,
                out_saturations: r.out_saturations,
                pipeline: None,
            }),
            WorkerEngine::Pipelined(e) => e.matvec_batch_into(xs, b, ys).map(|r| {
                let run = r.run;
                BatchAccounting {
                    outputs: r.quant.outputs,
                    acc_saturations: r.quant.acc_saturations,
                    out_saturations: r.quant.out_saturations,
                    pipeline: Some((
                        run.chunks,
                        // Summed per-stage occupancy of this run: every
                        // chunk occupies every stage exactly once.
                        run.chunks * run.depth,
                        run.handoffs,
                        run.send_stalls,
                        run.recv_stalls,
                    )),
                }
            }),
        }
    }
}

/// Worker thread body.
pub(crate) fn run_worker(
    batch_rx: Arc<Mutex<Receiver<Batch>>>,
    engines: HashMap<String, WorkerEngine>,
    stats: Arc<StatsCore>,
) {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    loop {
        let batch = {
            let guard = match batch_rx.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            match guard.recv() {
                Ok(b) => b,
                Err(_) => return, // batcher gone, queue drained
            }
        };
        execute(&engines, &stats, batch, &mut xs, &mut ys);
    }
}

/// Runs one batch through `matvec_batch_into` and answers every request.
///
/// The inputs are interleaved batch-inner-most (`xs[j * b + c]` is element
/// `j` of request `c`) to match the engine's batched layout, which keeps
/// the batched pass **bitwise identical** to `b` independent single-input
/// calls (the property suite proves this for both backends).
fn execute(
    engines: &HashMap<String, WorkerEngine>,
    stats: &StatsCore,
    batch: Batch,
    xs: &mut Vec<f64>,
    ys: &mut Vec<f64>,
) {
    let Some(engine) = engines.get(&batch.layer) else {
        // Unreachable in practice: clients validate the layer name against
        // the registry before submitting. Answer rather than panic.
        for req in batch.requests {
            let layer = batch.layer.clone();
            req.respond(Err(ServeError::UnknownLayer(layer)));
        }
        return;
    };
    let (m, n) = engine.dims();
    let b = batch.requests.len();

    xs.clear();
    xs.resize(n * b, 0.0);
    for (c, req) in batch.requests.iter().enumerate() {
        for (j, &v) in req.input.iter().enumerate() {
            xs[j * b + c] = v;
        }
    }
    ys.clear();
    ys.resize(m * b, 0.0);

    match engine.matvec_batch_into(xs, b, ys) {
        Ok(acct) => {
            if acct.outputs > 0 {
                stats.record_quant(acct.outputs, acct.acc_saturations, acct.out_saturations);
            }
            if let Some((chunks, stage_chunks, handoffs, send_stalls, recv_stalls)) = acct.pipeline
            {
                stats.record_pipeline(chunks, stage_chunks, handoffs, send_stalls, recv_stalls);
            }
            let (moved, elided) = engine.traffic_per_sample();
            stats.record_traffic(moved * b as u64, elided * b as u64);
            for (c, req) in batch.requests.into_iter().enumerate() {
                let output: Vec<f64> = (0..m).map(|r| ys[r * b + c]).collect();
                let latency = req.submitted_at.elapsed();
                req.respond(Ok(Response {
                    output,
                    batch_size: b,
                    latency,
                }));
            }
        }
        Err(e) => {
            let err = ServeError::Engine(e.to_string());
            for req in batch.requests {
                req.respond(Err(err.clone()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::EngineRegistry;
    use crate::request::Request;
    use crate::stats::StatsCore;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;
    use std::sync::mpsc::sync_channel;
    use tie_tt::{TtMatrix, TtShape};

    fn registry(seed: u64) -> EngineRegistry {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let engine = CompactEngine::new(TtMatrix::random(&mut rng, &shape, 0.5).unwrap()).unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert("fc", engine);
        reg
    }

    #[test]
    fn batch_results_match_direct_single_calls_bitwise() {
        let reg = registry(7);
        let stats = Arc::new(StatsCore::new());
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let engine = reg.get("fc").unwrap();
        let n = engine.matrix().shape().num_cols();

        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for input in &inputs {
            let (req, ticket) = Request::new("fc".into(), input.clone(), Arc::clone(&stats));
            requests.push(req);
            tickets.push(ticket);
        }
        let batch = Batch {
            layer: "fc".into(),
            requests,
        };

        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        execute(&reg.worker_engines(), &stats, batch, &mut xs, &mut ys);

        let m = engine.matrix().shape().num_rows();
        for (input, ticket) in inputs.iter().zip(tickets) {
            let resp = ticket.wait().unwrap();
            assert_eq!(resp.batch_size, 5);
            let mut direct = vec![0.0; m];
            engine.matvec_into(input, &mut direct).unwrap();
            assert_eq!(
                resp.output, direct,
                "batched response must be bit-identical"
            );
        }
        let s = stats.snapshot();
        assert_eq!(s.completed, 5);
        assert_eq!(s.bytes_moved, 5 * engine.bytes_moved_per_sample());
        assert_eq!(
            s.transform_elided_bytes,
            5 * engine.transform_elided_bytes_per_sample()
        );
        assert!(s.transform_elided_fraction() > 0.0);
    }

    #[test]
    fn unknown_layer_answers_every_request() {
        let reg = registry(8);
        let stats = Arc::new(StatsCore::new());
        let (req, ticket) = Request::new("nope".into(), vec![0.0; 6], Arc::clone(&stats));
        let batch = Batch {
            layer: "nope".into(),
            requests: vec![req],
        };
        execute(
            &reg.worker_engines(),
            &stats,
            batch,
            &mut Vec::new(),
            &mut Vec::new(),
        );
        assert!(matches!(ticket.wait(), Err(ServeError::UnknownLayer(_))));
        assert_eq!(stats.snapshot().failed, 1);
    }

    #[test]
    fn worker_exits_on_disconnect() {
        let reg = registry(9);
        let (batch_tx, batch_rx) = sync_channel::<Batch>(4);
        let rx = Arc::new(Mutex::new(batch_rx));
        let engines = reg.worker_engines();
        let stats = Arc::new(StatsCore::new());
        let handle = std::thread::spawn(move || run_worker(rx, engines, stats));
        drop(batch_tx);
        handle.join().unwrap();
    }

    #[test]
    fn pipelined_batch_matches_direct_engine_and_reconciles_counters() {
        use tie_core::PipelineConfig;
        use tie_sim::{PipelinedEngine, QuantConfig, QuantizedEngine};
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let shape = TtShape::uniform_rank(vec![2, 3, 2], vec![2, 3, 2], 2).unwrap();
        let qengine = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        let pipelined = PipelinedEngine::quantized(
            &qengine,
            PipelineConfig {
                depth: 3,
                micro_batch: 1,
            },
        )
        .unwrap();
        let depth = pipelined.depth() as u64;
        let mut reg = EngineRegistry::new();
        reg.insert_pipelined("pfc", pipelined);
        let stats = Arc::new(StatsCore::new());

        let b = 5usize;
        let inputs: Vec<Vec<f64>> = (0..b)
            .map(|_| (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for input in &inputs {
            let (req, ticket) = Request::new("pfc".into(), input.clone(), Arc::clone(&stats));
            requests.push(req);
            tickets.push(ticket);
        }
        let batch = Batch {
            layer: "pfc".into(),
            requests,
        };
        execute(
            &reg.worker_engines(),
            &stats,
            batch,
            &mut Vec::new(),
            &mut Vec::new(),
        );

        for (input, ticket) in inputs.iter().zip(tickets) {
            let resp = ticket.wait().unwrap();
            let mut direct = vec![0.0; 12];
            qengine.matvec_batch_into(input, 1, &mut direct).unwrap();
            assert_eq!(resp.output, direct, "pipelined batch must be bit-identical");
        }
        let s = stats.snapshot();
        assert_eq!(s.completed, b as u64);
        assert!(
            s.quant_outputs > 0,
            "quantized pipeline feeds quant counters"
        );
        // Stall counters reconcile exactly against handoffs.
        assert_eq!(s.pipeline_batches, 1);
        assert_eq!(s.pipeline_chunks, b as u64);
        assert_eq!(s.pipeline_handoffs, b as u64 * (depth - 1));
        assert_eq!(
            s.pipeline_stage_chunks,
            s.pipeline_chunks + s.pipeline_handoffs
        );
        assert!(s.pipeline_send_stalls <= s.pipeline_handoffs);
        assert!(s.pipeline_recv_stalls <= s.pipeline_handoffs);
    }

    #[test]
    fn quantized_batch_matches_direct_engine_and_records_counters() {
        use tie_sim::{QuantConfig, QuantizedEngine};
        use tie_tt::{TtMatrix, TtShape};
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let engine = QuantizedEngine::new(
            TtMatrix::random(&mut rng, &shape, 0.5).unwrap(),
            QuantConfig::default(),
        )
        .unwrap();
        let mut reg = EngineRegistry::new();
        reg.insert_quantized("qfc", engine.clone());
        let stats = Arc::new(StatsCore::new());

        let inputs: Vec<Vec<f64>> = (0..4)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut requests = Vec::new();
        let mut tickets = Vec::new();
        for input in &inputs {
            let (req, ticket) = Request::new("qfc".into(), input.clone(), Arc::clone(&stats));
            requests.push(req);
            tickets.push(ticket);
        }
        let batch = Batch {
            layer: "qfc".into(),
            requests,
        };
        execute(
            &reg.worker_engines(),
            &stats,
            batch,
            &mut Vec::new(),
            &mut Vec::new(),
        );

        for (input, ticket) in inputs.iter().zip(tickets) {
            let resp = ticket.wait().unwrap();
            let mut direct = vec![0.0; 6];
            engine.matvec_batch_into(input, 1, &mut direct).unwrap();
            assert_eq!(resp.output, direct, "quantized batch must be bit-identical");
        }
        let s = stats.snapshot();
        assert_eq!(s.completed, 4);
        assert!(
            s.quant_outputs > 0,
            "quantized batches must feed the counters"
        );
        assert_eq!(s.quant_acc_saturations + s.quant_out_saturations, 0);
        assert_eq!(s.bytes_moved, 4 * engine.bytes_moved_per_sample());
        assert_eq!(
            s.transform_elided_bytes,
            4 * engine.transform_elided_bytes_per_sample()
        );
    }
}
