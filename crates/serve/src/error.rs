//! Error type of the serving layer.

use tie_tensor::TensorError;

/// Everything that can go wrong between `submit` and `wait`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a layer that was never registered.
    UnknownLayer(String),
    /// The input vector length does not match the layer's `N`.
    WrongInputLength {
        /// Length the caller supplied.
        got: usize,
        /// Length the layer expects (`num_cols`).
        want: usize,
    },
    /// `try_submit` found the bounded request queue full (backpressure).
    QueueFull,
    /// The service is shutting down (or has shut down); the request was
    /// not accepted, or its response channel was torn down mid-flight.
    ShuttingDown,
    /// `wait_timeout` elapsed before the response arrived. The request is
    /// still in flight; the ticket is consumed, so the eventual response
    /// is dropped.
    ResponseTimeout,
    /// Every replica of the target shard is draining or retired: the
    /// router fails fast instead of queueing onto a shard that can no
    /// longer accept work. Re-register the shard
    /// ([`crate::ShardedService::reregister_replica`]) to bring it back.
    ShardUnavailable {
        /// The shard the layer key routed to.
        shard: usize,
    },
    /// An invalid [`crate::ServeConfig`] field.
    Config(String),
    /// The engine rejected the batch (cannot happen for requests that
    /// passed submit-time validation; kept for faithful error plumbing).
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownLayer(name) => write!(f, "unknown layer {name:?}"),
            ServeError::WrongInputLength { got, want } => {
                write!(f, "input has {got} elements, layer expects {want}")
            }
            ServeError::QueueFull => write!(f, "request queue full"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::ResponseTimeout => write!(f, "timed out waiting for the response"),
            ServeError::ShardUnavailable { shard } => {
                write!(f, "all replicas of shard {shard} are draining or retired")
            }
            ServeError::Config(msg) => write!(f, "invalid service config: {msg}"),
            ServeError::Engine(msg) => write!(f, "engine error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TensorError> for ServeError {
    fn from(e: TensorError) -> Self {
        ServeError::Engine(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = ServeError::WrongInputLength { got: 3, want: 16 };
        assert!(e.to_string().contains('3') && e.to_string().contains("16"));
        assert!(ServeError::UnknownLayer("fc6".into())
            .to_string()
            .contains("fc6"));
        assert!(ServeError::QueueFull.to_string().contains("full"));
        assert!(ServeError::ShardUnavailable { shard: 3 }
            .to_string()
            .contains('3'));
    }

    #[test]
    fn converts_tensor_errors() {
        let te = TensorError::ShapeMismatch {
            left: vec![1],
            right: vec![2],
        };
        match ServeError::from(te) {
            ServeError::Engine(msg) => assert!(!msg.is_empty()),
            other => panic!("wrong variant {other:?}"),
        }
    }
}
