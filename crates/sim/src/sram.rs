//! SRAM models: the weight memory with Fig. 9 interleaved allocation and
//! the ping-pong working memories with skewed banking for conflict-free
//! Transform reads (the Algorithm 2 / Fig. 10 mechanism).

use tie_quant::QTensor;
use tie_tensor::{Result, TensorError};

/// The tensor-core weight SRAM (paper Fig. 9).
///
/// Unfolded cores `G̃_1 … G̃_d` are placed **sequentially** (inter-core);
/// within a core, the allocation is **interleaved**: the word at address
/// `base + tile·C + col` holds the `N_MAC` elements
/// `G̃[tile·N_MAC + i, col]`, `i = 0..N_MAC` — exactly one broadcast
/// column per cycle for one row-tile of MAC units.
#[derive(Debug, Clone)]
pub struct WeightSram {
    n_mac: usize,
    capacity_elems: usize,
    /// Stored cores: quantized unfolded matrices, in stage order (core 1
    /// first, matching the sequential placement).
    cores: Vec<QTensor>,
    /// Word base address of each core.
    bases: Vec<usize>,
    used_words: usize,
    reads: u64,
}

impl WeightSram {
    /// Empty weight SRAM.
    pub fn new(n_mac: usize, capacity_elems: usize) -> Self {
        WeightSram {
            n_mac,
            capacity_elems,
            cores: Vec::new(),
            bases: Vec::new(),
            used_words: 0,
            reads: 0,
        }
    }

    /// Words one core occupies: `ceil(R/N_MAC) · C`.
    fn core_words(&self, rows: usize, cols: usize) -> usize {
        rows.div_ceil(self.n_mac) * cols
    }

    /// Loads the quantized unfolded cores of one layer, replacing any
    /// previous content.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if the layer exceeds the
    /// SRAM capacity (the paper sizes 16 KB as "sufficient for most
    /// TT-DNN models" — this check is where that claim is enforced).
    pub fn load(&mut self, cores: Vec<QTensor>) -> Result<()> {
        let mut words = 0usize;
        let mut bases = Vec::with_capacity(cores.len());
        for c in &cores {
            let dims = c.shape().dims();
            if dims.len() != 2 {
                return Err(TensorError::NotAMatrix { ndim: dims.len() });
            }
            bases.push(words);
            words += self.core_words(dims[0], dims[1]);
        }
        let elems = words * self.n_mac;
        if elems > self.capacity_elems {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "layer needs {elems} weight elements (padded), capacity {}",
                    self.capacity_elems
                ),
            });
        }
        self.cores = cores;
        self.bases = bases;
        self.used_words = words;
        self.reads = 0;
        Ok(())
    }

    /// Reads the weight word for `(core, row_tile, col)`: the `N_MAC`
    /// column elements broadcast in one cycle. Rows beyond the matrix
    /// (padding of the last tile) read as zero.
    ///
    /// # Panics
    ///
    /// Panics if the core index or addresses are out of range (simulator
    /// internal error, not a user-facing condition).
    pub fn read_column(&mut self, core: usize, row_tile: usize, col: usize) -> Vec<i16> {
        let c = &self.cores[core];
        let dims = c.shape().dims();
        let (rows, cols) = (dims[0], dims[1]);
        assert!(
            col < cols && row_tile * self.n_mac < rows,
            "weight address out of range"
        );
        self.reads += 1;
        (0..self.n_mac)
            .map(|i| {
                let r = row_tile * self.n_mac + i;
                if r < rows {
                    c.code_at(r * cols + col)
                } else {
                    0
                }
            })
            .collect()
    }

    /// Word address that [`WeightSram::read_column`] touches — exposes the
    /// Fig. 9 allocation for tests.
    pub fn word_address(&self, core: usize, row_tile: usize, col: usize) -> usize {
        let dims = self.cores[core].shape().dims();
        self.bases[core] + row_tile * dims[1] + col
    }

    /// The stored quantized core matrices.
    pub fn cores(&self) -> &[QTensor] {
        &self.cores
    }

    /// Occupied words (each `N_MAC` elements wide).
    pub fn used_words(&self) -> usize {
        self.used_words
    }

    /// Occupancy in elements, including row-tile padding.
    pub fn used_elems(&self) -> usize {
        self.used_words * self.n_mac
    }

    /// Word reads since load.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Charges `n` word reads without touching data — used by the batched
    /// fast path in `TieAccelerator`, which computes whole stages with one
    /// GEMM but must report the same traffic the cycle-level walk (one
    /// [`WeightSram::read_column`] per `(row_tile, pe_tile, gcol)`) would.
    pub fn charge_reads(&mut self, n: u64) {
        self.reads += n;
    }
}

/// One working SRAM copy (the design has two, used as a ping-pong pair).
///
/// Elements of the stored `V_h` matrix live in `n_banks` component SRAMs
/// with **skewed** placement `bank = (row + col) mod n_banks`: a write of
/// one output row block and a permuted Transform read (which touches
/// `m_h` consecutive rows of one column, then the next column, …) both
/// hit distinct banks. Residual conflicts — possible for degenerate
/// mode/rank combinations — are counted and serialized, never dropped.
#[derive(Debug, Clone)]
pub struct WorkingSram {
    n_banks: usize,
    capacity_elems: usize,
    rows: usize,
    cols: usize,
    data: Vec<i16>,
    reads: u64,
    writes: u64,
    conflict_extra_cycles: u64,
}

impl WorkingSram {
    /// Empty working SRAM.
    pub fn new(n_banks: usize, capacity_elems: usize) -> Self {
        WorkingSram {
            n_banks,
            capacity_elems,
            rows: 0,
            cols: 0,
            data: Vec::new(),
            reads: 0,
            writes: 0,
            conflict_extra_cycles: 0,
        }
    }

    /// Prepares the SRAM to hold an `rows × cols` matrix (one `V_h`),
    /// zero-filled.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if it does not fit — the
    /// §3.2 storage-overhead constraint.
    pub fn allocate(&mut self, rows: usize, cols: usize) -> Result<()> {
        if rows * cols > self.capacity_elems {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "intermediate V ({rows}x{cols} = {} elems) exceeds working SRAM capacity {}",
                    rows * cols,
                    self.capacity_elems
                ),
            });
        }
        self.rows = rows;
        self.cols = cols;
        self.data = vec![0i16; rows * cols];
        Ok(())
    }

    /// Matrix extent currently allocated.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Bank holding element `(r, c)` (skewed placement).
    pub fn bank_of(&self, r: usize, c: usize) -> usize {
        (r + c) % self.n_banks
    }

    /// Writes a block column: `values[i]` goes to `(row0 + i, col)`. One
    /// physical write word per distinct bank touched (counted).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses (simulator internal error).
    pub fn write_block_column(&mut self, row0: usize, col: usize, values: &[i16]) {
        let items: Vec<(usize, usize, i16)> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (row0 + i, col, v))
            .collect();
        self.write_scatter(&items);
    }

    /// Scattered write (the Algorithm-2 ReArrange on the write path: the
    /// controller knows the next stage's read order and places each
    /// produced element at its *transformed* position). Counts one write
    /// word per distinct bank touched; write bursts are absorbed by the
    /// write queue during the `N_Gcol`-cycle compute pass, so they cost
    /// traffic but no stall cycles (the paper's "zero-cost matrix
    /// transform").
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses (simulator internal error).
    pub fn write_scatter(&mut self, items: &[(usize, usize, i16)]) {
        let mut banks_touched = vec![false; self.n_banks];
        let mut words = 0u64;
        for &(r, c, v) in items {
            assert!(
                r < self.rows && c < self.cols,
                "working SRAM write out of range"
            );
            self.data[r * self.cols + c] = v;
            let b = self.bank_of(r, c);
            if !banks_touched[b] {
                banks_touched[b] = true;
                words += 1;
            }
        }
        self.writes += words;
    }

    /// Gathers a set of scattered elements in one nominal cycle — the
    /// Algorithm-2 group read. Returns the values and the number of
    /// physical cycles consumed (`max` accesses landing on one bank; 1
    /// when conflict-free). Conflict overflow is recorded.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range addresses (simulator internal error).
    pub fn read_gather(&mut self, positions: &[(usize, usize)]) -> (Vec<i16>, u64) {
        let mut per_bank = vec![0u64; self.n_banks];
        let values = positions
            .iter()
            .map(|&(r, c)| {
                assert!(
                    r < self.rows && c < self.cols,
                    "working SRAM read out of range"
                );
                per_bank[self.bank_of(r, c)] += 1;
                self.data[r * self.cols + c]
            })
            .collect();
        let cycles = per_bank.iter().copied().max().unwrap_or(1).max(1);
        self.reads += positions.len() as u64;
        if cycles > 1 {
            self.conflict_extra_cycles += cycles - 1;
        }
        (values, cycles)
    }

    /// Direct element read without traffic accounting (result drains /
    /// debug).
    pub fn peek(&self, r: usize, c: usize) -> i16 {
        self.data[r * self.cols + c]
    }

    /// DMA-style bulk load of a quantized matrix (input staging; no
    /// read/write traffic counted — the paper treats input reshaping as
    /// prepared offline).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] on capacity overflow or a
    /// non-matrix input.
    pub fn load_matrix(&mut self, m: &tie_quant::QTensor) -> Result<()> {
        let dims = m.shape().dims();
        if dims.len() != 2 {
            return Err(TensorError::NotAMatrix { ndim: dims.len() });
        }
        self.allocate(dims[0], dims[1])?;
        self.data.copy_from_slice(m.codes());
        Ok(())
    }

    /// All stored codes, row-major (result drain).
    pub fn contents(&self) -> &[i16] {
        &self.data
    }

    /// Element reads so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Charges `n` element reads without touching data — used by the
    /// batched fast path in `TieAccelerator` to report the same gather
    /// traffic the cycle-level walk would (the walk's gathers are
    /// sequential same-row reads, conflict-free by construction when
    /// `n_banks >= n_pe`, so only the count needs replaying).
    pub fn charge_reads(&mut self, n: u64) {
        self.reads += n;
    }

    /// Word writes so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Charges `n` write words without touching data — the write-side
    /// counterpart of [`WorkingSram::charge_reads`], used by the fused
    /// fast path in `TieAccelerator`: the mapped GEMM kernel stores codes
    /// straight into [`WorkingSram::contents_mut`], and the distinct-bank
    /// word counts the cycle-level walk would have produced are replayed
    /// through this method.
    pub fn charge_writes(&mut self, n: u64) {
        self.writes += n;
    }

    /// Mutable access to the stored codes, row-major, without traffic
    /// accounting — the fused fast path's write target (traffic is
    /// replayed via [`WorkingSram::charge_writes`]).
    pub fn contents_mut(&mut self) -> &mut [i16] {
        &mut self.data
    }

    /// Extra cycles lost to bank conflicts.
    pub fn conflict_extra_cycles(&self) -> u64 {
        self.conflict_extra_cycles
    }

    /// Resets traffic counters (not contents).
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
        self.conflict_extra_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tie_quant::QFormat;
    use tie_tensor::Tensor;

    fn q(rows: usize, cols: usize) -> QTensor {
        let t = Tensor::<f64>::from_fn(vec![rows, cols], |i| (i[0] * cols + i[1]) as f64).unwrap();
        QTensor::quantize(&t, QFormat::new(0).unwrap())
    }

    #[test]
    fn weight_sram_sequential_inter_core_interleaved_intra_core() {
        let mut w = WeightSram::new(4, 4096);
        w.load(vec![q(8, 3), q(4, 5)]).unwrap();
        // Core 0: 2 row tiles × 3 cols = 6 words; core 1 starts at word 6.
        assert_eq!(w.word_address(0, 0, 0), 0);
        assert_eq!(w.word_address(0, 0, 2), 2);
        assert_eq!(w.word_address(0, 1, 0), 3);
        assert_eq!(w.word_address(1, 0, 0), 6);
        assert_eq!(w.used_words(), 6 + 5);
    }

    #[test]
    fn weight_sram_read_column_returns_interleaved_rows() {
        let mut w = WeightSram::new(4, 4096);
        w.load(vec![q(6, 3)]).unwrap();
        // Tile 1 covers rows 4..6, padded with zeros for rows 6..8.
        let col = w.read_column(0, 1, 2);
        assert_eq!(col, vec![4 * 3 + 2, 5 * 3 + 2, 0, 0]);
        assert_eq!(w.reads(), 1);
    }

    #[test]
    fn weight_sram_capacity_enforced() {
        let mut w = WeightSram::new(16, 100);
        assert!(w.load(vec![q(16, 10)]).is_err()); // 160 elems > 100
        assert!(w.load(vec![q(4, 5)]).is_ok()); // 1 tile × 5 words × 16 = 80
    }

    #[test]
    fn working_sram_allocate_respects_capacity() {
        let mut m = WorkingSram::new(16, 64);
        assert!(m.allocate(8, 8).is_ok());
        assert!(m.allocate(8, 9).is_err());
    }

    #[test]
    fn working_sram_write_then_peek() {
        let mut m = WorkingSram::new(16, 1024);
        m.allocate(8, 8).unwrap();
        m.write_block_column(4, 3, &[10, 20, 30]);
        assert_eq!(m.peek(5, 3), 20);
        assert_eq!(m.writes(), 3); // 3 distinct banks
    }

    #[test]
    fn skewed_banking_makes_transform_reads_conflict_free_at_rank4() {
        // The Transform read pattern for stage h: within one V' row tile,
        // source positions are (i·r + t, q) for i = 0..m_h, then the next
        // column q+1, … With the paper's default m_h = r = 4 and 16 banks,
        // the skew (row + col) % 16 makes all 16 gathered elements land in
        // distinct banks.
        let mut m = WorkingSram::new(16, 4096);
        m.allocate(16, 32).unwrap();
        let t = 2usize; // fixed rank offset within the row index
        let mut positions = Vec::new();
        for q in 8..12 {
            for i in 0..4 {
                positions.push((i * 4 + t, q));
            }
        }
        let (_, cycles) = m.read_gather(&positions);
        assert_eq!(cycles, 1, "expected conflict-free gather");
        assert_eq!(m.conflict_extra_cycles(), 0);
    }

    #[test]
    fn conflicting_gather_is_serialized_not_dropped() {
        let mut m = WorkingSram::new(16, 4096);
        m.allocate(32, 32).unwrap();
        // Same (r+c) mod 16 for all: worst case, fully serialized.
        let positions: Vec<(usize, usize)> = (0..8).map(|i| (i, 16 - i)).collect();
        let (vals, cycles) = m.read_gather(&positions);
        assert_eq!(vals.len(), 8);
        assert_eq!(cycles, 8);
        assert_eq!(m.conflict_extra_cycles(), 7);
    }

    #[test]
    fn counters_reset() {
        let mut m = WorkingSram::new(16, 64);
        m.allocate(4, 4).unwrap();
        m.write_block_column(0, 0, &[1]);
        m.read_gather(&[(0, 0)]);
        m.reset_counters();
        assert_eq!(m.reads(), 0);
        assert_eq!(m.writes(), 0);
        assert_eq!(m.peek(0, 0), 1, "contents survive counter reset");
    }
}
