//! Pipeline-parallel execution for the quantized engine, and the unified
//! [`PipelinedEngine`] serving backend.
//!
//! [`QuantChain`] is the [`StageChain`] counterpart of
//! [`tie_core::pipeline::FloatChain`]: it shares the [`QuantizedEngine`]'s
//! quantized cores, fused write epilogues, and construction-frozen
//! activation formats, with the per-stage fixed-point alignment shifts
//! resolved once up front. Because `qmatmul`'s lane arithmetic is
//! independent of the batch width and the saturation counters are
//! per-output-element, a chunked pipelined pass produces codes **and** a
//! [`QMatmulReport`] bit-identical to the sequential engine.
//!
//! [`PipelinedEngine`] wraps either chain behind one serving-facing type
//! so `tie-serve` can register a pipelined float or quantized layer the
//! same way it registers the sequential ones.

use tie_core::pipeline::{
    FloatChain, PipeRunStats, PipelineConfig, StageChain, StageCounterSnapshot, StagePipeline,
};
use tie_core::{Activation, CompactEngine, CutPlan, InferencePlan};
use tie_quant::{
    alignment, qmatmul_raw_mapped, qmatmul_raw_mapped_relu, QFormat, QMatmulReport, QTensor,
};
use tie_tensor::linalg::DestMap;
use tie_tensor::Result;
use tie_tt::inference::OpCount;

use crate::qengine::QuantizedEngine;

/// [`StageChain`] over the 16-bit fixed-point compact scheme (module
/// docs). Built from — and bit-identical to — a [`QuantizedEngine`].
#[derive(Debug, Clone)]
pub struct QuantChain {
    plan: InferencePlan,
    cores: Vec<QTensor>,
    dest_maps: Vec<DestMap>,
    prep_run: usize,
    prep_src_starts: Vec<usize>,
    /// Per-stage `(prod_shift, out_shift)` in execution order — the same
    /// [`alignment`] results the sequential engine resolves per call,
    /// frozen here because the stage formats are construction-frozen.
    shifts: Vec<(u32, u32)>,
    input_format: QFormat,
    output_format: QFormat,
    rows: usize,
    cols: usize,
    /// Final-stage fused activation, copied from the engine — applied
    /// inside the last stage's requantization epilogue at any cut.
    activation: Activation,
}

impl QuantChain {
    /// Builds the chain from a calibrated engine (shares the quantized
    /// cores; no float reference work happens here or later).
    ///
    /// # Errors
    ///
    /// None in practice — kept fallible for parity with
    /// [`FloatChain::new`].
    pub fn new(engine: &QuantizedEngine) -> Result<Self> {
        let plan = engine.plan().clone();
        let mut shifts = Vec::with_capacity(plan.stages().len());
        let mut in_format = engine.input_format();
        for (idx, stage) in plan.stages().iter().enumerate() {
            let out_format = engine.stage_formats()[idx];
            shifts.push(alignment(
                engine.cores()[stage.h - 1].format(),
                in_format,
                out_format,
            ));
            in_format = out_format;
        }
        let prep = engine.prep_plan();
        Ok(QuantChain {
            cores: engine.cores().to_vec(),
            dest_maps: engine.dest_maps().to_vec(),
            prep_run: prep.run,
            prep_src_starts: prep.src_starts.clone(),
            shifts,
            input_format: engine.input_format(),
            output_format: *engine.stage_formats().last().expect("d >= 1"),
            rows: engine.num_rows(),
            cols: engine.num_cols(),
            activation: engine.activation(),
            plan,
        })
    }
}

impl StageChain for QuantChain {
    type Code = i16;
    type Report = QMatmulReport;

    fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    fn num_rows(&self) -> usize {
        self.rows
    }

    fn num_cols(&self) -> usize {
        self.cols
    }

    fn prepare(&self, xs: &[f64], b: usize, c0: usize, w: usize, dst: &mut [i16]) {
        // Quantize-on-copy into the Eqn. (8) layout, restricted to the
        // chunk's columns — the same element-wise quantize the sequential
        // engine applies, so the codes agree bit-for-bit.
        let run = self.prep_run;
        for (i, &src) in self.prep_src_starts.iter().enumerate() {
            for e in 0..run {
                let d0 = (i * run + e) * w;
                let s0 = (src + e) * b + c0;
                for j in 0..w {
                    dst[d0 + j] = self.input_format.quantize(xs[s0 + j]);
                }
            }
        }
    }

    fn run_stage(
        &self,
        idx: usize,
        input: &[i16],
        output: &mut [i16],
        w: usize,
        report: &mut QMatmulReport,
    ) -> Result<()> {
        let stage = &self.plan.stages()[idx];
        let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
        let (prod_shift, out_shift) = self.shifts[idx];
        let last = idx + 1 == self.plan.stages().len();
        let stage_report = if last && self.activation == Activation::Relu {
            qmatmul_raw_mapped_relu(
                self.cores[stage.h - 1].codes(),
                &input[..k * cols * w],
                rows,
                k,
                cols,
                w,
                prod_shift,
                out_shift,
                &mut output[..rows * cols * w],
                &self.dest_maps[idx],
            )
        } else {
            qmatmul_raw_mapped(
                self.cores[stage.h - 1].codes(),
                &input[..k * cols * w],
                rows,
                k,
                cols,
                w,
                prod_shift,
                out_shift,
                &mut output[..rows * cols * w],
                &self.dest_maps[idx],
            )
        };
        *report = report.merged(&stage_report);
        Ok(())
    }

    fn finish(&self, codes: &[i16], ys: &mut [f64], b: usize, c0: usize, w: usize) {
        for o in 0..self.rows {
            for j in 0..w {
                ys[o * b + c0 + j] = self.output_format.dequantize(codes[o * w + j]);
            }
        }
    }

    fn merge(into: &mut QMatmulReport, other: &QMatmulReport) {
        *into = into.merged(other);
    }
}

/// Merged accounting of one pipelined batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipeReport {
    /// Float arithmetic counters (zero for a quantized pipeline).
    pub ops: OpCount,
    /// Quantized saturation counters (zero for a float pipeline) —
    /// bit-identical to the sequential [`QuantizedEngine`] report.
    pub quant: QMatmulReport,
    /// Scheduling telemetry of the run (chunks, handoffs, stalls).
    pub run: PipeRunStats,
}

#[derive(Debug, Clone)]
enum Inner {
    Float(StagePipeline<FloatChain>),
    Quant(StagePipeline<QuantChain>),
}

/// A float or quantized TT layer executing pipeline-parallel (module
/// docs) — the serving-facing wrapper `tie-serve` registers next to the
/// sequential [`CompactEngine`] / [`QuantizedEngine`].
#[derive(Debug, Clone)]
pub struct PipelinedEngine {
    inner: Inner,
    /// Per-sample traffic of the wrapped engine plus the final-stage park
    /// copy (`M` elements the sequential path writes straight into the
    /// caller's buffer, but a pipeline must stage in its output slab).
    bytes_moved: u64,
    elided: u64,
}

impl PipelinedEngine {
    /// Pipelines a float engine. The chain re-derives the engine's maps
    /// from its shape and clones its unfolded cores — outputs are
    /// bit-identical to [`CompactEngine::matvec_batch_into`].
    ///
    /// # Errors
    ///
    /// Propagates invalid [`PipelineConfig`] values.
    pub fn float(engine: &CompactEngine<f64>, config: PipelineConfig) -> Result<Self> {
        let park = engine.matrix().shape().num_rows() as u64 * std::mem::size_of::<f64>() as u64;
        Ok(PipelinedEngine {
            inner: Inner::Float(StagePipeline::new(FloatChain::new(engine)?, config)?),
            bytes_moved: engine.bytes_moved_per_sample() + park,
            elided: engine.transform_elided_bytes_per_sample(),
        })
    }

    /// Pipelines a quantized engine; codes and saturation counts are
    /// bit-identical to [`QuantizedEngine::matvec_batch_into`].
    ///
    /// # Errors
    ///
    /// Propagates invalid [`PipelineConfig`] values.
    pub fn quantized(engine: &QuantizedEngine, config: PipelineConfig) -> Result<Self> {
        let park = engine.num_rows() as u64 * std::mem::size_of::<i16>() as u64;
        Ok(PipelinedEngine {
            inner: Inner::Quant(StagePipeline::new(QuantChain::new(engine)?, config)?),
            bytes_moved: engine.bytes_moved_per_sample() + park,
            elided: engine.transform_elided_bytes_per_sample(),
        })
    }

    /// Output length `M`.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        match &self.inner {
            Inner::Float(p) => p.chain().num_rows(),
            Inner::Quant(p) => p.chain().num_rows(),
        }
    }

    /// Input length `N`.
    #[must_use]
    pub fn num_cols(&self) -> usize {
        match &self.inner {
            Inner::Float(p) => p.chain().num_cols(),
            Inner::Quant(p) => p.chain().num_cols(),
        }
    }

    /// True when the wrapped datapath is the 16-bit fixed-point one.
    #[must_use]
    pub fn is_quantized(&self) -> bool {
        matches!(self.inner, Inner::Quant(_))
    }

    /// Pipeline stages actually running (requested depth clamped to `d`).
    #[must_use]
    pub fn depth(&self) -> usize {
        match &self.inner {
            Inner::Float(p) => p.depth(),
            Inner::Quant(p) => p.depth(),
        }
    }

    /// Columns per streamed chunk.
    #[must_use]
    pub fn micro_batch(&self) -> usize {
        match &self.inner {
            Inner::Float(p) => p.micro_batch(),
            Inner::Quant(p) => p.micro_batch(),
        }
    }

    /// The planner's chosen cut points.
    #[must_use]
    pub fn cut_plan(&self) -> &CutPlan {
        match &self.inner {
            Inner::Float(p) => p.cut_plan(),
            Inner::Quant(p) => p.cut_plan(),
        }
    }

    /// Cumulative per-stage occupancy/handoff/stall counters.
    #[must_use]
    pub fn stage_counters(&self) -> Vec<StageCounterSnapshot> {
        match &self.inner {
            Inner::Float(p) => p.stage_counters(),
            Inner::Quant(p) => p.stage_counters(),
        }
    }

    /// Bytes moved per sample by pure copying (wrapped engine's input
    /// preparation plus the final-stage park copy).
    #[must_use]
    pub fn bytes_moved_per_sample(&self) -> u64 {
        self.bytes_moved
    }

    /// Bytes of permutation traffic per sample elided by the fused write
    /// epilogues — unchanged by pipelining: cut boundaries reuse the same
    /// composed maps, so no permutation pass reappears.
    #[must_use]
    pub fn transform_elided_bytes_per_sample(&self) -> u64 {
        self.elided
    }

    /// Pipelined batched matvec (`xs` row-major `N × b` batch inner-most,
    /// `ys` `M × b`) — bit-identical to the sequential engine's outputs at
    /// any depth, micro-batch, and pool size.
    ///
    /// # Errors
    ///
    /// Wrong buffer lengths or `b == 0`.
    pub fn matvec_batch_into(&self, xs: &[f64], b: usize, ys: &mut [f64]) -> Result<PipeReport> {
        match &self.inner {
            Inner::Float(p) => {
                let (ops, run) = p.matvec_batch_into(xs, b, ys)?;
                Ok(PipeReport {
                    ops,
                    quant: QMatmulReport::default(),
                    run,
                })
            }
            Inner::Quant(p) => {
                let (quant, run) = p.matvec_batch_into(xs, b, ys)?;
                Ok(PipeReport {
                    ops: OpCount::default(),
                    quant,
                    run,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::QuantConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_tensor::{init, Tensor};
    use tie_tt::{TtMatrix, TtShape};

    fn layer(seed: u64) -> TtMatrix<f64> {
        let shape = TtShape::uniform_rank(vec![3, 2, 4], vec![4, 2, 3], 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TtMatrix::random(&mut rng, &shape, 0.5).unwrap()
    }

    #[test]
    fn quant_pipeline_matches_sequential_bitwise_with_reports() {
        let engine = QuantizedEngine::new(layer(40), QuantConfig::default()).unwrap();
        let (n, m) = (engine.num_cols(), engine.num_rows());
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        for depth in [1, 2, 3] {
            for micro in [1, 4] {
                let pipe = PipelinedEngine::quantized(
                    &engine,
                    PipelineConfig {
                        depth,
                        micro_batch: micro,
                    },
                )
                .unwrap();
                let b = 6;
                let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
                let mut want = vec![0.0f64; m * b];
                let seq = engine.matvec_batch_into(xs.data(), b, &mut want).unwrap();
                let mut got = vec![0.0f64; m * b];
                let rep = pipe.matvec_batch_into(xs.data(), b, &mut got).unwrap();
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "depth {depth} micro {micro}");
                }
                // Saturation counters are per-output-element: chunk sums
                // must equal the sequential report exactly.
                assert_eq!(rep.quant, seq);
                assert_eq!(rep.run.handoffs, rep.run.chunks * (rep.run.depth - 1));
            }
        }
    }

    #[test]
    fn fused_relu_quant_pipeline_matches_sequential_bitwise() {
        // The final-stage ReLU epilogue must survive pipelining: codes and
        // saturation reports stay bitwise equal to the sequential fused
        // engine at every cut.
        let engine = QuantizedEngine::new(layer(45), QuantConfig::default())
            .unwrap()
            .with_activation(tie_core::Activation::Relu);
        let (n, m) = (engine.num_cols(), engine.num_rows());
        let mut rng = ChaCha8Rng::seed_from_u64(46);
        let b = 5;
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
        let mut want = vec![0.0f64; m * b];
        let seq = engine.matvec_batch_into(xs.data(), b, &mut want).unwrap();
        for depth in [1, 2, 3] {
            let pipe = PipelinedEngine::quantized(
                &engine,
                PipelineConfig {
                    depth,
                    micro_batch: 2,
                },
            )
            .unwrap();
            let mut got = vec![0.0f64; m * b];
            let rep = pipe.matvec_batch_into(xs.data(), b, &mut got).unwrap();
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "depth {depth}");
            }
            assert_eq!(rep.quant, seq);
            assert!(got.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn float_pipeline_engine_matches_compact_engine() {
        let engine = CompactEngine::new(layer(42)).unwrap();
        let shape = engine.matrix().shape();
        let (n, m) = (shape.num_cols(), shape.num_rows());
        let pipe = PipelinedEngine::float(
            &engine,
            PipelineConfig {
                depth: 3,
                micro_batch: 2,
            },
        )
        .unwrap();
        assert!(!pipe.is_quantized());
        assert_eq!((pipe.num_rows(), pipe.num_cols()), (m, n));
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let b = 5;
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![n * b], 1.0);
        let mut want = vec![0.0f64; m * b];
        engine.matvec_batch_into(xs.data(), b, &mut want).unwrap();
        let mut got = vec![0.0f64; m * b];
        let rep = pipe.matvec_batch_into(xs.data(), b, &mut got).unwrap();
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
        assert_eq!(rep.quant, QMatmulReport::default());
        assert!(rep.ops.mults > 0);
    }

    #[test]
    fn pipelined_cycles_model_degenerates_and_overlaps() {
        use crate::stats::{RunStats, StageStats};
        let engine = CompactEngine::new(layer(44)).unwrap();
        let cut2 = tie_core::pipeline::plan_cuts(engine.plan(), 2);
        let cut1 = tie_core::pipeline::plan_cuts(engine.plan(), 1);
        let stages: Vec<StageStats> = engine
            .plan()
            .stages()
            .iter()
            .map(|s| StageStats {
                h: s.h,
                cycles: s.muls(),
                ..StageStats::default()
            })
            .collect();
        let run = RunStats { stages };
        // depth 1 or a single chunk: no overlap, the sequential count.
        assert_eq!(run.pipelined_cycles(&cut1, 8), run.cycles());
        assert_eq!(run.pipelined_cycles(&cut2, 1), run.cycles());
        // Real pipelining strictly helps and is bounded below by the
        // bottleneck stage's share.
        let over = run.pipelined_cycles(&cut2, 8);
        assert!(over < run.cycles());
        assert!(over >= run.cycles().div_ceil(2));
    }
}
