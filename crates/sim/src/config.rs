use tie_quant::QFormat;
use tie_tensor::{Result, TensorError};

/// When activation formats are chosen (see
/// [`QuantConfig::calibrate_activations`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CalibrationMode {
    /// Calibrate **once at load time** from a seeded probe set (the
    /// default): `load_layer` traces [`QuantConfig::probe_count`] random
    /// probe vectors through the float reference engine, memoizes the
    /// per-stage maxima on the loaded layer, and every subsequent run
    /// reuses those formats. Steady-state `run_batch` therefore performs
    /// **zero** float reference work, and batched runs are bit-identical
    /// to the same samples run one at a time (formats no longer depend on
    /// the batch contents). This models an ASIC flow's offline
    /// fixed-point scaling pass.
    #[default]
    OneShot,
    /// Re-calibrate from float traces of the actual inputs on **every
    /// batch** (the legacy behavior, up to 8 traced samples per batch).
    /// Tightest formats for wildly non-stationary inputs, at the cost of
    /// float reference traces on the hot path — keep it for refresh runs
    /// and A/B experiments, not serving.
    PerBatch,
}

/// Quantization configuration of the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantConfig {
    /// Format of stored weights (tensor-core elements).
    pub weight_format: QFormat,
    /// Format of activations / intermediate `V_h` values. When
    /// `calibrate_activations` is set this is only the fallback.
    pub activation_format: QFormat,
    /// If true (default), each stage's output format is calibrated from a
    /// float trace — at load time over the probe set
    /// ([`CalibrationMode::OneShot`]) or per batch
    /// ([`CalibrationMode::PerBatch`]) — modeling the per-layer
    /// fixed-point scaling an ASIC flow would choose offline.
    pub calibrate_activations: bool,
    /// If true (default), each core's weight format is calibrated to its
    /// own max-abs at load time; otherwise `weight_format` is used as-is.
    pub calibrate_weights: bool,
    /// When activation calibration happens (default
    /// [`CalibrationMode::OneShot`]).
    pub calibration: CalibrationMode,
    /// Probe vectors traced per layer for one-shot calibration.
    pub probe_count: usize,
    /// Seed of the deterministic probe generator (uniform ±`probe_amplitude`
    /// components; network loads propagate the probes layer to layer so
    /// deeper layers calibrate at realistic amplitudes).
    pub probe_seed: u64,
    /// Max-abs of the probe components (default 1.0, the usual normalized-
    /// activation convention). One-shot formats are chosen for inputs of
    /// this amplitude; raise it (or switch to
    /// [`CalibrationMode::PerBatch`]) when feeding unnormalized inputs,
    /// exactly as an offline ASIC calibration would use representative
    /// data.
    pub probe_amplitude: f64,
    /// Headroom multiplier applied to probe maxima before format
    /// selection. One-shot formats must cover inputs the probes never
    /// saw, so the margin is wider than the legacy per-batch 1.05/1.25;
    /// the cost is only `log2(margin)` of the 16-bit depth (≈ 0.6 bits
    /// at the default 1.5), leaving SQNR far above the 40 dB floor.
    pub probe_margin: f64,
}

impl QuantConfig {
    /// This configuration with a different calibration headroom margin —
    /// the knob the autotuner searches and the saturation re-probe loop
    /// widens.
    ///
    /// # Panics
    ///
    /// Panics when `margin` is not positive and finite.
    #[must_use]
    pub fn with_probe_margin(self, margin: f64) -> Self {
        assert!(
            margin > 0.0 && margin.is_finite(),
            "probe margin must be positive and finite, got {margin}"
        );
        QuantConfig {
            probe_margin: margin,
            ..self
        }
    }
}

impl Default for QuantConfig {
    fn default() -> Self {
        QuantConfig {
            weight_format: QFormat::new(12).expect("12 < 16"),
            activation_format: QFormat::new(8).expect("8 < 16"),
            calibrate_activations: true,
            calibrate_weights: true,
            calibration: CalibrationMode::OneShot,
            probe_count: 8,
            probe_seed: 0x71e5_c0de,
            probe_amplitude: 1.0,
            probe_margin: 1.5,
        }
    }
}

/// The TIE design configuration (paper Table 5).
///
/// `Default` is the fabricated prototype: 16 PEs × 16 MACs, 16-bit
/// quantization, 1000 MHz, 16 KB weight SRAM and two 384 KB working
/// SRAMs.
///
/// # Example
///
/// ```
/// use tie_sim::TieConfig;
/// let cfg = TieConfig::default();
/// assert_eq!(cfg.n_pe * cfg.n_mac, 256);
/// assert_eq!(cfg.peak_ops_per_sec(), 512e9); // 256 MACs × 2 ops × 1 GHz
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TieConfig {
    /// Processing elements (columns of the output block).
    pub n_pe: usize,
    /// MAC units per PE (rows of the output block).
    pub n_mac: usize,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// Weight SRAM capacity in bytes (16 KB holds 8192 16-bit weights).
    pub weight_sram_bytes: usize,
    /// Capacity of **each** of the two working SRAMs, in bytes.
    pub working_sram_bytes: usize,
    /// Working-SRAM bank (component SRAM) count per copy; the paper
    /// partitions into groups of component SRAMs — the number of banks
    /// bounds how many scattered elements one cycle can deliver.
    pub working_sram_banks: usize,
    /// Extra cycles charged per PE-array pass (one `(row_tile, pe_tile)`
    /// block): models pipeline fill/drain that the paper's idealized
    /// Fig. 7 schedule hides. 0 (the default) reproduces the paper's
    /// steady-state accounting.
    pub pass_overhead_cycles: u64,
    /// Datapath quantization.
    pub quant: QuantConfig,
}

impl Default for TieConfig {
    fn default() -> Self {
        TieConfig {
            n_pe: 16,
            n_mac: 16,
            freq_mhz: 1000.0,
            weight_sram_bytes: 16 * 1024,
            working_sram_bytes: 384 * 1024,
            working_sram_banks: 16,
            pass_overhead_cycles: 0,
            quant: QuantConfig::default(),
        }
    }
}

impl TieConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero-sized resources
    /// or a bank count below the PE count (the read scheme must deliver
    /// `n_pe` elements per cycle).
    pub fn validate(&self) -> Result<()> {
        if self.n_pe == 0 || self.n_mac == 0 {
            return Err(TensorError::InvalidArgument {
                message: "PE and MAC counts must be nonzero".into(),
            });
        }
        if self.freq_mhz <= 0.0 {
            return Err(TensorError::InvalidArgument {
                message: "frequency must be positive".into(),
            });
        }
        if self.weight_sram_bytes == 0 || self.working_sram_bytes == 0 {
            return Err(TensorError::InvalidArgument {
                message: "SRAM capacities must be nonzero".into(),
            });
        }
        if self.working_sram_banks < self.n_pe {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "need at least n_pe = {} working-SRAM banks, got {}",
                    self.n_pe, self.working_sram_banks
                ),
            });
        }
        Ok(())
    }

    /// Weight SRAM capacity in 16-bit elements.
    pub fn weight_capacity_elems(&self) -> usize {
        self.weight_sram_bytes / 2
    }

    /// Per-copy working SRAM capacity in 16-bit elements.
    pub fn working_capacity_elems(&self) -> usize {
        self.working_sram_bytes / 2
    }

    /// Peak MAC throughput in ops/s (multiply + accumulate = 2 ops, the
    /// convention of the paper's TOPS numbers).
    pub fn peak_ops_per_sec(&self) -> f64 {
        (self.n_pe * self.n_mac) as f64 * 2.0 * self.freq_mhz * 1e6
    }

    /// Converts a cycle count to seconds at the configured clock.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.freq_mhz * 1e6)
    }

    /// The analytic [`tie_core::CostModel`] projection of this
    /// configuration (PE/MAC geometry + pass overhead) — the scoring hook
    /// `TieAccelerator::predict_cycles` and the deployment autotuner share.
    #[must_use]
    pub fn cost_model(&self) -> tie_core::CostModel {
        tie_core::CostModel {
            n_pe: self.n_pe,
            n_mac: self.n_mac,
            pass_overhead_cycles: self.pass_overhead_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table5() {
        let c = TieConfig::default();
        assert_eq!(c.n_pe, 16);
        assert_eq!(c.n_mac, 16);
        assert_eq!(c.freq_mhz, 1000.0);
        assert_eq!(c.weight_capacity_elems(), 8192); // "up to 8192 16-bit weights"
        assert_eq!(c.working_capacity_elems(), 196_608); // 384 KB / 2
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let c = TieConfig {
            n_pe: 0,
            ..TieConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TieConfig {
            working_sram_banks: 8,
            ..TieConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TieConfig {
            freq_mhz: 0.0,
            ..TieConfig::default()
        };
        assert!(c.validate().is_err());
        let c = TieConfig {
            weight_sram_bytes: 0,
            ..TieConfig::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn peak_ops_and_time_conversion() {
        let c = TieConfig::default();
        assert_eq!(c.peak_ops_per_sec(), 512e9);
        assert!((c.cycles_to_seconds(1000) - 1e-6).abs() < 1e-15);
    }
}
