//! A standalone quantized compact-scheme executor ([`QuantizedEngine`]):
//! the bit-accurate TIE datapath packaged as a serving-grade engine.
//!
//! [`crate::TieAccelerator`] is the cycle-accurate model — it carries the
//! SRAM/PE bookkeeping a performance study needs. `QuantizedEngine` is
//! the same arithmetic with the bookkeeping stripped: the unfolded cores
//! quantized once at construction (with one-shot probe calibration of the
//! activation formats), every stage a single [`tie_quant::qmatmul`]-exact
//! GEMM over the whole batch, and the inter-stage Transforms as
//! precomputed gather copies — a drop-in quantized counterpart of
//! [`CompactEngine`]'s `matvec_batch_into`, suitable as a serving backend.
//!
//! Its codes are produced by the same `qmatmul` kernel family the
//! simulator's fast path uses, so its outputs are bit-identical to the
//! accelerator run with the same formats. Since the fused-epilogue
//! rework, the inter-stage Transforms no longer exist as copies at all:
//! each stage's quantized GEMM scatters its codes straight into the next
//! stage's layout through the composed affine map of
//! [`tie_core::indexmap`].

use crate::accelerator::{probe_maxima, probe_vectors};
use crate::config::QuantConfig;
use std::sync::Mutex;
use tie_core::indexmap::{assemble_dest_map, prepare_copy_plan, stage_dest_map, CopyPlan};
use tie_core::{Activation, CompactEngine, InferencePlan};
use tie_quant::{qmatmul_raw_mapped, qmatmul_raw_mapped_relu, QFormat, QMatmulReport, QTensor};
use tie_tensor::linalg::DestMap;
use tie_tensor::{Result, TensorError};
use tie_tt::{TtMatrix, TtShape};

/// A TT layer compiled to the 16-bit fixed-point compact scheme.
///
/// # Example
///
/// ```
/// use tie_sim::{QuantConfig, QuantizedEngine};
/// use tie_tt::{TtMatrix, TtShape};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 2)?;
/// let layer = TtMatrix::<f64>::random(&mut rng, &shape, 0.5)?;
/// let engine = QuantizedEngine::new(layer, QuantConfig::default())?;
/// let xs = vec![0.25f64; 16 * 2]; // batch of 2, element-major
/// let mut ys = vec![0.0f64; 16 * 2];
/// let report = engine.matvec_batch_into(&xs, 2, &mut ys)?;
/// assert!(report.is_clean());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct QuantizedEngine {
    shape: TtShape,
    plan: InferencePlan,
    /// Quantized unfolded stage matrices `G̃_1 … G̃_d` (0-based core index).
    cores: Vec<QTensor>,
    /// Prepared-input activation format (one-shot probe calibration).
    input_format: QFormat,
    /// Per-stage output formats, in plan-stage order, post alignment
    /// clamping — fixed at construction, so every batch is bit-identical
    /// to the same samples run one at a time.
    stage_formats: Vec<QFormat>,
    /// Fused write epilogues, one per stage in execution order: composed
    /// Transform maps for `h = d … 2`, the output-assembly map last.
    dest_maps: Vec<DestMap>,
    /// Minimal block-copy plan for the input layout (Eqn. (8)).
    prep_plan: CopyPlan,
    /// Activation fused into the final stage's requantization epilogue —
    /// applied to the clipped 32-bit code before narrowing, exactly like
    /// the TIE PE's output pass. Saturation reports are unchanged by it.
    activation: Activation,
    /// Ping-pong code scratch, grown on demand and reused across calls.
    workspace: Mutex<QWorkspace>,
}

/// Reusable i16 scratch for the stage pipeline (the two working SRAMs).
#[derive(Debug, Default)]
struct QWorkspace {
    ping: Vec<i16>,
    pong: Vec<i16>,
}

impl Clone for QuantizedEngine {
    fn clone(&self) -> Self {
        QuantizedEngine {
            shape: self.shape.clone(),
            plan: self.plan.clone(),
            cores: self.cores.clone(),
            input_format: self.input_format,
            stage_formats: self.stage_formats.clone(),
            dest_maps: self.dest_maps.clone(),
            prep_plan: self.prep_plan.clone(),
            activation: self.activation,
            // Scratch is per-engine state, not semantic state.
            workspace: Mutex::new(QWorkspace::default()),
        }
    }
}

/// Compile-time audit: the serving layer shares the engine across worker
/// threads behind `Arc`; all state is immutable after construction except
/// the `Mutex`-guarded scratch.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    let _ = assert_send_sync::<QuantizedEngine>;
};

impl QuantizedEngine {
    /// Compiles one TT layer to the quantized compact scheme.
    ///
    /// Weights are quantized per core (max-abs calibrated when
    /// `quant.calibrate_weights`); activation formats come from a
    /// one-shot trace of the seeded probe set whenever
    /// `quant.calibrate_activations` is set — the engine always
    /// calibrates at construction (there is no per-batch refresh here:
    /// a serving backend must be deterministic across batch shapes).
    ///
    /// # Errors
    ///
    /// Propagates shape errors from plan or transform construction.
    pub fn new(matrix: TtMatrix<f64>, quant: QuantConfig) -> Result<Self> {
        let reference = CompactEngine::new(matrix)?;
        let shape = reference.matrix().shape().clone();
        let plan = reference.plan().clone();
        let d = shape.ndim();

        let mut weight_formats = Vec::with_capacity(d);
        let mut cores = Vec::with_capacity(d);
        for g in reference.unfolded_cores() {
            let q = if quant.calibrate_weights && g.max_abs() > 0.0 {
                QTensor::quantize_calibrated(g)?
            } else {
                QTensor::quantize(g, quant.weight_format)
            };
            weight_formats.push(q.format());
            cores.push(q);
        }

        let (input_max, stage_max) = if quant.calibrate_activations && quant.probe_count > 0 {
            let probes = probe_vectors(
                quant.probe_seed,
                quant.probe_count,
                shape.num_cols(),
                quant.probe_amplitude,
            )?;
            let (im, sm, _) = probe_maxima(&reference, &probes)?;
            (im, sm)
        } else {
            (0.0, vec![0.0f64; d])
        };
        let select = |max_abs: f64| -> QFormat {
            if quant.calibrate_activations && max_abs > 0.0 {
                QFormat::calibrate(max_abs * quant.probe_margin).unwrap_or(quant.activation_format)
            } else {
                quant.activation_format
            }
        };
        let input_format = select(input_max);
        // Resolve the alignment clamp (a stage format finer than the
        // products it stores is meaningless) once, here, so the hot path
        // does pure table lookups.
        let mut stage_formats = Vec::with_capacity(d);
        let mut in_frac = input_format.frac_bits();
        for (idx, stage) in plan.stages().iter().enumerate() {
            let w_frac = weight_formats[stage.h - 1].frac_bits();
            let prod_frac = w_frac + in_frac;
            let mut f = select(stage_max[idx]);
            if f.frac_bits() > prod_frac {
                f = QFormat::new(prod_frac.min(15))?;
            }
            stage_formats.push(f);
            in_frac = f.frac_bits();
        }

        let mut dest_maps = Vec::with_capacity(d);
        for h in (2..=d).rev() {
            dest_maps.push(stage_dest_map(&shape, h)?);
        }
        dest_maps.push(assemble_dest_map(&shape)?);
        let prep_plan = prepare_copy_plan(&shape)?;

        Ok(QuantizedEngine {
            shape,
            plan,
            cores,
            input_format,
            stage_formats,
            dest_maps,
            prep_plan,
            activation: Activation::Identity,
            workspace: Mutex::new(QWorkspace::default()),
        })
    }

    /// Selects the activation fused into the final stage's requantization
    /// epilogue (builder style). ReLU applies to the clipped 32-bit code
    /// before narrowing, so the saturation report is bit-identical to the
    /// unfused engine's.
    #[must_use]
    pub fn with_activation(mut self, activation: Activation) -> Self {
        self.activation = activation;
        self.plan = self.plan.clone().with_activation(activation);
        self
    }

    /// The fused final-stage activation.
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The layer's TT layout.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// The execution plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// Output length `M`.
    pub fn num_rows(&self) -> usize {
        self.shape.num_rows()
    }

    /// Input length `N`.
    pub fn num_cols(&self) -> usize {
        self.shape.num_cols()
    }

    /// Bytes of inter-stage and output-assembly traffic the fused write
    /// epilogues eliminate per sample: every post-GEMM intermediate
    /// (`V_h`, `h ≥ 2`) plus the assembled output — one `i16` code each —
    /// no longer passes through a separate permutation copy.
    pub fn transform_elided_bytes_per_sample(&self) -> u64 {
        let elem = std::mem::size_of::<i16>() as u64;
        let stage_elems: u64 = self
            .plan
            .stages()
            .iter()
            .filter(|s| s.h >= 2)
            .map(|s| s.output_elems() as u64)
            .sum();
        (stage_elems + self.shape.num_rows() as u64) * elem
    }

    /// Bytes still moved per sample by pure copying — the Eqn. (8) input
    /// preparation (quantize-on-copy), the one bijection with no producing
    /// GEMM to fuse into.
    pub fn bytes_moved_per_sample(&self) -> u64 {
        self.shape.num_cols() as u64 * std::mem::size_of::<i16>() as u64
    }

    /// Prepared-input activation format.
    pub fn input_format(&self) -> QFormat {
        self.input_format
    }

    /// Per-stage activation formats (plan order, post alignment clamp).
    pub fn stage_formats(&self) -> &[QFormat] {
        &self.stage_formats
    }

    /// Per-core weight formats (0-based core index).
    pub fn weight_formats(&self) -> Vec<QFormat> {
        self.cores.iter().map(QTensor::format).collect()
    }

    /// Quantized unfolded cores (0-based core index) — the pipelined
    /// executor shares these verbatim so its arithmetic is the engine's.
    pub(crate) fn cores(&self) -> &[QTensor] {
        &self.cores
    }

    /// Fused write epilogues in execution order.
    pub(crate) fn dest_maps(&self) -> &[DestMap] {
        &self.dest_maps
    }

    /// The Eqn. (8) input copy plan.
    pub(crate) fn prep_plan(&self) -> &CopyPlan {
        &self.prep_plan
    }

    /// Batched quantized product: `xs` is row-major `N × b` (batch
    /// inner-most, the [`CompactEngine::matvec_batch_into`] convention),
    /// `ys` receives row-major `M × b`. Inputs are quantized to the
    /// calibrated input format, the `d` stages run as single quantized
    /// GEMMs over the whole batch, and outputs are dequantized from the
    /// final stage format. Steady-state the call performs **no heap
    /// allocation** (ping-pong scratch grown once).
    ///
    /// Returns the merged saturation report across all stages — the
    /// serving layer surfaces these counters in its stats.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `xs` is not `N·b`
    /// elements or `ys` is not `M·b` elements.
    pub fn matvec_batch_into(&self, xs: &[f64], b: usize, ys: &mut [f64]) -> Result<QMatmulReport> {
        let n = self.shape.num_cols();
        let m = self.shape.num_rows();
        if xs.len() != n * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![xs.len()],
                right: vec![n * b],
            });
        }
        if ys.len() != m * b {
            return Err(TensorError::ShapeMismatch {
                left: vec![ys.len()],
                right: vec![m * b],
            });
        }
        let mut report = QMatmulReport::default();
        if b == 0 {
            return Ok(report);
        }
        let d = self.shape.ndim();
        let mut guard = self
            .workspace
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let ws = &mut *guard;
        // Each buffer only ever holds a stage input, except that the final
        // stage parks its assembled codes (`M·b`) before the contiguous
        // dequantize — hence the `max(…, m)` term.
        let per_buf = self.plan.max_stage_input_elems().max(m) * b;
        if ws.ping.len() < per_buf {
            ws.ping.resize(per_buf, 0);
        }
        if ws.pong.len() < per_buf {
            ws.pong.resize(per_buf, 0);
        }
        let (mut cur, mut nxt) = (&mut ws.ping, &mut ws.pong);
        // Quantize straight into the prepared-input layout (Eqn. (8)):
        // minimal contiguous blocks, quantizing as we place.
        let rb = self.prep_plan.run * b;
        for (i, &src) in self.prep_plan.src_starts.iter().enumerate() {
            for e in 0..rb {
                cur[i * rb + e] = self.input_format.quantize(xs[src * b + e]);
            }
        }
        let mut in_format = self.input_format;
        for (idx, h) in (1..=d).rev().enumerate() {
            let stage = &self.plan.stages()[idx];
            let (rows, k, cols) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
            let out_format = self.stage_formats[idx];
            let (prod_shift, out_shift) =
                tie_quant::alignment(self.cores[h - 1].format(), in_format, out_format);
            // The GEMM's write loop evaluates the stage's composed
            // Transform map (or, for h = 1, the output-assembly map): the
            // codes land directly in the next stage's layout and the
            // separate permutation pass of the legacy pipeline is gone.
            let out_elems = rows * cols * b;
            // The final stage (h = 1) additionally fuses the activation
            // into the requantization epilogue — no separate pass over
            // the assembled codes.
            let stage_report = if h == 1 && self.activation == Activation::Relu {
                qmatmul_raw_mapped_relu(
                    self.cores[h - 1].codes(),
                    &cur[..k * cols * b],
                    rows,
                    k,
                    cols,
                    b,
                    prod_shift,
                    out_shift,
                    &mut nxt[..out_elems],
                    &self.dest_maps[idx],
                )
            } else {
                qmatmul_raw_mapped(
                    self.cores[h - 1].codes(),
                    &cur[..k * cols * b],
                    rows,
                    k,
                    cols,
                    b,
                    prod_shift,
                    out_shift,
                    &mut nxt[..out_elems],
                    &self.dest_maps[idx],
                )
            };
            report = report.merged(&stage_report);
            std::mem::swap(&mut cur, &mut nxt);
            in_format = out_format;
        }
        // The final stage wrote its codes in assembled order: dequantize
        // contiguously into the caller's buffer.
        for (y, &code) in ys.iter_mut().zip(cur[..m * b].iter()) {
            *y = in_format.dequantize(code);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TieAccelerator, TieConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_quant::error_stats;
    use tie_tensor::{init, Tensor};

    fn random_layer(seed: u64, shape: &TtShape) -> TtMatrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TtMatrix::random(&mut rng, shape, 0.5).unwrap()
    }

    #[test]
    fn tracks_float_reference_closely() {
        let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 4).unwrap();
        let layer = random_layer(300, &shape);
        let reference = CompactEngine::new(layer.clone()).unwrap();
        let engine = QuantizedEngine::new(layer, QuantConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(301);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![64], 1.0);
        let (want, _) = reference.matvec(&x).unwrap();
        let mut ys = vec![0.0f64; 64];
        let report = engine.matvec_batch_into(x.data(), 1, &mut ys).unwrap();
        assert!(report.is_clean(), "calibrated run must not saturate");
        let got = Tensor::from_vec(vec![64], ys).unwrap();
        let s = error_stats(&got, &want).unwrap();
        assert!(s.sqnr_db > 40.0, "SQNR {} dB", s.sqnr_db);
    }

    #[test]
    fn batched_bits_equal_single_sample_bits() {
        let shape = TtShape::uniform_rank(vec![3, 3], vec![4, 4], 3).unwrap();
        let layer = random_layer(302, &shape);
        let engine = QuantizedEngine::new(layer, QuantConfig::default()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(303);
        let b = 5usize;
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![16 * b], 1.0);
        // Interleave element-major: xs[j*b + c].
        let mut batch_ys = vec![0.0f64; 9 * b];
        engine
            .matvec_batch_into(xs.data(), b, &mut batch_ys)
            .unwrap();
        for c in 0..b {
            let x1: Vec<f64> = (0..16).map(|j| xs.data()[j * b + c]).collect();
            let mut y1 = vec![0.0f64; 9];
            engine.matvec_batch_into(&x1, 1, &mut y1).unwrap();
            for r in 0..9 {
                assert_eq!(
                    batch_ys[r * b + c].to_bits(),
                    y1[r].to_bits(),
                    "batch column {c} row {r} diverges"
                );
            }
        }
    }

    #[test]
    fn matches_accelerator_codes_bitwise() {
        // Same formats, same kernel arithmetic → the serving engine must
        // reproduce the cycle-accurate accelerator's outputs exactly.
        let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 4).unwrap();
        let layer = random_layer(304, &shape);
        let engine = QuantizedEngine::new(layer.clone(), QuantConfig::default()).unwrap();
        let mut tie = TieAccelerator::new(TieConfig::default()).unwrap();
        let loaded = tie.load_layer(layer).unwrap();
        assert_eq!(engine.input_format(), loaded.input_format());
        let mut rng = ChaCha8Rng::seed_from_u64(305);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![16], 1.0);
        let (want, _) = tie.run(&loaded, &x, false).unwrap();
        let mut ys = vec![0.0f64; 16];
        engine.matvec_batch_into(x.data(), 1, &mut ys).unwrap();
        for (a, b) in ys.iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fused_relu_matches_separate_relu_pass_bitwise() {
        // ReLU fused into the final requantization must equal the unfused
        // engine followed by a separate relu pass — outputs bitwise, and
        // the saturation report untouched by the epilogue.
        let shape = TtShape::uniform_rank(vec![3, 3], vec![4, 4], 3).unwrap();
        let layer = random_layer(308, &shape);
        let plain = QuantizedEngine::new(layer.clone(), QuantConfig::default()).unwrap();
        let fused = QuantizedEngine::new(layer, QuantConfig::default())
            .unwrap()
            .with_activation(Activation::Relu);
        assert_eq!(fused.activation(), Activation::Relu);
        assert_eq!(fused.plan().activation(), Activation::Relu);
        let mut rng = ChaCha8Rng::seed_from_u64(309);
        for b in [1usize, 4] {
            let xs: Tensor<f64> = init::uniform(&mut rng, vec![16 * b], 1.0);
            let mut want = vec![0.0f64; 9 * b];
            let r_plain = plain.matvec_batch_into(xs.data(), b, &mut want).unwrap();
            for v in &mut want {
                *v = if *v > 0.0 { *v } else { 0.0 };
            }
            let mut got = vec![0.0f64; 9 * b];
            let r_fused = fused.matvec_batch_into(xs.data(), b, &mut got).unwrap();
            assert_eq!(r_fused, r_plain, "reports must be epilogue-invariant");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.to_bits(), w.to_bits(), "b={b}");
            }
            assert!(got.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn rejects_wrong_lengths_and_accepts_empty_batch() {
        let shape = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        let engine =
            QuantizedEngine::new(random_layer(306, &shape), QuantConfig::default()).unwrap();
        let mut ys = vec![0.0f64; 4];
        assert!(engine.matvec_batch_into(&[0.0; 3], 1, &mut ys).is_err());
        assert!(engine
            .matvec_batch_into(&[0.0; 4], 1, &mut ys[..3])
            .is_err());
        let report = engine.matvec_batch_into(&[], 0, &mut []).unwrap();
        assert_eq!(report.outputs, 0);
    }

    #[test]
    fn clone_is_independent_and_identical() {
        let shape = TtShape::uniform_rank(vec![2, 3], vec![3, 2], 2).unwrap();
        let engine =
            QuantizedEngine::new(random_layer(307, &shape), QuantConfig::default()).unwrap();
        let cloned = engine.clone();
        let xs = vec![0.5f64; 6];
        let (mut y0, mut y1) = (vec![0.0f64; 6], vec![0.0f64; 6]);
        engine.matvec_batch_into(&xs, 1, &mut y0).unwrap();
        cloned.matvec_batch_into(&xs, 1, &mut y1).unwrap();
        assert_eq!(y0, y1);
    }
}
