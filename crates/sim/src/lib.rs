//! Cycle-accurate, bit-accurate simulator of the TIE accelerator
//! (paper §4, Figs. 7–10).
//!
//! The paper's prototype is a 16-PE × 16-MAC fixed-point engine at
//! 1000 MHz in 28 nm CMOS (Table 5 / Fig. 11). This crate models that
//! micro-architecture faithfully enough to regenerate the paper's
//! performance tables:
//!
//! * [`TieConfig`] — the Table 5 design configuration (PE/MAC counts,
//!   SRAM capacities, quantization widths), with the paper prototype as
//!   `Default`,
//! * [`WeightSram`] — the tensor-core weight memory with the Fig. 9
//!   *interleaved* intra-core allocation (sequential inter-core),
//! * [`WorkingSram`] — one of the two ping-pong activation memories. The
//!   inter-stage Transform is realized "for free" by the Algorithm-2
//!   ReArrange, modeled on the write path: each produced element is stored
//!   at its transformed position (writes have an `N_Gcol`-cycle slack per
//!   block), so the every-cycle reads are sequential rows and provably
//!   conflict-free under the skewed banking; any residual conflicts would
//!   be detected and serialized, never ignored,
//! * [`PeArray`] — the Fig. 7 dataflow: each cycle broadcasts one column
//!   of `G̃_h` to all PEs and one row element of `V'_{h+1}` to each PE;
//!   an `N_MAC × N_PE` output block completes every `N_Gcol` cycles,
//! * [`TieAccelerator`] — the full engine: loads a TT layer into weight
//!   SRAM (16-bit quantized), executes the `d` compact-scheme stages with
//!   ping-pong working SRAMs, applies the activation units on the final
//!   stage, and reports [`RunStats`] (cycles, memory traffic, MAC
//!   counts, utilization, saturation events).
//!
//! Functional outputs are cross-checked against the float
//! [`tie_core::CompactEngine`] reference in the test suite; cycle counts
//! are cross-checked against the closed-form tiling model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod config;
mod pe_array;
mod qengine;
mod qpipeline;
mod reprobe;
mod sram;
mod stats;

pub use accelerator::{LoadedLayer, LoadedNetwork, TieAccelerator};
pub use config::{CalibrationMode, QuantConfig, TieConfig};
pub use pe_array::PeArray;
pub use qengine::QuantizedEngine;
pub use qpipeline::{PipeReport, PipelinedEngine, QuantChain};
pub use reprobe::{quantize_with_reprobe, ReprobeAttempt, ReprobeConfig, ReprobeReport};
pub use sram::{WeightSram, WorkingSram};
pub use stats::{RunStats, StageStats};

pub use tie_tensor::{Result, TensorError};
