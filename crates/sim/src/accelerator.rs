//! The full TIE engine: main controller, weight SRAM, ping-pong working
//! SRAMs and the PE array (paper Fig. 8).

use crate::config::{CalibrationMode, TieConfig};
use crate::pe_array::{PeArray, StageOutcome};
use crate::sram::{WeightSram, WorkingSram};
use crate::stats::{RunStats, StageStats};
use tie_core::indexmap::stage_transform_map;
use tie_core::transform::{assemble_output, prepare_input, TransformMap};
use tie_core::{CompactEngine, InferencePlan};
use tie_quant::{qmatmul_raw_mapped, QFormat, QTensor};
use tie_tensor::linalg::DestMap;
use tie_tensor::{Result, Tensor, TensorError};
use tie_tt::{TtMatrix, TtShape};

/// The fused fast path's destination map for one stage over the batched
/// working-SRAM layout: `V_h` element `(p, col)` (with `col = blk·v_cols +
/// q_local` — sample-major column blocks) lands at row `p'`, column
/// `blk·cols_out + q'` of the destination SRAM, where `(p', q') =
/// TransformMap::map(p, q_local)`. Built from the composed affine map's
/// separable offset tables: the single-sample row/column contributions
/// split exactly at the `cols_out` place (no carries — the column part of
/// a destination offset is always `< cols_out`), so the batched tables are
/// a pure re-basing of the single-sample ones.
fn batched_stage_dest_map(shape: &TtShape, h: usize, batch: usize) -> Result<DestMap> {
    let t = TransformMap::new(shape, h)?;
    let map = stage_transform_map(shape, h)?;
    let (r0, c0) = map.offset_tables(t.rows_in, t.cols_in)?;
    let w = t.cols_out;
    let rebase = |v: usize, blk: usize| (v / w) * w * batch + blk * w + v % w;
    let row: Vec<usize> = r0.iter().map(|&v| rebase(v, 0)).collect();
    let mut col = Vec::with_capacity(c0.len() * batch);
    for blk in 0..batch {
        col.extend(c0.iter().map(|&v| rebase(v, blk)));
    }
    DestMap::new(row, col)
}

/// Deterministic probe generator for one-shot calibration (xorshift64 —
/// self-contained so calibration needs no RNG dependency and the probe
/// set is a pure function of `QuantConfig::probe_seed`).
struct ProbeRng(u64);

impl ProbeRng {
    fn new(seed: u64) -> Self {
        // xorshift has a fixed point at 0; mixing with an odd constant
        // keeps every seed (including 0) on a full-period orbit.
        ProbeRng(seed ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next value, uniform in `[-1, 1)`.
    fn next_unit(&mut self) -> f64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 11) as f64) * (2.0 / (1u64 << 53) as f64) - 1.0
    }

    fn vector(&mut self, len: usize, amplitude: f64) -> Result<Tensor<f64>> {
        Tensor::from_vec(
            vec![len],
            (0..len).map(|_| amplitude * self.next_unit()).collect(),
        )
    }
}

/// The seeded probe set for one-shot calibration of a layer with `len`
/// inputs.
pub(crate) fn probe_vectors(
    seed: u64,
    count: usize,
    len: usize,
    amplitude: f64,
) -> Result<Vec<Tensor<f64>>> {
    let mut rng = ProbeRng::new(seed);
    (0..count).map(|_| rng.vector(len, amplitude)).collect()
}

/// Traces `probes` through the float reference engine, returning
/// `(input_max, stage_max, probe_outputs)`. The outputs let network loads
/// propagate the probe set layer to layer, so deeper layers calibrate at
/// realistic amplitudes. Outputs are propagated *linearly* (no ReLU):
/// ReLU only shrinks magnitudes, so the resulting formats cover both the
/// linear and the rectified runtime paths.
pub(crate) fn probe_maxima(
    engine: &CompactEngine<f64>,
    probes: &[Tensor<f64>],
) -> Result<(f64, Vec<f64>, Vec<Tensor<f64>>)> {
    let d = engine.plan().stages().len();
    let mut input_max = 0.0f64;
    let mut stage_max = vec![0.0f64; d];
    let mut outputs = Vec::with_capacity(probes.len());
    for p in probes {
        let (y, trace) = engine.matvec_traced(p)?;
        input_max = input_max.max(trace.prepared_input.max_abs());
        for (sm, out) in stage_max.iter_mut().zip(&trace.stage_outputs) {
            *sm = sm.max(out.max_abs());
        }
        outputs.push(y);
    }
    Ok((input_max, stage_max, outputs))
}

/// A TT layer resident in the accelerator's weight SRAM.
///
/// Holds the layout, the per-core quantization formats chosen at load
/// time, the **memoized activation formats** from one-shot probe
/// calibration, and the float reference engine used for calibration and
/// functional cross-checking.
#[derive(Debug)]
pub struct LoadedLayer {
    shape: TtShape,
    plan: InferencePlan,
    weight_formats: Vec<QFormat>,
    engine: CompactEngine<f64>,
    /// Prepared-input format chosen at load time (probe calibration, or
    /// the configured fallback when calibration is off / per-batch).
    input_format: QFormat,
    /// Per-stage `V_h` output formats, in plan-stage order.
    stage_formats: Vec<QFormat>,
    /// Probe maxima behind `input_format` (0 when probes were skipped).
    input_max: f64,
    /// Probe maxima behind `stage_formats`, in plan-stage order.
    stage_max: Vec<f64>,
}

impl LoadedLayer {
    /// The layer's TT layout.
    pub fn shape(&self) -> &TtShape {
        &self.shape
    }

    /// The compact-scheme execution plan.
    pub fn plan(&self) -> &InferencePlan {
        &self.plan
    }

    /// Per-core weight quantization formats.
    pub fn weight_formats(&self) -> &[QFormat] {
        &self.weight_formats
    }

    /// The float reference engine.
    pub fn reference(&self) -> &CompactEngine<f64> {
        &self.engine
    }

    /// Prepared-input activation format memoized at load time.
    pub fn input_format(&self) -> QFormat {
        self.input_format
    }

    /// Per-stage activation formats memoized at load time (plan order).
    pub fn stage_formats(&self) -> &[QFormat] {
        &self.stage_formats
    }

    /// Max-abs of the prepared input over the calibration probe set
    /// (0 when probe calibration was skipped).
    pub fn probe_input_max(&self) -> f64 {
        self.input_max
    }

    /// Per-stage max-abs over the calibration probe set (plan order).
    pub fn probe_stage_max(&self) -> &[f64] {
        &self.stage_max
    }
}

/// A multi-layer TT network resident in the accelerator (see
/// [`TieAccelerator::load_network`]).
#[derive(Debug)]
pub struct LoadedNetwork {
    layers: Vec<LoadedLayer>,
    bases: Vec<usize>,
}

impl LoadedNetwork {
    /// The layers, in execution order.
    pub fn layers(&self) -> &[LoadedLayer] {
        &self.layers
    }

    /// Total stored weight elements across all layers.
    pub fn total_params(&self) -> usize {
        self.layers.iter().map(|l| l.shape.num_params()).sum()
    }
}

/// The TIE accelerator (paper Fig. 8): PE array + weight SRAM + two
/// working SRAMs under a main controller.
///
/// # Example
///
/// ```
/// use tie_sim::{TieAccelerator, TieConfig};
/// use tie_tt::{TtMatrix, TtShape};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), tie_tensor::TensorError> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 2)?;
/// let layer = TtMatrix::<f64>::random(&mut rng, &shape, 0.5)?;
/// let mut tie = TieAccelerator::new(TieConfig::default())?;
/// let loaded = tie.load_layer(layer)?;
/// let x = tie_tensor::Tensor::<f64>::filled(vec![16], 0.25)?;
/// let (y, stats) = tie.run(&loaded, &x, false)?;
/// assert_eq!(y.num_elements(), 16);
/// assert!(stats.cycles() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TieAccelerator {
    config: TieConfig,
    pe: PeArray,
    weight_sram: WeightSram,
    working: [WorkingSram; 2],
    /// Float reference traces performed for activation calibration
    /// (probe traces at load time + per-batch refresh traces). Lets
    /// tests assert that steady-state `run_batch` does zero float work.
    calibration_traces: u64,
}

impl TieAccelerator {
    /// Builds an accelerator from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns configuration-validation errors.
    pub fn new(config: TieConfig) -> Result<Self> {
        config.validate()?;
        Ok(TieAccelerator {
            pe: PeArray::new(config.n_pe, config.n_mac),
            weight_sram: WeightSram::new(config.n_mac, config.weight_capacity_elems()),
            working: [
                WorkingSram::new(config.working_sram_banks, config.working_capacity_elems()),
                WorkingSram::new(config.working_sram_banks, config.working_capacity_elems()),
            ],
            config,
            calibration_traces: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TieConfig {
        &self.config
    }

    /// Current weight SRAM occupancy in elements (padded words).
    pub fn weight_sram_used(&self) -> usize {
        self.weight_sram.used_elems()
    }

    /// Float reference traces performed for activation calibration since
    /// construction. With the default [`CalibrationMode::OneShot`] this
    /// grows only at `load_layer` / `load_network` time (probe set); with
    /// [`CalibrationMode::PerBatch`] it also grows by up to 8 per batch.
    pub fn calibration_traces(&self) -> u64 {
        self.calibration_traces
    }

    /// Chooses an activation format from a traced max-abs, falling back
    /// to the configured `activation_format`.
    fn select_format(&self, max_abs: f64, margin: f64) -> QFormat {
        if self.config.quant.calibrate_activations && max_abs > 0.0 {
            QFormat::calibrate(max_abs * margin).unwrap_or(self.config.quant.activation_format)
        } else {
            self.config.quant.activation_format
        }
    }

    /// Whether load-time probe calibration is active.
    fn one_shot(&self) -> bool {
        self.config.quant.calibrate_activations
            && self.config.quant.calibration == CalibrationMode::OneShot
            && self.config.quant.probe_count > 0
    }

    /// Derives the memoized load-time formats for one layer: probe
    /// calibration under [`CalibrationMode::OneShot`], the configured
    /// fallback otherwise. Returns the layer's calibration fields plus
    /// the probe outputs (empty when probes were skipped).
    #[allow(clippy::type_complexity)]
    fn calibrate_layer(
        &mut self,
        engine: &CompactEngine<f64>,
        probes: &[Tensor<f64>],
    ) -> Result<(QFormat, Vec<QFormat>, f64, Vec<f64>, Vec<Tensor<f64>>)> {
        let d = engine.plan().stages().len();
        let (input_max, stage_max, outputs) = if self.one_shot() {
            self.calibration_traces += probes.len() as u64;
            probe_maxima(engine, probes)?
        } else {
            (0.0, vec![0.0f64; d], Vec::new())
        };
        let margin = self.config.quant.probe_margin;
        let input_format = self.select_format(input_max, margin);
        let stage_formats = stage_max
            .iter()
            .map(|&m| self.select_format(m, margin))
            .collect();
        Ok((input_format, stage_formats, input_max, stage_max, outputs))
    }

    /// Quantizes and loads one TT layer into the weight SRAM (replacing
    /// any previous layer), checking the capacity constraints the paper's
    /// 16 KB budget implies.
    ///
    /// # Errors
    ///
    /// Returns capacity errors from the weight SRAM or working-SRAM
    /// feasibility (§3.2 bound), plus shape errors for invalid layers.
    pub fn load_layer(&mut self, matrix: TtMatrix<f64>) -> Result<LoadedLayer> {
        let shape = matrix.shape().clone();
        let plan = InferencePlan::new(&shape)?;
        // §3.2: the largest intermediate must fit one working SRAM copy.
        if plan.max_intermediate_elems() > self.config.working_capacity_elems() {
            return Err(TensorError::InvalidArgument {
                message: format!(
                    "peak intermediate {} elems exceeds working SRAM {}",
                    plan.max_intermediate_elems(),
                    self.config.working_capacity_elems()
                ),
            });
        }
        let engine = CompactEngine::new(matrix)?;
        let mut formats = Vec::with_capacity(shape.ndim());
        let mut quantized = Vec::with_capacity(shape.ndim());
        for g in engine.unfolded_cores() {
            let q = if self.config.quant.calibrate_weights && g.max_abs() > 0.0 {
                QTensor::quantize_calibrated(g)?
            } else {
                QTensor::quantize(g, self.config.quant.weight_format)
            };
            formats.push(q.format());
            quantized.push(q);
        }
        // One-shot activation calibration over the seeded probe set: the
        // formats are fixed here, so steady-state runs do zero float
        // reference work and batched runs are bit-identical to the same
        // samples run one at a time.
        let probes = if self.one_shot() {
            let q = &self.config.quant;
            probe_vectors(
                q.probe_seed,
                q.probe_count,
                shape.num_cols(),
                q.probe_amplitude,
            )?
        } else {
            Vec::new()
        };
        let (input_format, stage_formats, input_max, stage_max, _) =
            self.calibrate_layer(&engine, &probes)?;
        self.weight_sram.load(quantized)?;
        Ok(LoadedLayer {
            shape,
            plan,
            weight_formats: formats,
            engine,
            input_format,
            stage_formats,
            input_max,
            stage_max,
        })
    }

    /// Runs one inference `y = W x` on the loaded layer.
    ///
    /// `relu` applies the PE activation units to the final stage (set
    /// false to compare against the linear float reference).
    ///
    /// Returns the dequantized output and the full [`RunStats`].
    ///
    /// # Errors
    ///
    /// Returns shape errors for a wrong-length input and capacity errors
    /// if an intermediate overflows the working SRAM.
    pub fn run(
        &mut self,
        layer: &LoadedLayer,
        x: &Tensor<f64>,
        relu: bool,
    ) -> Result<(Tensor<f64>, RunStats)> {
        let n = layer.shape.num_cols();
        if x.ndim() != 1 || x.num_elements() != n {
            return Err(TensorError::ShapeMismatch {
                left: x.dims().to_vec(),
                right: vec![n],
            });
        }
        let xs = x.reshaped(vec![n, 1])?;
        let (ys, stats) = self.run_batch_layer(layer, &xs, relu, 0)?;
        Ok((ys.reshaped(vec![layer.shape.num_rows()])?, stats))
    }

    /// Runs a batch of inferences `Y = W X` (`xs` is `N × B`, one sample
    /// per column) in a single pass: the batch columns ride along as
    /// extra `V` columns of every stage — exactly how TIE executes CONV
    /// layers, where each output pixel is one column (paper Fig. 3).
    ///
    /// Each stage executes as **one quantized GEMM** over the whole
    /// batch (the fast path); the cycle/traffic model is fed the exact
    /// activity counts the cycle-level PE walk would produce, and the
    /// codes are bit-identical to it (see [`TieAccelerator::run_batch_walk`]).
    ///
    /// # Errors
    ///
    /// As [`TieAccelerator::run`], plus a capacity error if the batched
    /// intermediates exceed the working SRAM (chunk the batch then).
    pub fn run_batch(
        &mut self,
        layer: &LoadedLayer,
        xs: &Tensor<f64>,
        relu: bool,
    ) -> Result<(Tensor<f64>, RunStats)> {
        self.run_batch_layer(layer, xs, relu, 0)
    }

    /// Cycle-level reference executor: identical semantics (outputs,
    /// stats) to [`TieAccelerator::run_batch`], but every MAC is walked
    /// through the PE-array schedule one gather/broadcast at a time.
    /// Kept as the differential oracle for the fast path and as the
    /// before-side baseline of the quantized throughput bench.
    #[doc(hidden)]
    pub fn run_batch_walk(
        &mut self,
        layer: &LoadedLayer,
        xs: &Tensor<f64>,
        relu: bool,
    ) -> Result<(Tensor<f64>, RunStats)> {
        self.run_batch_inner(layer, xs, relu, 0, true)
    }

    fn run_layer(
        &mut self,
        layer: &LoadedLayer,
        x: &Tensor<f64>,
        relu: bool,
        core_base: usize,
    ) -> Result<(Tensor<f64>, RunStats)> {
        let n = layer.shape.num_cols();
        let xs = x.reshaped(vec![n, 1])?;
        let (ys, stats) = self.run_batch_layer(layer, &xs, relu, core_base)?;
        Ok((ys.reshaped(vec![layer.shape.num_rows()])?, stats))
    }

    fn run_batch_layer(
        &mut self,
        layer: &LoadedLayer,
        xs: &Tensor<f64>,
        relu: bool,
        core_base: usize,
    ) -> Result<(Tensor<f64>, RunStats)> {
        self.run_batch_inner(layer, xs, relu, core_base, false)
    }

    /// Activation formats for one batch: the memoized load-time formats
    /// under [`CalibrationMode::OneShot`] (zero float work), or a fresh
    /// float-trace refresh over up to 8 samples under
    /// [`CalibrationMode::PerBatch`].
    fn formats_for_batch(
        &mut self,
        layer: &LoadedLayer,
        xs: &Tensor<f64>,
        batch: usize,
    ) -> Result<(QFormat, Vec<QFormat>)> {
        let quant = self.config.quant;
        if !(quant.calibrate_activations && quant.calibration == CalibrationMode::PerBatch) {
            return Ok((layer.input_format, layer.stage_formats.clone()));
        }
        let d = layer.shape.ndim();
        let n = layer.shape.num_cols();
        // The format must cover every sample; tracing is capped at 8
        // samples with extra headroom standing in for the rest.
        let traced = batch.min(8);
        let mut input_max = 0.0f64;
        let mut stage_max = vec![0.0f64; d];
        for b in 0..traced {
            let col = xs.cols(b, b + 1)?.reshaped(vec![n])?;
            let (_, trace) = layer.engine.matvec_traced(&col)?;
            self.calibration_traces += 1;
            input_max = input_max.max(trace.prepared_input.max_abs());
            for (sm, out) in stage_max.iter_mut().zip(&trace.stage_outputs) {
                *sm = sm.max(out.max_abs());
            }
        }
        let margin = if traced < batch { 1.25 } else { 1.05 };
        let input_format = self.select_format(input_max, margin);
        let stage_formats = stage_max
            .iter()
            .map(|&m| self.select_format(m, margin))
            .collect();
        Ok((input_format, stage_formats))
    }

    #[allow(clippy::too_many_lines)]
    fn run_batch_inner(
        &mut self,
        layer: &LoadedLayer,
        xs: &Tensor<f64>,
        relu: bool,
        core_base: usize,
        walk: bool,
    ) -> Result<(Tensor<f64>, RunStats)> {
        let shape = &layer.shape;
        let d = shape.ndim();
        let n = shape.num_cols();
        if xs.ndim() != 2 || xs.dims()[0] != n {
            return Err(TensorError::ShapeMismatch {
                left: xs.dims().to_vec(),
                right: vec![n, 0],
            });
        }
        let batch = xs.dims()[1];
        let (input_format, stage_formats) = self.formats_for_batch(layer, xs, batch)?;

        // Stage the prepared inputs block-wise (sample-major columns) in
        // working SRAM 0.
        let n_d = shape.col_modes[d - 1];
        let cols_single = n / n_d;
        {
            let mut staged = Tensor::<f64>::zeros(vec![n_d, cols_single * batch]);
            for b in 0..batch {
                let col = xs.cols(b, b + 1)?.reshaped(vec![n])?;
                let xp = prepare_input(&col, shape)?;
                for r in 0..n_d {
                    for c in 0..cols_single {
                        staged.data_mut()[r * cols_single * batch + b * cols_single + c] =
                            xp.data()[r * cols_single + c];
                    }
                }
            }
            let qx = QTensor::quantize(&staged, input_format);
            self.working[0].load_matrix(&qx)?;
        }
        self.working[0].reset_counters();
        self.working[1].reset_counters();

        let mut stats = RunStats::default();
        let mut in_format = input_format;
        for (idx, stage) in layer.plan.stages().iter().enumerate() {
            let h = stage.h;
            let src_i = idx % 2;
            // Fixed-point alignment for this stage.
            let w_frac = layer.weight_formats[h - 1].frac_bits();
            let prod_frac = w_frac + in_format.frac_bits();
            let mut out_format = stage_formats[idx];
            if out_format.frac_bits() > prod_frac {
                out_format = QFormat::new(prod_frac.min(15))?;
            }
            let acc_frac = prod_frac.min(out_format.frac_bits() + 8);
            let prod_shift = prod_frac - acc_frac;
            let out_shift = acc_frac - out_format.frac_bits();

            // Write-side ReArrange (paper Algorithm 2 / Fig. 10): the
            // controller stores every produced V_h element directly at its
            // *transformed* position, so each next-stage read is a plain
            // sequential row fetch (conflict-free by construction) and the
            // Transform costs no cycles — the paper's "zero-cost matrix
            // transform". Batch columns keep their per-sample blocks. The
            // final stage stores V_1 raw for the drain.
            let tmap_out = if h >= 2 {
                Some(TransformMap::new(shape, h)?)
            } else {
                None
            };

            let (gr, gc, vc) = (stage.gtilde_rows, stage.gtilde_cols, stage.v_cols);
            let vc_total = vc * batch;
            // Split the working pair into disjoint src/dst borrows.
            let (left, right) = self.working.split_at_mut(1);
            let (src, dst) = if src_i == 0 {
                (&mut left[0], &mut right[0])
            } else {
                (&mut right[0], &mut left[0])
            };
            let out_block_cols = match &tmap_out {
                Some(t) => {
                    dst.allocate(t.rows_out, t.cols_out * batch)?;
                    t.cols_out
                }
                None => {
                    dst.allocate(gr, vc_total)?;
                    vc
                }
            };
            let w0 = self.weight_sram.reads();
            let r0 = src.reads();
            let c0 = src.conflict_extra_cycles();
            let weight_sram = &mut self.weight_sram;
            let n_pe = self.config.n_pe;
            let n_mac = self.config.n_mac;
            let core_idx = core_base + h - 1;
            let apply_relu = relu && h == 1;
            let outcome = if walk {
                let mut read_weights =
                    |rt: usize, col: usize| weight_sram.read_column(core_idx, rt, col);
                let src_ref = &mut *src;
                // Reads are sequential rows of the (already transformed)
                // stored matrix — the payoff of the write-side ReArrange.
                let mut read_acts = |gcol: usize, pt: usize| -> (Vec<i16>, u64) {
                    let mut positions = Vec::with_capacity(n_pe);
                    let mut live = Vec::with_capacity(n_pe);
                    for j in 0..n_pe {
                        let col = pt * n_pe + j;
                        if col < vc_total {
                            positions.push((gcol, col));
                            live.push(j);
                        }
                    }
                    let (vals, cycles) = src_ref.read_gather(&positions);
                    let mut row = vec![0i16; n_pe];
                    for (v, &j) in vals.into_iter().zip(&live) {
                        row[j] = v;
                    }
                    (row, cycles)
                };
                let dst_ref = &mut *dst;
                let tmap_ref = &tmap_out;
                let mut write_block = |rt: usize, pt: usize, block: &[Vec<i16>]| {
                    let live_rows = (gr - rt * n_mac).min(n_mac);
                    let mut items = Vec::with_capacity(live_rows * n_pe);
                    for j in 0..n_pe {
                        let col = pt * n_pe + j;
                        if col >= vc_total {
                            continue;
                        }
                        let (blk, q_local) = (col / vc, col % vc);
                        for (i, row) in block.iter().enumerate().take(live_rows) {
                            let mut v = row[j];
                            if apply_relu && v < 0 {
                                v = 0;
                            }
                            let (pr, qc) = match tmap_ref {
                                Some(t) => t.map(rt * n_mac + i, q_local),
                                None => (rt * n_mac + i, q_local),
                            };
                            items.push((pr, blk * out_block_cols + qc, v));
                        }
                    }
                    dst_ref.write_scatter(&items);
                };
                self.pe.run_stage(
                    gr,
                    gc,
                    vc_total,
                    &mut read_weights,
                    &mut read_acts,
                    &mut write_block,
                    prod_shift,
                    out_shift,
                    self.config.pass_overhead_cycles,
                )
            } else {
                // Fused fast path: the whole stage as one quantized GEMM
                // over the batch, bit-identical to the walk (same
                // ascending-k MAC order, same 24-bit clamp and
                // requantization — see `tie_quant::qmatmul`), with the
                // ReArrange evaluated inside the GEMM's write loop: every
                // produced code is stored straight at its transformed
                // position in the destination SRAM. No stage scratch, no
                // replay copy — the cycle/traffic model is fed the
                // closed-form activity counts of the Fig. 7 schedule.
                let row_tiles = gr.div_ceil(n_mac);
                let pe_tiles = vc_total.div_ceil(n_pe);
                debug_assert_eq!(
                    src.dims(),
                    (gc, vc_total),
                    "stage source must be the transformed V'_{{h+1}} matrix"
                );
                let dmap = match &tmap_out {
                    Some(_) => batched_stage_dest_map(shape, h, batch)?,
                    None => DestMap::identity(gr, vc_total),
                };
                let report = qmatmul_raw_mapped(
                    weight_sram.cores()[core_idx].codes(),
                    src.contents(),
                    gr,
                    gc,
                    vc_total,
                    1,
                    prod_shift,
                    out_shift,
                    dst.contents_mut(),
                    &dmap,
                );
                if apply_relu {
                    // The walk clamps each code before its store; clamping
                    // the fully written matrix afterwards is bit-identical
                    // because the map writes every destination exactly once.
                    for v in dst.contents_mut() {
                        if *v < 0 {
                            *v = 0;
                        }
                    }
                }
                // Traffic the walk would generate: one weight word per
                // (row_tile, pe_tile, gcol) broadcast, one element read
                // per live V' operand. The gathers are same-row
                // consecutive-column reads, so under the skewed banking
                // (validated n_banks >= n_pe) they are conflict-free by
                // construction — zero extra cycles, like the walk.
                weight_sram.charge_reads((row_tiles * pe_tiles * gc) as u64);
                src.charge_reads((row_tiles * gc * vc_total) as u64);
                // Write-word accounting replayed from the map alone: the
                // walk issues one `write_scatter` per (row-tile, pe-tile)
                // pass and pays one word per distinct bank that pass
                // touches. Same positions, same counts — no data moves.
                let w_cols = out_block_cols * batch;
                let mut banks = vec![false; self.config.working_sram_banks];
                let mut words = 0u64;
                for rt in 0..row_tiles {
                    let live_rows = (gr - rt * n_mac).min(n_mac);
                    for pt in 0..pe_tiles {
                        banks.fill(false);
                        for j in 0..n_pe {
                            let col = pt * n_pe + j;
                            if col >= vc_total {
                                continue;
                            }
                            for i in 0..live_rows {
                                let flat = dmap.offset(rt * n_mac + i, col);
                                let pr = flat / w_cols;
                                let bank = dst.bank_of(pr, flat - pr * w_cols);
                                if !banks[bank] {
                                    banks[bank] = true;
                                    words += 1;
                                }
                            }
                        }
                    }
                }
                dst.charge_writes(words);
                StageOutcome {
                    cycles: (row_tiles * pe_tiles) as u64
                        * (gc as u64 + self.config.pass_overhead_cycles),
                    macs: (gr * gc * vc_total) as u64,
                    acc_saturations: report.acc_saturations,
                    out_saturations: report.out_saturations,
                }
            };
            stats.stages.push(StageStats {
                h,
                cycles: outcome.cycles,
                macs: outcome.macs,
                weight_word_reads: self.weight_sram.reads() - w0,
                act_reads: src.reads() - r0,
                act_writes: dst.writes(),
                conflict_cycles: src.conflict_extra_cycles() - c0,
                acc_saturations: outcome.acc_saturations,
                out_saturations: outcome.out_saturations,
            });
            dst.reset_counters();
            in_format = out_format;
        }

        // Drain V_1 blocks from the final working SRAM and gather each
        // sample's output.
        let m = shape.num_rows();
        let final_sram = &self.working[d % 2];
        let (rows, _) = final_sram.dims();
        let m1 = shape.row_modes[0];
        let v1_cols = m / m1;
        debug_assert_eq!(rows, m1);
        let mut ys = Tensor::<f64>::zeros(vec![m, batch]);
        for b in 0..batch {
            let mut v1 = Tensor::<f64>::zeros(vec![m1, v1_cols]);
            for r in 0..m1 {
                for c in 0..v1_cols {
                    v1.data_mut()[r * v1_cols + c] =
                        in_format.dequantize(final_sram.peek(r, b * v1_cols + c));
                }
            }
            let y = assemble_output(&v1, shape)?;
            for r in 0..m {
                ys.data_mut()[r * batch + b] = y.data()[r];
            }
        }
        Ok((ys, stats))
    }

    /// Loads a whole TT network (layers executed back-to-back) into the
    /// weight SRAM at once — the paper's deployment model for the
    /// FC6+FC7-style stacks its 16 KB budget is sized for.
    ///
    /// # Errors
    ///
    /// Returns capacity errors if the combined cores (or any layer's peak
    /// intermediate) exceed the budgets, plus shape errors for
    /// incompatible consecutive layers (`rows(i) != cols(i+1)`).
    pub fn load_network(&mut self, matrices: Vec<TtMatrix<f64>>) -> Result<LoadedNetwork> {
        if matrices.is_empty() {
            return Err(TensorError::InvalidArgument {
                message: "network needs at least one layer".into(),
            });
        }
        for w in matrices.windows(2) {
            if w[0].shape().num_rows() != w[1].shape().num_cols() {
                return Err(TensorError::ShapeMismatch {
                    left: vec![w[0].shape().num_rows()],
                    right: vec![w[1].shape().num_cols()],
                });
            }
        }
        let mut layers = Vec::with_capacity(matrices.len());
        let mut bases = Vec::with_capacity(matrices.len());
        let mut all_cores = Vec::new();
        let mut base = 0usize;
        // One-shot calibration probes chain through the stack: layer i+1
        // is calibrated on layer i's probe outputs, so every layer sees
        // realistic input amplitudes.
        let mut probes = if self.one_shot() {
            let q = &self.config.quant;
            probe_vectors(
                q.probe_seed,
                q.probe_count,
                matrices[0].shape().num_cols(),
                q.probe_amplitude,
            )?
        } else {
            Vec::new()
        };
        for matrix in matrices {
            let shape = matrix.shape().clone();
            let plan = InferencePlan::new(&shape)?;
            if plan.max_intermediate_elems() > self.config.working_capacity_elems() {
                return Err(TensorError::InvalidArgument {
                    message: format!(
                        "layer {shape}: peak intermediate {} exceeds working SRAM {}",
                        plan.max_intermediate_elems(),
                        self.config.working_capacity_elems()
                    ),
                });
            }
            let engine = CompactEngine::new(matrix)?;
            let mut formats = Vec::with_capacity(shape.ndim());
            for g in engine.unfolded_cores() {
                let q = if self.config.quant.calibrate_weights && g.max_abs() > 0.0 {
                    QTensor::quantize_calibrated(g)?
                } else {
                    QTensor::quantize(g, self.config.quant.weight_format)
                };
                formats.push(q.format());
                all_cores.push(q);
            }
            let (input_format, stage_formats, input_max, stage_max, probe_outputs) =
                self.calibrate_layer(&engine, &probes)?;
            probes = probe_outputs;
            bases.push(base);
            base += shape.ndim();
            layers.push(LoadedLayer {
                shape,
                plan,
                weight_formats: formats,
                engine,
                input_format,
                stage_formats,
                input_max,
                stage_max,
            });
        }
        self.weight_sram.load(all_cores)?;
        Ok(LoadedNetwork { layers, bases })
    }

    /// Runs a whole loaded network: layers execute back-to-back, with the
    /// PE activation units (ReLU) applied between layers when
    /// `relu_between` is set (never after the last layer, matching the
    /// usual classifier-head convention).
    ///
    /// Returns the final output plus per-layer statistics.
    ///
    /// # Errors
    ///
    /// As [`TieAccelerator::run`], per layer.
    pub fn run_network(
        &mut self,
        net: &LoadedNetwork,
        x: &Tensor<f64>,
        relu_between: bool,
    ) -> Result<(Tensor<f64>, Vec<RunStats>)> {
        let mut v = x.clone();
        let mut all_stats = Vec::with_capacity(net.layers.len());
        let last = net.layers.len() - 1;
        for (i, (layer, &base)) in net.layers.iter().zip(&net.bases).enumerate() {
            let relu = relu_between && i < last;
            let (y, stats) = self.run_layer(layer, &v, relu, base)?;
            all_stats.push(stats);
            v = y;
        }
        Ok((v, all_stats))
    }

    /// Convenience: analytic cycle prediction for a layout on this
    /// configuration, ignoring bank conflicts — the closed-form tiling
    /// model the tests compare the simulator against:
    /// `Σ_h ceil(R_h/N_MAC) · ceil(W_h/N_PE) · (C_h + overhead)`.
    /// Delegates to [`tie_core::CostModel`] (via
    /// [`TieConfig::cost_model`]), so planner-side scoring and the
    /// simulator can never drift apart.
    pub fn predict_cycles(&self, plan: &InferencePlan) -> u64 {
        self.config.cost_model().total_cycles(plan, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use tie_quant::error_stats;
    use tie_tensor::init;

    fn accel() -> TieAccelerator {
        TieAccelerator::new(TieConfig::default()).unwrap()
    }

    fn random_layer(seed: u64, shape: &TtShape) -> TtMatrix<f64> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        TtMatrix::random(&mut rng, shape, 0.5).unwrap()
    }

    #[test]
    fn simulator_matches_float_reference_closely() {
        let shape = TtShape::uniform_rank(vec![4, 4, 4], vec![4, 4, 4], 4).unwrap();
        let layer = random_layer(200, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(201);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![64], 1.0);
        let (y_ref, _) = loaded.reference().matvec(&x).unwrap();
        let (y_sim, stats) = tie.run(&loaded, &x, false).unwrap();
        let s = error_stats(&y_sim, &y_ref).unwrap();
        assert!(
            s.sqnr_db > 40.0,
            "16-bit datapath should track float: SQNR {} dB, rmse {}",
            s.sqnr_db,
            s.rmse
        );
        assert_eq!(stats.saturations(), 0, "calibrated run must not saturate");
    }

    #[test]
    fn cycle_count_matches_analytic_model_when_conflict_free() {
        let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap(); // FC7
        let layer = random_layer(202, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let x = Tensor::<f64>::filled(vec![4096], 0.01).unwrap();
        let (_, stats) = tie.run(&loaded, &x, false).unwrap();
        let predicted = tie.predict_cycles(loaded.plan());
        let conflicts: u64 = stats.stages.iter().map(|s| s.conflict_cycles).sum();
        assert_eq!(
            stats.cycles(),
            predicted + conflicts,
            "cycles = tiling model + serialized conflicts"
        );
    }

    #[test]
    fn fc7_latency_lands_in_the_paper_regime() {
        // Sanity-anchor for Table 8: TIE's dense-equivalent throughput on
        // FC7 must be in the several-TOPS range at 1 GHz.
        let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let layer = random_layer(203, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let x = Tensor::<f64>::filled(vec![4096], 0.01).unwrap();
        let (_, stats) = tie.run(&loaded, &x, false).unwrap();
        let tops =
            stats.equivalent_ops_per_sec(loaded.plan().dense_equivalent_ops(), 1000.0) / 1e12;
        assert!(
            (2.0..20.0).contains(&tops),
            "FC7 equivalent throughput {tops:.2} TOPS out of expected range"
        );
    }

    #[test]
    fn macs_match_plan_mul_count() {
        let shape = TtShape::uniform_rank(vec![2, 3, 2], vec![3, 2, 2], 3).unwrap();
        let layer = random_layer(204, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let x = Tensor::<f64>::filled(vec![12], 0.1).unwrap();
        let (_, stats) = tie.run(&loaded, &x, false).unwrap();
        assert_eq!(
            stats.macs(),
            loaded.plan().total_muls(),
            "real MACs must equal the compact-scheme multiply count"
        );
    }

    #[test]
    fn relu_clamps_negative_outputs() {
        let shape = TtShape::uniform_rank(vec![2, 2], vec![2, 2], 2).unwrap();
        let layer = random_layer(205, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(206);
        let x: Tensor<f64> = init::uniform(&mut rng, vec![4], 1.0);
        let (y_lin, _) = tie.run(&loaded, &x, false).unwrap();
        let (y_relu, _) = tie.run(&loaded, &x, true).unwrap();
        assert!(
            y_lin.data().iter().any(|&v| v < 0.0),
            "test needs a negative output"
        );
        for (a, b) in y_lin.data().iter().zip(y_relu.data()) {
            let want = a.max(0.0);
            assert!((want - b).abs() < 1e-9 + want.abs() * 1e-6);
        }
    }

    #[test]
    fn oversized_layer_is_rejected_by_weight_sram() {
        // Huge ranks blow the 16 KB weight budget.
        let shape = TtShape::uniform_rank(vec![8, 8], vec![8, 8], 64).unwrap();
        let layer = random_layer(207, &shape);
        let mut tie = accel();
        assert!(tie.load_layer(layer).is_err());
    }

    #[test]
    fn paper_benchmarks_fit_the_prototype_srams() {
        // The Table 4 workloads must fit the Table 5 budget — the paper's
        // sizing claim.
        for (m, n) in [
            (vec![4usize; 6], vec![2usize, 7, 8, 8, 7, 4]), // FC6
            (vec![4; 6], vec![4; 6]),                       // FC7
            (vec![4; 4], vec![8, 20, 20, 18]),              // LSTM-UCF11
            (vec![4; 4], vec![4, 20, 20, 36]),              // LSTM-Youtube
        ] {
            let shape = TtShape::uniform_rank(m, n, 4).unwrap();
            let layer = random_layer(208, &shape);
            let mut tie = accel();
            assert!(
                tie.load_layer(layer).is_ok(),
                "workload {shape} should fit the prototype"
            );
        }
    }

    #[test]
    fn pass_overhead_charges_per_tile_pass() {
        let shape = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let layer0 = random_layer(250, &shape);
        let x = Tensor::<f64>::filled(vec![4096], 0.01).unwrap();
        let mut ideal = accel();
        let l0 = ideal.load_layer(layer0.clone()).unwrap();
        let (_, s0) = ideal.run(&l0, &x, false).unwrap();
        let cfg = TieConfig {
            pass_overhead_cycles: 3,
            ..TieConfig::default()
        };
        let mut real = TieAccelerator::new(cfg).unwrap();
        let l1 = real.load_layer(layer0).unwrap();
        let (_, s1) = real.run(&l1, &x, false).unwrap();
        assert_eq!(s1.cycles(), real.predict_cycles(l1.plan()));
        // FC7: 6 stages x (1 row tile x 64 pe tiles) = 384 passes.
        assert_eq!(s1.cycles(), s0.cycles() + 3 * 384);
    }

    #[test]
    fn run_batch_matches_per_sample_runs() {
        let shape = TtShape::uniform_rank(vec![3, 3], vec![4, 4], 3).unwrap();
        let layer_m = random_layer(240, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer_m).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(241);
        let xs: Tensor<f64> = init::uniform(&mut rng, vec![16, 5], 1.0);
        let (ys, _) = tie.run_batch(&loaded, &xs, false).unwrap();
        for b in 0..5 {
            let x = xs.cols(b, b + 1).unwrap().reshaped(vec![16]).unwrap();
            let (want_f, _) = loaded.reference().matvec(&x).unwrap();
            let got = ys.cols(b, b + 1).unwrap().reshaped(vec![9]).unwrap();
            assert!(
                got.relative_error(&want_f).unwrap() < 2e-2,
                "batch column {b} diverges"
            );
        }
    }

    #[test]
    fn run_batch_cycles_match_batched_tiling_model() {
        // The Table 9 analytic model (ceil over v_cols·B) must equal the
        // cycle-accurate simulator on a batched run.
        let shape = TtShape::uniform_rank(vec![4, 4], vec![4, 4], 4).unwrap();
        let layer_m = random_layer(242, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer_m).unwrap();
        let batch = 7usize;
        let xs = Tensor::<f64>::filled(vec![16, batch], 0.05).unwrap();
        let (_, stats) = tie.run_batch(&loaded, &xs, false).unwrap();
        let predicted: u64 = loaded
            .plan()
            .stages()
            .iter()
            .map(|st| {
                (st.gtilde_rows.div_ceil(16) * (st.v_cols * batch).div_ceil(16) * st.gtilde_cols)
                    as u64
            })
            .sum();
        let conflicts: u64 = stats.stages.iter().map(|s| s.conflict_cycles).sum();
        assert_eq!(stats.cycles(), predicted + conflicts);
        // Batching amortizes padding: per-sample cost strictly below B
        // single runs.
        let x1 = Tensor::<f64>::filled(vec![16], 0.05).unwrap();
        let (_, single) = tie.run(&loaded, &x1, false).unwrap();
        assert!(stats.cycles() < single.cycles() * batch as u64);
    }

    #[test]
    fn run_batch_rejects_oversized_batches() {
        // FC6's peak intermediate is ~100k elements; a batch of 3 cannot
        // fit the 196k-element working SRAM copy.
        let shape = TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap();
        let layer_m = random_layer(243, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer_m).unwrap();
        let xs = Tensor::<f64>::filled(vec![25088, 3], 0.01).unwrap();
        assert!(tie.run_batch(&loaded, &xs, false).is_err());
    }

    #[test]
    fn network_of_two_layers_matches_reference_chain() {
        // FC7-style pair: 256 -> 256 -> 256 with ReLU in between.
        let shape = TtShape::uniform_rank(vec![4; 4], vec![4; 4], 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(210);
        let l1 = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let l2 = TtMatrix::<f64>::random(&mut rng, &shape, 0.5).unwrap();
        let e1 = tie_core::CompactEngine::new(l1.clone()).unwrap();
        let e2 = tie_core::CompactEngine::new(l2.clone()).unwrap();
        let x: Tensor<f64> = init::uniform(&mut rng, vec![256], 1.0);
        // Float reference: y2 = W2 · relu(W1 · x).
        let (h, _) = e1.matvec(&x).unwrap();
        let h_relu = h.map(|v| v.max(0.0));
        let (want, _) = e2.matvec(&h_relu).unwrap();

        let mut tie = accel();
        let net = tie.load_network(vec![l1, l2]).unwrap();
        assert_eq!(net.layers().len(), 2);
        let (got, stats) = tie.run_network(&net, &x, true).unwrap();
        assert_eq!(stats.len(), 2);
        let err = got.relative_error(&want).unwrap();
        assert!(err < 2e-2, "network output err {err}");
        assert!(stats.iter().all(|s| s.cycles() > 0));
    }

    #[test]
    fn network_rejects_incompatible_and_oversized_stacks() {
        let mut tie = accel();
        assert!(tie.load_network(vec![]).is_err());
        // 16 -> 16 followed by a layer expecting 64 inputs: mismatch.
        let a = random_layer(
            211,
            &TtShape::uniform_rank(vec![4, 4], vec![4, 4], 2).unwrap(),
        );
        let b = random_layer(
            212,
            &TtShape::uniform_rank(vec![4, 4], vec![8, 8], 2).unwrap(),
        );
        assert!(tie.load_network(vec![a.clone(), b]).is_err());
        // Too many layers for the 16 KB weight SRAM (each 256->256 r=4
        // layer pads to 832 elements; 12 of them exceed 8192).
        let big = TtShape::uniform_rank(vec![4; 4], vec![4; 4], 4).unwrap();
        let stack: Vec<TtMatrix<f64>> = (0..12).map(|i| random_layer(220 + i, &big)).collect();
        assert!(tie.load_network(stack).is_err());
        // A single layer still loads fine afterwards.
        assert!(tie.load_layer(a).is_ok());
    }

    #[test]
    fn fc6_fc7_pair_fits_the_paper_budget_together() {
        // The paper's "sufficient for most TT-DNN models" claim: both VGG
        // TT FC layers resident at once.
        let fc6 = TtShape::uniform_rank(vec![4; 6], vec![2, 7, 8, 8, 7, 4], 4).unwrap();
        let fc7 = TtShape::uniform_rank(vec![4; 6], vec![4; 6], 4).unwrap();
        let mut tie = accel();
        // FC6 (25088 -> 4096) feeding FC7 (4096 -> 4096): the real VGG order.
        let net = tie
            .load_network(vec![random_layer(230, &fc6), random_layer(231, &fc7)])
            .unwrap();
        assert_eq!(net.total_params(), fc6.num_params() + fc7.num_params());
    }

    #[test]
    fn conflict_cycles_are_small_for_paper_workloads() {
        // The Algorithm-2 banking claim: permuted reads are (near)
        // conflict-free on the real workloads.
        let shape = TtShape::uniform_rank(vec![4; 4], vec![4, 20, 20, 36], 4).unwrap();
        let layer = random_layer(209, &shape);
        let mut tie = accel();
        let loaded = tie.load_layer(layer).unwrap();
        let x = Tensor::<f64>::filled(vec![57600], 0.001).unwrap();
        let (_, stats) = tie.run(&loaded, &x, false).unwrap();
        let conflicts: u64 = stats.stages.iter().map(|s| s.conflict_cycles).sum();
        let frac = conflicts as f64 / stats.cycles() as f64;
        assert!(
            frac < 0.05,
            "bank conflicts should be rare: {frac:.3} of cycles"
        );
    }
}
